"""HotSpot .flp interchange."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan import build_alpha21364_floorplan
from repro.floorplan.hotspot_io import dump_flp, load_flp, parse_flp, save_flp


SAMPLE = """
# a two-block test chip
left\t0.004\t0.008\t0.000\t0.000
right\t0.004\t0.008\t0.004\t0.000
"""


class TestParse:
    def test_parses_blocks(self):
        fp = parse_flp(SAMPLE, name="pair")
        assert fp.block_names == ["left", "right"]
        assert fp["right"].x == pytest.approx(0.004)
        assert fp["left"].area == pytest.approx(0.004 * 0.008)

    def test_ignores_comments_and_blanks(self):
        fp = parse_flp("# only\n\nsolo 0.001 0.001 0 0\n")
        assert len(fp) == 1

    def test_space_or_tab_separated(self):
        fp = parse_flp("a 0.001 0.001 0 0\nb\t0.001\t0.001\t0.001\t0\n")
        assert len(fp) == 2

    def test_rejects_short_lines(self):
        with pytest.raises(FloorplanError) as err:
            parse_flp("bad 0.001 0.001\n")
        assert "line 1" in str(err.value)

    def test_rejects_non_numeric(self):
        with pytest.raises(FloorplanError):
            parse_flp("bad w h x y\n")

    def test_rejects_empty(self):
        with pytest.raises(FloorplanError):
            parse_flp("# nothing here\n")

    def test_overlaps_rejected_like_any_floorplan(self):
        with pytest.raises(FloorplanError):
            parse_flp("a 0.002 0.002 0 0\nb 0.002 0.002 0.001 0\n")


class TestRoundTrip:
    def test_alpha_floorplan_round_trips(self):
        original = build_alpha21364_floorplan()
        recovered = parse_flp(dump_flp(original), name="alpha21364")
        assert recovered.block_names == original.block_names
        for name in original.block_names:
            assert recovered[name].x == pytest.approx(original[name].x)
            assert recovered[name].area == pytest.approx(original[name].area)
        assert len(recovered.adjacencies) == len(original.adjacencies)

    def test_file_round_trip(self, tmp_path):
        original = build_alpha21364_floorplan()
        path = tmp_path / "alpha.flp"
        save_flp(original, path)
        loaded = load_flp(path)
        assert loaded.name == "alpha"
        assert set(loaded.block_names) == set(original.block_names)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FloorplanError):
            load_flp(tmp_path / "nope.flp")

    def test_imported_floorplan_is_thermally_usable(self):
        from repro.thermal import HotSpotModel

        fp = parse_flp(dump_flp(build_alpha21364_floorplan()))
        model = HotSpotModel(fp)
        temps = model.steady_state({n: 1.0 for n in fp.block_names})
        assert temps["IntReg"] > model.package.ambient_c
