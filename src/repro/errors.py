"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can distinguish modelling problems from
programming errors with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class FloorplanError(ReproError):
    """A floorplan is geometrically invalid (overlap, gap, bad block)."""


class ThermalModelError(ReproError):
    """The thermal RC network could not be built or solved."""


class NumericalError(ThermalModelError):
    """A transient solve produced a non-finite or divergent temperature
    and every fallback stepper failed too.

    Carries enough structure (offending block/node, simulated time,
    stepper that failed last) for a sweep supervisor to log the failure
    and decide whether to retry the run.
    """

    def __init__(self, block, time_s, stepper, detail=""):
        self.block = block
        self.time_s = time_s
        self.stepper = stepper
        message = (
            f"non-finite/divergent temperature at block {block!r} "
            f"(t={time_s * 1e3:.3f} ms, stepper={stepper!r})"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class PowerModelError(ReproError):
    """The power model was configured or queried inconsistently."""


class WorkloadError(ReproError):
    """A workload or phase description is invalid."""


class DtmConfigError(ReproError):
    """A DTM technique was configured with invalid parameters."""


class SimulationError(ReproError):
    """The coupled simulation reached an invalid state."""


class SensorFaultError(SimulationError):
    """The sensor array degraded past the point of usable readings
    (every sensor dropped out), so the DTM controller is flying blind.

    Raised instead of silently reporting an empty sample: a run without
    observability must fail loudly, never report zero violations."""


class RunTimeoutError(SimulationError):
    """A supervised run exceeded its per-run wall-clock budget."""


class InjectedFaultError(SimulationError):
    """A deterministic fault injected by a :class:`repro.sim.faults.
    FaultPlan` fired in-process (the serial stand-in for a worker
    crash)."""


class ThermalViolationError(SimulationError):
    """Raised when a run configured as violation-free exceeds the emergency
    threshold, i.e. the DTM technique under test failed to protect the chip."""

    def __init__(self, temperature_c, threshold_c, time_s, block):
        self.temperature_c = temperature_c
        self.threshold_c = threshold_c
        self.time_s = time_s
        self.block = block
        super().__init__(
            f"thermal violation: {block} reached {temperature_c:.2f} C "
            f"(> {threshold_c:.2f} C) at t={time_s * 1e3:.3f} ms"
        )
