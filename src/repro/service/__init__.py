"""Sweep-as-a-service: the engine as a long-running backend.

The batch layer already owns the hard parts -- content digests for
specs, a JSONL journal with resume, a fault-tolerant supervisor.  This
package serves them over a socket:

* :mod:`repro.service.protocol` -- length-prefixed JSON frames and the
  declarative spec wire format;
* :mod:`repro.service.cache` -- the content-addressed on-disk result
  cache (atomic writes, skeptical reads, journal backfill);
* :mod:`repro.service.server` -- the asyncio :class:`SweepService`
  (bounded admission, per-client round-robin, graceful drain, crash
  recovery) and the :class:`ServerThread` embedding;
* :mod:`repro.service.client` -- the thin blocking
  :class:`ServiceClient`.

``python -m repro serve`` / ``python -m repro submit`` are the CLI
faces; docs/SERVICE.md documents the protocol, cache layout, drain
semantics and failure matrix.
"""

from repro.service.cache import ResultCache
from repro.service.client import (
    ServiceBusyError,
    ServiceClient,
    ServiceError,
    SubmitOutcome,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameTooLargeError,
    ProtocolError,
    SpecError,
    spec_from_wire,
    spec_to_wire,
)
from repro.service.server import (
    DEFAULT_MAX_QUEUE,
    ServerThread,
    ServiceConfig,
    SweepService,
)

__all__ = [
    "DEFAULT_MAX_QUEUE",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "FrameTooLargeError",
    "ProtocolError",
    "ResultCache",
    "ServerThread",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SpecError",
    "SubmitOutcome",
    "SweepService",
    "spec_from_wire",
    "spec_to_wire",
]
