"""Paired significance tests.

The paper states its performance differences versus DVS are "significant
at the 99 % confidence level"; with nine benchmarks and paired runs this
is a paired t-test over per-benchmark slowdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from scipy import stats

from repro.errors import ReproError


@dataclass(frozen=True)
class PairedComparison:
    """Result of comparing two techniques over the same benchmarks."""

    mean_difference: float
    t_statistic: float
    p_value: float
    n: int

    def significant(self, confidence: float = 0.99) -> bool:
        """True when the difference is significant at ``confidence``."""
        if not 0.0 < confidence < 1.0:
            raise ReproError("confidence must be in (0, 1)")
        return self.p_value < (1.0 - confidence)


def paired_comparison(
    slowdowns_a: Mapping[str, float], slowdowns_b: Mapping[str, float]
) -> PairedComparison:
    """Paired t-test of technique A against technique B.

    ``mean_difference`` is mean(A) - mean(B): negative means A is faster.
    Both mappings must cover the same benchmarks.
    """
    if set(slowdowns_a) != set(slowdowns_b):
        raise ReproError(
            "paired comparison needs identical benchmark sets: "
            f"{sorted(slowdowns_a)} vs {sorted(slowdowns_b)}"
        )
    if len(slowdowns_a) < 2:
        raise ReproError("paired comparison needs at least two benchmarks")
    keys = sorted(slowdowns_a)
    a = [slowdowns_a[k] for k in keys]
    b = [slowdowns_b[k] for k in keys]
    if all(abs(x - y) < 1e-15 for x, y in zip(a, b)):
        # Identical samples: no evidence of any difference.
        return PairedComparison(
            mean_difference=0.0, t_statistic=0.0, p_value=1.0, n=len(keys)
        )
    t_stat, p_value = stats.ttest_rel(a, b)
    mean_diff = sum(x - y for x, y in zip(a, b)) / len(keys)
    return PairedComparison(
        mean_difference=mean_diff,
        t_statistic=float(t_stat),
        p_value=float(p_value),
        n=len(keys),
    )
