"""Synthetic workloads standing in for the paper's nine hottest SPEC
CPU2000 benchmarks.

Each workload is a looping sequence of phases; each phase carries the
calibrated performance model the interval engine consumes (IPC, memory
boundedness, ILP response, speculation waste, per-block activity) plus the
trace statistics that drive the detailed cycle-level core for the same
phase.  See DESIGN.md for why this substitution preserves the behaviours
the paper's evaluation depends on.
"""

from repro.workloads.phases import Phase
from repro.workloads.profiles import make_activity_profile
from repro.workloads.workload import Workload
from repro.workloads.builder import WorkloadBuilder
from repro.workloads.phase_detection import (
    IntervalRecord,
    detect_phases,
    workload_from_trace,
)
from repro.workloads.spec import (
    SPEC_BENCHMARK_NAMES,
    build_benchmark,
    build_spec_suite,
)

__all__ = [
    "Phase",
    "Workload",
    "WorkloadBuilder",
    "IntervalRecord",
    "detect_phases",
    "workload_from_trace",
    "make_activity_profile",
    "SPEC_BENCHMARK_NAMES",
    "build_benchmark",
    "build_spec_suite",
]
