"""Crossover-point search (scaled-down)."""

import pytest

from repro.core import find_crossover, sweep_duty_cycles
from repro.core.crossover import PAPER_DUTY_CYCLES, CrossoverResult
from repro.core.evaluation import run_baselines
from repro.errors import DtmConfigError
from repro.workloads import build_benchmark


@pytest.fixture(scope="module")
def baselines():
    # vortex and bzip2 sit in the middle of the fetch-gating authority
    # range, so even short windows show the rising tail at deep duties.
    suite = [build_benchmark("vortex"), build_benchmark("bzip2")]
    return run_baselines(suite=suite, instructions=4_000_000,
                         settle_time_s=1e-3)


@pytest.fixture(scope="module")
def sweep(baselines):
    return sweep_duty_cycles(
        duty_cycles=(20.0, 3.0, 1.5), baselines=baselines
    )


def test_paper_grid_covers_figure3():
    assert 3.0 in PAPER_DUTY_CYCLES
    assert 20.0 in PAPER_DUTY_CYCLES
    assert min(PAPER_DUTY_CYCLES) < 2.0


def test_sweep_returns_one_evaluation_per_duty(sweep):
    assert set(sweep.evaluations) == {20.0, 3.0, 1.5}
    for evaluation in sweep.evaluations.values():
        assert evaluation.policy == "PI-Hyb"


def test_deep_gating_never_wins(sweep):
    means = sweep.mean_slowdowns
    assert means[1.5] >= means[3.0] - 1e-9
    assert means[1.5] >= means[20.0] - 1e-9
    assert means[1.5] > min(means.values())


def test_best_duty_cycle_not_the_deepest(sweep):
    assert sweep.best_duty_cycle in (20.0, 3.0)


def test_find_crossover_prefers_deepest_near_optimal(sweep):
    crossover = find_crossover(sweep, rise_threshold=0.003)
    assert crossover == 3.0
    # A huge threshold admits even the worst point.
    assert find_crossover(sweep, rise_threshold=10.0) == 1.5


def test_empty_duty_cycles_rejected(baselines):
    with pytest.raises(DtmConfigError):
        sweep_duty_cycles(duty_cycles=(), baselines=baselines)


def test_result_dataclass_roundtrip(sweep):
    result = CrossoverResult(dvs_mode="stall", evaluations=sweep.evaluations)
    assert result.mean_slowdowns == sweep.mean_slowdowns
