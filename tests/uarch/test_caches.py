"""Cache hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.uarch import CacheHierarchy, CacheLevelParameters
from repro.uarch.caches import SetAssociativeCache


def small_cache(size=1024, line=64, assoc=2, latency=1):
    return SetAssociativeCache(
        CacheLevelParameters("test", size, line, assoc, latency)
    )


class TestLevelParameters:
    def test_set_count(self):
        params = CacheLevelParameters("c", 64 * 1024, 64, 2, 1)
        assert params.set_count == 512

    def test_rejects_bad_geometry(self):
        with pytest.raises(SimulationError):
            CacheLevelParameters("c", 1000, 64, 2, 1)  # not a multiple
        with pytest.raises(SimulationError):
            CacheLevelParameters("c", 0, 64, 2, 1)
        with pytest.raises(SimulationError):
            CacheLevelParameters("c", 1024, 64, 2, 0)


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True

    def test_same_line_different_offsets_hit(self):
        cache = small_cache()
        cache.access(0x100)
        assert cache.access(0x13F) is True  # same 64 B line

    def test_lru_eviction_order(self):
        # 2-way set: fill both ways, touch the first, insert a third:
        # the second (least recently used) must be evicted.
        cache = small_cache(size=1024, line=64, assoc=2)
        sets = cache.params.set_count  # 8 sets
        stride = sets * 64  # same set, different tags
        a, b, c = 0, stride, 2 * stride
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a
        cache.access(c)  # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_miss_rate_statistics(self):
        cache = small_cache()
        cache.access(0x0)
        cache.access(0x0)
        assert cache.accesses == 2
        assert cache.misses == 1
        assert cache.miss_rate == pytest.approx(0.5)

    def test_reset_statistics_keeps_contents(self):
        cache = small_cache()
        cache.access(0x0)
        cache.reset_statistics()
        assert cache.accesses == 0
        assert cache.access(0x0) is True  # contents survived

    def test_working_set_beyond_capacity_thrashes(self):
        cache = small_cache(size=1024, line=64, assoc=2)
        # Cycle through 4x capacity repeatedly: with LRU every access
        # misses after the first lap too.
        lines = [i * 64 for i in range(64)]
        for _ in range(3):
            for address in lines:
                cache.access(address)
        assert cache.miss_rate > 0.9

    def test_working_set_within_capacity_settles_to_hits(self):
        cache = small_cache(size=4096, line=64, assoc=2)
        lines = [i * 64 for i in range(32)]  # half capacity
        for _ in range(3):
            for address in lines:
                cache.access(address)
        assert cache.misses == 32  # only the cold misses


class TestHierarchy:
    def test_l1_hit_latency(self):
        h = CacheHierarchy()
        h.access_data(0x1000)
        result = h.access_data(0x1000)
        assert result.latency == h.dcache.params.hit_latency
        assert not result.touched_l2 and not result.touched_memory

    def test_l1_miss_l2_hit(self):
        h = CacheHierarchy()
        h.access_data(0x1000)  # fills L2 and L1
        # Evict from tiny... instead access a fresh line: L1 miss, L2 miss
        result = h.access_data(0x2000)
        assert result.touched_l2 and result.touched_memory
        again = h.access_data(0x2000)
        assert not again.touched_l2

    def test_memory_latency_scales_with_frequency(self):
        h = CacheHierarchy(memory_latency_ns=80.0, nominal_frequency_hz=3e9)
        assert h.memory_latency_cycles(1.0) == 240
        # Slower clock: the same 80 ns is fewer cycles.
        assert h.memory_latency_cycles(0.873) == round(240 * 0.873)

    def test_instruction_and_data_paths_are_separate(self):
        h = CacheHierarchy()
        h.access_instruction(0x0)
        result = h.access_data(0x0)
        # The data access missed L1-D even though L1-I holds the line,
        # but hits the unified L2.
        assert result.touched_l2 and not result.touched_memory

    def test_prewarm_fills_footprints(self):
        h = CacheHierarchy()
        h.prewarm(32 * 1024, 16 * 1024)
        assert h.dcache.accesses == 0  # statistics were reset
        result = h.access_data(0x400)
        assert result.latency == h.dcache.params.hit_latency
        result = h.access_instruction(0x400)
        assert result.latency == h.icache.params.hit_latency

    def test_prewarm_rejects_negative(self):
        with pytest.raises(SimulationError):
            CacheHierarchy().prewarm(-1, 0)

    def test_rejects_bad_memory_latency(self):
        with pytest.raises(SimulationError):
            CacheHierarchy(memory_latency_ns=0.0)
        with pytest.raises(SimulationError):
            CacheHierarchy().memory_latency_cycles(0.0)


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
def test_property_repeating_a_trace_only_hits(addresses):
    # Any trace replayed immediately (shorter than capacity in distinct
    # lines per set) -- here we just check determinism: same trace on two
    # fresh caches gives identical statistics.
    c1, c2 = small_cache(size=8192), small_cache(size=8192)
    for a in addresses:
        c1.access(a)
        c2.access(a)
    assert c1.misses == c2.misses
    assert c1.accesses == c2.accesses


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(st.integers(0, 4096), min_size=1, max_size=100))
def test_property_miss_count_bounded_by_distinct_lines(addresses):
    # With a cache larger than the address span, misses == distinct lines.
    cache = small_cache(size=16 * 1024, line=64, assoc=4)
    for a in addresses:
        cache.access(a)
    distinct_lines = len({a // 64 for a in addresses})
    assert cache.misses == distinct_lines
