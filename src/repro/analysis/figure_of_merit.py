"""An a-priori figure of merit for DTM responses (paper future work).

Section 5.1 of the paper: "we would eventually like a figure of merit
that is an a-priori measure of cooling, independent of the specific
experimental thermal setup; developing such a metric is an interesting
and important area for future work."

This module provides one.  For a workload phase and a candidate DTM
actuation it computes, from the models alone (no co-simulation):

* the **fast cooling** at the hotspot: the die-level temperature drop the
  actuation buys on the timescale DTM operates at.  Package nodes
  (spreader, sink) have time constants of seconds, so they are held
  fixed and the die-node block of the conductance matrix gives the
  short-horizon Green's function: ``dT_die = L_dd^-1 dP_die``;
* the **slowdown** of the actuation from the phase's performance model;
* their ratio, ``merit`` in kelvin of cooling per percent of slowdown.

Ranking actuations by merit predicts the crossover structure the paper
finds by exhaustive simulation: mild fetch gating has very high merit
(speculation trimming is almost free), deep fetch gating's merit
collapses once ILP is exhausted, and DVS's merit is flat -- so the best
policy uses FG up to the crossover and DVS beyond it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ReproError
from repro.power.model import PowerModel
from repro.thermal.hotspot import HotSpotModel
from repro.uarch.interval import DtmActuation
from repro.workloads.phases import Phase


@dataclass(frozen=True)
class CoolingMerit:
    """Predicted effect of one DTM actuation on one phase."""

    actuation: DtmActuation
    hotspot_block: str
    cooling_k: float
    slowdown: float

    @property
    def merit(self) -> float:
        """Kelvin of fast cooling per percent of slowdown (infinite when
        the actuation is free, 0 when it cools nothing)."""
        overhead_pct = max(self.slowdown - 1.0, 0.0) * 100.0
        if self.cooling_k <= 0.0:
            return 0.0
        if overhead_pct <= 1e-12:
            return float("inf")
        return self.cooling_k / overhead_pct


def _phase_slowdown(phase: Phase, actuation: DtmActuation) -> float:
    """Wall-clock slowdown of the phase under a sustained actuation."""
    cpi0 = 1.0 / phase.base_ipc
    cpi_mem = phase.memory_cpi_fraction * cpi0
    ipc_gated = phase.base_ipc * phase.ilp_response.ipc_rel(
        actuation.gating_fraction
    )
    cpi_core = max(1.0 / ipc_gated - cpi_mem, 1e-9)
    cycles_per_instr = cpi_core + cpi_mem * actuation.relative_frequency
    seconds_per_instr = cycles_per_instr / actuation.relative_frequency
    seconds_per_instr /= max(actuation.clock_enabled_fraction, 1e-9)
    return seconds_per_instr / cpi0


def _die_green_function(hotspot: HotSpotModel) -> np.ndarray:
    """Inverse of the die-node conductance block: the short-horizon
    thermal response with the package held fixed."""
    network = hotspot.network
    n_die = len(network.block_names)
    return np.linalg.inv(network.conductance[:n_die, :n_die])


def cooling_figure_of_merit(
    phase: Phase,
    actuation: DtmActuation,
    hotspot: HotSpotModel,
    power_model: PowerModel,
    reference_temps: Optional[Dict[str, float]] = None,
    hotspot_block: str = "IntReg",
) -> CoolingMerit:
    """Compute the a-priori cooling/slowdown merit of an actuation.

    Parameters
    ----------
    phase:
        The workload phase supplying activities and the ILP response.
    actuation:
        The candidate operating point (gating, relative frequency from
        the V/f curve, clock duty).
    hotspot, power_model:
        The thermal and power substrates.
    reference_temps:
        Temperatures used for the leakage term; defaults to 85 C
        everywhere (the emergency threshold, where merit matters).
    hotspot_block:
        The block whose fast cooling is evaluated.
    """
    if hotspot_block not in hotspot.block_names:
        raise ReproError(f"unknown hotspot block {hotspot_block!r}")
    tech = power_model.technology
    if reference_temps is None:
        reference_temps = {name: 85.0 for name in hotspot.block_names}

    # Map the actuation's relative frequency back to a voltage on the
    # curve (DVS actuations move V and f together; gating keeps nominal).
    curve = power_model.vf_curve
    if actuation.relative_frequency >= 1.0 - 1e-12:
        voltage = tech.vdd_nominal
    else:
        target = actuation.relative_frequency
        lo, hi = tech.vth * 1.01, tech.vdd_nominal
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if curve.relative_frequency(mid) < target:
                lo = mid
            else:
                hi = mid
        voltage = hi
    frequency = curve.frequency(voltage)

    # Activities under nominal operation and under the actuation.
    nominal_acts = phase.activity_model.activities(1.0, 1.0)
    cpi0 = 1.0 / phase.base_ipc
    cpi_mem = phase.memory_cpi_fraction * cpi0
    ipc_gated = phase.base_ipc * phase.ilp_response.ipc_rel(
        actuation.gating_fraction
    )
    cpi_core = max(1.0 / ipc_gated - cpi_mem, 1e-9)
    cpi_actual = cpi_core + cpi_mem * actuation.relative_frequency
    commit_rel = min((1.0 / cpi_actual) / phase.base_ipc, 1.0)
    gated_acts = phase.activity_model.activities(
        1.0 - actuation.gating_fraction, commit_rel
    )

    nominal_power = power_model.block_powers(
        nominal_acts, tech.vdd_nominal, tech.frequency_nominal, reference_temps
    )
    actuated_power = power_model.block_powers(
        gated_acts,
        voltage,
        frequency,
        reference_temps,
        actuation.clock_enabled_fraction,
    )

    block_names = list(hotspot.network.block_names)
    delta = np.array(
        [nominal_power[name] - actuated_power[name] for name in block_names]
    )
    green = _die_green_function(hotspot)
    row = block_names.index(hotspot_block)
    cooling = float(green[row] @ delta)

    return CoolingMerit(
        actuation=actuation,
        hotspot_block=hotspot_block,
        cooling_k=cooling,
        slowdown=_phase_slowdown(phase, actuation),
    )


def predicted_crossover_gating(
    phase: Phase,
    hotspot: HotSpotModel,
    power_model: PowerModel,
    v_low_ratio: float = 0.85,
    grid: int = 40,
) -> float:
    """Predict the ILP/DVS crossover gating fraction from merits alone.

    Returns the largest gating fraction at which fetch gating's merit
    still matches or beats binary DVS's -- the point beyond which a
    hybrid policy should switch responses.
    """
    tech = power_model.technology
    v_low = v_low_ratio * tech.vdd_nominal
    dvs = cooling_figure_of_merit(
        phase,
        DtmActuation(
            relative_frequency=power_model.vf_curve.relative_frequency(v_low)
        ),
        hotspot,
        power_model,
    )
    best = 0.0
    for index in range(1, grid):
        fraction = index / grid * 0.9
        fg = cooling_figure_of_merit(
            phase, DtmActuation(gating_fraction=fraction), hotspot, power_model
        )
        if fg.merit >= dvs.merit:
            best = fraction
    return best
