"""DTM metrics."""

import pytest

from repro.core import dtm_overhead, mean_slowdown, overhead_reduction, slowdown_factor
from repro.errors import SimulationError
from repro.sim import RunResult


def run(benchmark="gzip", elapsed=4e-3, instructions=1e7, policy="DVS"):
    return RunResult(
        benchmark=benchmark,
        policy=policy,
        dvs_mode="stall",
        instructions=instructions,
        elapsed_s=elapsed,
        cycles=1,
        violations=0,
        max_true_temp_c=84.0,
        hottest_block="IntReg",
        time_above_trigger_s=0.0,
        dvs_switches=0,
        dvs_low_time_s=0.0,
        stall_time_s=0.0,
        mean_gating_fraction=0.0,
        mean_power_w=25.0,
    )


class TestSlowdownFactor:
    def test_basic_ratio(self):
        assert slowdown_factor(run(elapsed=4.4e-3), run(elapsed=4e-3)) == pytest.approx(1.1)

    def test_rejects_different_benchmarks(self):
        with pytest.raises(SimulationError):
            slowdown_factor(run(benchmark="gzip"), run(benchmark="art"))

    def test_rejects_different_budgets(self):
        with pytest.raises(SimulationError):
            slowdown_factor(run(instructions=1e7), run(instructions=2e7))


class TestOverhead:
    def test_overhead_is_slowdown_minus_one(self):
        assert dtm_overhead(1.22) == pytest.approx(0.22)

    def test_tiny_numerical_undershoot_clamped(self):
        assert dtm_overhead(1.0 - 1e-12) == 0.0

    def test_rejects_speedup(self):
        with pytest.raises(SimulationError):
            dtm_overhead(0.9)

    def test_papers_headline_numbers(self):
        # DVS at 1.22, hybrid 5.5 % faster: about a 25 % overhead cut.
        dvs = 1.22
        hybrid = dvs - 0.055
        assert overhead_reduction(dvs, hybrid) == pytest.approx(0.25, abs=0.01)

    def test_reduction_of_zero_overhead_rejected(self):
        with pytest.raises(SimulationError):
            overhead_reduction(1.0, 1.0)

    def test_negative_reduction_when_worse(self):
        assert overhead_reduction(1.1, 1.2) < 0.0


class TestMeanSlowdown:
    def test_arithmetic_mean(self):
        assert mean_slowdown([1.0, 1.2]) == pytest.approx(1.1)

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            mean_slowdown([])
