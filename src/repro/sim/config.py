"""Engine configuration."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.sim.faults import FaultPlan

DVS_MODE_STALL = "stall"
DVS_MODE_IDEAL = "ideal"

POWER_PATH_VECTOR = "vector"
POWER_PATH_MAPPING = "mapping"

THERMAL_STEPPER_BE = "be"
THERMAL_STEPPER_EXPM = "expm"

COMPILED_TRACE_ON = "on"
COMPILED_TRACE_OFF = "off"
COMPILED_TRACE_VERIFY = "verify"

COMPILED_TRACE_ENV = "REPRO_COMPILED_TRACE"
"""Environment default for :attr:`EngineConfig.compiled_trace`:
``1``/``on`` (default), ``0``/``off``, or ``verify``."""

_COMPILED_ALIASES = {
    "1": COMPILED_TRACE_ON,
    "on": COMPILED_TRACE_ON,
    "true": COMPILED_TRACE_ON,
    "0": COMPILED_TRACE_OFF,
    "off": COMPILED_TRACE_OFF,
    "false": COMPILED_TRACE_OFF,
    "verify": COMPILED_TRACE_VERIFY,
}


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the coupled simulation.

    Parameters
    ----------
    thermal_step_cycles:
        Cycles per thermal step; the paper uses 10 000, keeping sampling
        error below 0.1 % with under 1 % simulation overhead.
    dvs_switch_time_s:
        Time to change the DVS setting (10 us in the paper).
    dvs_mode:
        ``"stall"`` -- the pipeline stalls for the switch time;
        ``"ideal"`` -- execution continues but the new setting takes
        effect only after the switch time has elapsed.
    raise_on_violation:
        Raise :class:`~repro.errors.ThermalViolationError` the moment any
        block exceeds the emergency threshold (useful while calibrating a
        technique that must be violation-free).
    record_trace:
        Keep a per-step time series of hottest-block temperature and
        actuation (costs memory; for plotting/examples).
    migration_time_s:
        Pipeline-flush stall charged whenever an activity-migration
        policy moves work between copies (2 us: drain plus a register
        transfer burst).
    power_path:
        ``"vector"`` (default) -- the array-native power/thermal hot
        path; ``"mapping"`` -- the per-block scalar path retained as a
        numerical regression reference (identical physics, ~5x slower).
    max_no_progress_steps:
        Consecutive thermal steps allowed to commit zero instructions
        (e.g. under a fully clock-gated policy) before the engine raises
        :class:`~repro.errors.SimulationError` instead of spinning
        forever.
    thermal_stepper:
        ``"expm"`` (default) -- the exact exponential-propagator stepper
        (:class:`~repro.thermal.solver.ExponentialSolver`): one matvec
        pair per step, no time-discretisation error, and eligible for
        constant-power fast-forward.  ``"be"`` -- backward Euler, kept
        as the time-discretised regression anchor.
    fast_forward:
        Allow the engine to jump spans of steps whose power vector, dt
        and actuation are unchanged (idle phases, converged steady
        phases) in closed form via ``A_d^K``.  Only effective with the
        ``"expm"`` stepper; every jump is first proven safe against the
        trigger/emergency thresholds (see docs/MODELING.md), otherwise
        the engine falls back to explicit stepping.
    fast_forward_power_tol_w:
        Per-block power drift (watts) between consecutive steps below
        which the power vector counts as unchanged for fast-forward.
        The temperature error of freezing the power over a span is
        bounded by this tolerance times the worst-case thermal
        resistance (~3 K/W), i.e. microkelvins at the default.
    fault_plan:
        Deterministic faults to inject into matching runs (worker
        crashes, delays, solver corruption, sensor degradation; see
        :mod:`repro.sim.faults`).  ``None`` (default) runs clean.
    compiled_trace:
        ``"on"`` -- lower the workload's phase schedule to contiguous
        arrays once per run and drive the hot loop from them
        (:mod:`repro.workloads.compiler`); ``"off"`` -- the interpreted
        per-step path, kept as the numerical reference; ``"verify"`` --
        compiled, but every fast-path activity vector is re-derived
        through the interpreted model and compared bit for bit.
        ``None`` (default) defers to the ``REPRO_COMPILED_TRACE``
        environment variable (default ``on``).  The compiled path is
        bit-identical to the interpreted one by construction; see
        docs/MODELING.md section 7.
    """

    thermal_step_cycles: int = 10_000
    dvs_switch_time_s: float = 10.0e-6
    dvs_mode: str = DVS_MODE_STALL
    raise_on_violation: bool = False
    record_trace: bool = False
    migration_time_s: float = 2.0e-6
    power_path: str = POWER_PATH_VECTOR
    max_no_progress_steps: int = 10_000
    thermal_stepper: str = THERMAL_STEPPER_EXPM
    fast_forward: bool = True
    fast_forward_power_tol_w: float = 1.0e-3
    fault_plan: Optional[FaultPlan] = None
    compiled_trace: Optional[str] = None

    def resolved_compiled_trace(self) -> str:
        """The effective compiled-trace mode: the explicit field if set,
        else the ``REPRO_COMPILED_TRACE`` environment variable, else
        ``"on"``."""
        if self.compiled_trace is not None:
            return self.compiled_trace
        raw = os.environ.get(COMPILED_TRACE_ENV, COMPILED_TRACE_ON)
        mode = _COMPILED_ALIASES.get(raw.strip().lower())
        if mode is None:
            raise SimulationError(
                f"{COMPILED_TRACE_ENV} must be one of "
                f"on/off/verify (or 1/0), got {raw!r}"
            )
        return mode

    def __post_init__(self) -> None:
        if self.thermal_step_cycles < 100:
            raise SimulationError("thermal step must be at least 100 cycles")
        if self.dvs_switch_time_s < 0.0:
            raise SimulationError("DVS switch time must be >= 0")
        if self.dvs_mode not in (DVS_MODE_STALL, DVS_MODE_IDEAL):
            raise SimulationError(
                f"dvs_mode must be 'stall' or 'ideal', got {self.dvs_mode!r}"
            )
        if self.migration_time_s < 0.0:
            raise SimulationError("migration time must be >= 0")
        if self.power_path not in (POWER_PATH_VECTOR, POWER_PATH_MAPPING):
            raise SimulationError(
                f"power_path must be 'vector' or 'mapping', "
                f"got {self.power_path!r}"
            )
        if self.max_no_progress_steps < 1:
            raise SimulationError("no-progress step budget must be >= 1")
        if self.thermal_stepper not in (THERMAL_STEPPER_BE, THERMAL_STEPPER_EXPM):
            raise SimulationError(
                f"thermal_stepper must be 'be' or 'expm', "
                f"got {self.thermal_stepper!r}"
            )
        if self.fast_forward_power_tol_w < 0.0:
            raise SimulationError("fast-forward power tolerance must be >= 0")
        if self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            raise SimulationError(
                f"fault_plan must be a FaultPlan, got {self.fault_plan!r}"
            )
        if self.compiled_trace is not None and self.compiled_trace not in (
            COMPILED_TRACE_ON,
            COMPILED_TRACE_OFF,
            COMPILED_TRACE_VERIFY,
        ):
            raise SimulationError(
                f"compiled_trace must be 'on', 'off', 'verify' or None, "
                f"got {self.compiled_trace!r}"
            )
