"""repro: a reproduction of "Hybrid Architectural Dynamic Thermal
Management" (Kevin Skadron, DATE 2004).

The package rebuilds the paper's whole evaluation stack in Python:

* :mod:`repro.floorplan` -- the Alpha 21364-like floorplan;
* :mod:`repro.thermal` -- a HotSpot-style compact RC thermal model;
* :mod:`repro.power` -- Wattch-style block power with temperature-
  dependent leakage and the DVS voltage/frequency curve;
* :mod:`repro.uarch` -- a cycle-level out-of-order core plus the fast
  interval engine;
* :mod:`repro.sensors` -- noisy, offset on-chip thermal sensors;
* :mod:`repro.dtm` -- fetch gating, clock gating, DVS, and the paper's
  hybrid techniques;
* :mod:`repro.workloads` -- synthetic stand-ins for the nine hottest SPEC
  CPU2000 benchmarks;
* :mod:`repro.sim` -- the coupled simulation engine;
* :mod:`repro.core` / :mod:`repro.analysis` -- the evaluation harness
  that regenerates every figure and in-text result.

Quick start::

    from repro import SimulationEngine, build_benchmark, make_policy

    workload = build_benchmark("gzip")
    engine = SimulationEngine(workload, policy=make_policy("Hyb"))
    result = engine.run(10_000_000, settle_time_s=2e-3)
    print(result.summary())
"""

from repro.version import __version__
from repro.errors import (
    DtmConfigError,
    FloorplanError,
    PowerModelError,
    ReproError,
    SimulationError,
    ThermalModelError,
    ThermalViolationError,
    WorkloadError,
)
from repro.floorplan import Floorplan, build_alpha21364_floorplan
from repro.thermal import HotSpotModel, ThermalPackage
from repro.power import PowerModel, Technology, VoltageFrequencyCurve
from repro.sensors import SensorArray, SensorParameters
from repro.dtm import (
    DvsConfig,
    DvsPolicy,
    FetchGatingPolicy,
    HybConfig,
    HybPolicy,
    NoDtmPolicy,
    PIHybConfig,
    PIHybPolicy,
    ThermalThresholds,
)
from repro.workloads import Workload, build_benchmark, build_spec_suite
from repro.sim import EngineConfig, RunResult, SimulationEngine
from repro.core import (
    evaluate_techniques,
    make_policy,
    overhead_reduction,
    slowdown_factor,
    sweep_duty_cycles,
)

__all__ = [
    "__version__",
    "ReproError",
    "FloorplanError",
    "ThermalModelError",
    "PowerModelError",
    "WorkloadError",
    "DtmConfigError",
    "SimulationError",
    "ThermalViolationError",
    "Floorplan",
    "build_alpha21364_floorplan",
    "HotSpotModel",
    "ThermalPackage",
    "PowerModel",
    "Technology",
    "VoltageFrequencyCurve",
    "SensorArray",
    "SensorParameters",
    "ThermalThresholds",
    "NoDtmPolicy",
    "DvsPolicy",
    "DvsConfig",
    "FetchGatingPolicy",
    "HybPolicy",
    "HybConfig",
    "PIHybPolicy",
    "PIHybConfig",
    "Workload",
    "build_benchmark",
    "build_spec_suite",
    "SimulationEngine",
    "EngineConfig",
    "RunResult",
    "make_policy",
    "evaluate_techniques",
    "sweep_duty_cycles",
    "slowdown_factor",
    "overhead_reduction",
]
