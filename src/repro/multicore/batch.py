"""Sweep integration for dual-core runs.

:class:`DualCoreRunSpec` is the dual-core counterpart of
:class:`~repro.sim.batch.RunSpec`: a frozen, picklable description of
one :class:`~repro.multicore.engine.MultiCoreEngine` run that plugs into
:func:`~repro.sim.batch.run_many` unchanged -- supervision (retries,
timeouts, partial results), the JSONL journal (tagged ``"kind":
"multicore"`` so resume rebuilds the right result class), parent-side
warmup precomputation, and per-run observability records feeding the
:class:`~repro.obs.report.SweepReport` all apply.  The duck-typed hooks
the sweep machinery calls:

* ``digest_payload()`` -- the physics-determining fields for
  :func:`~repro.sim.supervisor.spec_digest`;
* ``precompute_warmup()`` -- a copy of the spec with ``initial``
  filled, cached per workload pair in the parent;
* ``run_in_process()`` -- dispatched by
  :func:`~repro.sim.batch.run_one`, so serial, pooled, retried and
  lockstep-delegated paths all execute a dual-core spec identically.

Dual-core specs never enter a BLAS-3 lockstep group (each engine owns a
private thermal network) and never ride the shared-memory sweep segment
(whose layout is single-core); both paths detect the spec type and fall
back to per-spec dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.dtm.thresholds import ThermalThresholds
from repro.errors import SimulationError
from repro.multicore.engine import HOP_STALL_S, MultiCoreEngine, MultiCoreResult
from repro.multicore.hopping import CoreHopper, HoppingConfig
from repro.obs import metrics as obs_metrics
from repro.obs import runctx as obs_runctx
from repro.obs import spill as obs_spill
from repro.obs import trace as obs_trace
from repro.sim.config import EngineConfig
from repro.sim.faults import fire_prerun_faults
from repro.sim.supervisor import policy_token, spec_digest
from repro.workloads.workload import Workload

DEFAULT_DURATION_S = 2.0e-3


@dataclass(frozen=True, eq=False)
class DualCoreRunSpec:
    """One dual-core simulation run, described by value.

    Parameters
    ----------
    workloads:
        One workload (or SPEC benchmark name) per core.
    policies:
        One DTM policy per core: a technique name for
        :func:`~repro.core.policies.make_policy`, or a zero-argument
        picklable factory.
    duration_s:
        Measured simulation time.
    settle_time_s:
        Unmeasured lead-in with the policies active.
    hopping:
        When given, a :class:`~repro.multicore.hopping.CoreHopper` is
        built from this config (and ``thresholds``) for the run.
    thresholds:
        Emergency/trigger thresholds for the engine and hopper.
    engine_config:
        Full engine configuration override (stepper, power path,
        compiled traces, fault plan, ``raise_on_violation``).
    seed:
        Sensor-noise seed; each run is seeded from its spec alone.
    initial:
        Node temperature vector to start from; when omitted, the
        workload pair's no-DTM steady state is computed (cached per
        process, keyed by the pair's names).
    hop_stall_s:
        Stall charged to both cores on a hopper swap.
    """

    workloads: Tuple[Union[str, Workload], Union[str, Workload]]
    policies: Tuple[Union[str, Callable], Union[str, Callable]] = (
        "none",
        "none",
    )
    duration_s: float = DEFAULT_DURATION_S
    settle_time_s: float = 0.0
    hopping: Optional[HoppingConfig] = None
    thresholds: Optional[ThermalThresholds] = None
    engine_config: Optional[EngineConfig] = None
    seed: int = 0
    initial: Optional[np.ndarray] = None
    hop_stall_s: float = HOP_STALL_S

    def __post_init__(self) -> None:
        if len(self.workloads) != 2:
            raise SimulationError("dual-core spec needs exactly 2 workloads")
        if len(self.policies) != 2:
            raise SimulationError("dual-core spec needs exactly 2 policies")
        if self.duration_s <= 0.0:
            raise SimulationError("duration must be > 0")
        if self.settle_time_s < 0.0:
            raise SimulationError("settle time must be >= 0")

    @property
    def config(self) -> EngineConfig:
        """The effective engine configuration."""
        if self.engine_config is not None:
            return self.engine_config
        return EngineConfig()

    @property
    def workload_name(self) -> str:
        """Both workloads' names without building them."""
        return "+".join(
            w if isinstance(w, str) else w.name for w in self.workloads
        )

    @property
    def policy(self) -> str:
        """Combined policy token (for failure records and run ids)."""
        return "+".join(policy_token(p) for p in self.policies)

    # --- sweep-machinery hooks ---------------------------------------------

    def digest_payload(self) -> tuple:
        """Physics-determining fields for
        :func:`~repro.sim.supervisor.spec_digest` (the initial-vector
        token is appended by the caller)."""
        return (
            "dualcore",
            self.workload_name,
            self.policy,
            self.duration_s,
            self.settle_time_s,
            repr(self.hopping),
            repr(self.thresholds),
            repr(self.config),
            self.seed,
            self.hop_stall_s,
        )

    def precompute_warmup(self) -> "DualCoreRunSpec":
        """A copy with ``initial`` filled from the cached steady state."""
        if self.initial is not None:
            return self
        return replace(self, initial=dual_core_steady_state(self.workloads))

    def run_in_process(self) -> MultiCoreResult:
        """Execute this spec here (:func:`~repro.sim.batch.run_one`
        dispatch target)."""
        return run_dual_core(self)


# Per-process steady-state cache, keyed by the workload pair's names
# (warmup runs unmanaged at nominal operation, so policies, seeds and
# hopping cannot leak in).
_WARMUP_CACHE: Dict[str, np.ndarray] = {}


def _resolve_workloads(spec: DualCoreRunSpec):
    from repro.workloads.spec import build_benchmark

    return [
        build_benchmark(w) if isinstance(w, str) else w
        for w in spec.workloads
    ]


def _build_policies(spec: DualCoreRunSpec):
    from repro.core.policies import make_policy

    return [
        make_policy(p) if isinstance(p, str) else p()
        for p in spec.policies
    ]


def dual_core_steady_state(workloads) -> np.ndarray:
    """No-DTM dual-core steady-state node temperatures, cached per
    process (a copy is returned)."""
    from repro.workloads.spec import build_benchmark

    built = [
        build_benchmark(w) if isinstance(w, str) else w for w in workloads
    ]
    key = "+".join(w.name for w in built)
    cached = _WARMUP_CACHE.get(key)
    if cached is None:
        cached = MultiCoreEngine(built).compute_initial_temperatures()
        _WARMUP_CACHE[key] = cached
    return cached.copy()


def build_engine(spec: DualCoreRunSpec) -> MultiCoreEngine:
    """The configured :class:`MultiCoreEngine` for one spec."""
    hopper = None
    if spec.hopping is not None:
        hopper = CoreHopper(spec.hopping, thresholds=spec.thresholds)
    return MultiCoreEngine(
        _resolve_workloads(spec),
        policies=_build_policies(spec),
        hopper=hopper,
        thresholds=spec.thresholds,
        config=spec.config,
        seed=spec.seed,
        hop_stall_s=spec.hop_stall_s,
    )


def run_dual_core(spec: DualCoreRunSpec) -> MultiCoreResult:
    """Execute one dual-core spec in this process.

    Mirrors :func:`~repro.sim.batch.run_one`: pre-run harness faults
    fire first, the warmup fills in when not pinned, and with
    observability enabled the run executes inside its own run context
    so its record lands in the sweep report.
    """
    fire_prerun_faults(spec.config.fault_plan, spec.seed)
    engine = build_engine(spec)
    initial = spec.initial
    if initial is None:
        initial = dual_core_steady_state(spec.workloads)
    initial_vec = np.array(initial, dtype=float, copy=True)
    if not obs_metrics.enabled():
        return engine.run(
            spec.duration_s,
            initial=initial_vec,
            settle_time_s=spec.settle_time_s,
        )
    digest = spec_digest(replace(spec, initial=None))
    run_id = f"{spec.workload_name}.{spec.policy}.s{spec.seed}.{digest[:8]}"
    obs_runctx.begin(
        run_id,
        benchmark=spec.workload_name,
        policy=spec.policy,
        seed=spec.seed,
        digest=digest,
    )
    error: Optional[str] = None
    try:
        with obs_trace.span("run.total"):
            return engine.run(
                spec.duration_s,
                initial=initial_vec,
                settle_time_s=spec.settle_time_s,
            )
    except BaseException as exc:
        error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        obs_spill.record(obs_runctx.end(error=error))
