"""The block-level power model facade.

:class:`PowerModel` combines the dynamic and leakage components and speaks
in per-block mappings, so the co-simulation engine never touches the
individual formulas.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from repro.errors import PowerModelError
from repro.floorplan.floorplan import Floorplan
from repro.power.budget import default_power_specs
from repro.power.dynamic import BlockPowerSpec, dynamic_power
from repro.power.leakage import LeakageParameters, leakage_power
from repro.power.technology import Technology, default_technology
from repro.power.vf_curve import VoltageFrequencyCurve


class PowerModel:
    """Computes per-block power from activities, operating point and
    temperatures.

    Parameters
    ----------
    floorplan:
        Defines the block set; every block needs a spec.
    specs:
        Per-block power characteristics; defaults to the Alpha budget.
    technology:
        Process parameters; defaults to 130 nm / 1.3 V / 3 GHz.
    leakage_params:
        Leakage curve shape.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        specs: Optional[Mapping[str, BlockPowerSpec]] = None,
        technology: Optional[Technology] = None,
        leakage_params: Optional[LeakageParameters] = None,
    ):
        self._floorplan = floorplan
        self._specs = dict(specs) if specs is not None else default_power_specs()
        self._tech = technology if technology is not None else default_technology()
        self._leakage = (
            leakage_params if leakage_params is not None else LeakageParameters()
        )
        missing = [n for n in floorplan.block_names if n not in self._specs]
        if missing:
            raise PowerModelError(f"no power spec for blocks: {missing}")
        self._vf_curve = VoltageFrequencyCurve(self._tech)

    # --- introspection -----------------------------------------------------------

    @property
    def floorplan(self) -> Floorplan:
        """The floorplan the model covers."""
        return self._floorplan

    @property
    def technology(self) -> Technology:
        """Process parameters."""
        return self._tech

    @property
    def vf_curve(self) -> VoltageFrequencyCurve:
        """The voltage-to-frequency curve for this technology."""
        return self._vf_curve

    @property
    def leakage_params(self) -> LeakageParameters:
        """Leakage curve shape."""
        return self._leakage

    def spec(self, block: str) -> BlockPowerSpec:
        """Power spec of one block."""
        try:
            return self._specs[block]
        except KeyError:
            raise PowerModelError(f"no power spec for block {block!r}") from None

    # --- evaluation --------------------------------------------------------------

    def block_powers(
        self,
        activities: Mapping[str, float],
        voltage: float,
        frequency: float,
        temperatures: Mapping[str, float],
        clock_enabled_fraction: Union[float, Mapping[str, float]] = 1.0,
    ) -> Dict[str, float]:
        """Total (dynamic + leakage) power per block, in watts.

        Parameters
        ----------
        activities:
            Per-block switching activity in [0, 1]; every floorplan block
            must be present.
        voltage:
            Supply voltage in volts.
        frequency:
            Clock frequency in hertz (must respect the V/f curve; validated
            against the curve with a small tolerance).
        temperatures:
            Per-block temperatures in Celsius for the leakage term.
        clock_enabled_fraction:
            Fraction of the interval the clock runs: a single number for
            global clock gating, or a per-block mapping (missing blocks
            default to 1.0) for local toggling of individual clock
            domains.
        """
        v_rel = self._tech.relative_voltage(voltage)
        f_max = self._vf_curve.frequency(voltage)
        if frequency > f_max * (1.0 + 1e-9):
            raise PowerModelError(
                f"frequency {frequency / 1e9:.3f} GHz exceeds the maximum "
                f"{f_max / 1e9:.3f} GHz allowed at {voltage} V"
            )
        f_rel = frequency / self._tech.frequency_nominal

        per_block_gate = not isinstance(clock_enabled_fraction, (int, float))
        powers: Dict[str, float] = {}
        for name in self._floorplan.block_names:
            if name not in activities:
                raise PowerModelError(f"no activity given for block {name!r}")
            if name not in temperatures:
                raise PowerModelError(f"no temperature given for block {name!r}")
            spec = self._specs[name]
            if per_block_gate:
                gate = clock_enabled_fraction.get(name, 1.0)
            else:
                gate = clock_enabled_fraction
            dyn = dynamic_power(spec, activities[name], v_rel, f_rel, gate)
            leak = leakage_power(
                spec.leakage_ref_w, v_rel, temperatures[name], self._leakage
            )
            powers[name] = dyn + leak
        return powers

    def total_power(
        self,
        activities: Mapping[str, float],
        voltage: float,
        frequency: float,
        temperatures: Mapping[str, float],
        clock_enabled_fraction: Union[float, Mapping[str, float]] = 1.0,
    ) -> float:
        """Chip-wide power in watts for the given operating point."""
        return sum(
            self.block_powers(
                activities, voltage, frequency, temperatures, clock_enabled_fraction
            ).values()
        )
