"""Global clock gating (Pentium 4-style).

The entire clock is stopped for a fraction of the time, eliminating clock
tree power as well as activity, but also stopping all progress: unlike
fetch gating there is no ILP to hide behind, so slowdown tracks the duty
directly.  The duty is set by an integral controller like fetch gating's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.dtm.base import DtmCommand, DtmPolicy
from repro.dtm.controllers import IntegralController
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import DtmConfigError


@dataclass(frozen=True)
class ClockGatingConfig:
    """Configuration of the clock-gating policy.

    Parameters
    ----------
    ki:
        Integral gain in duty units per Kelvin-second.
    max_duty:
        Largest fraction of time the clock may be stopped.
    nominal_voltage:
        Supply voltage (clock gating never touches it).
    """

    ki: float = 600.0
    max_duty: float = 0.9
    nominal_voltage: float = 1.3

    def __post_init__(self) -> None:
        if self.ki <= 0.0:
            raise DtmConfigError("ki must be > 0")
        if not 0.0 < self.max_duty < 1.0:
            raise DtmConfigError("max duty must be in (0, 1)")
        if self.nominal_voltage <= 0.0:
            raise DtmConfigError("voltage must be > 0")


class ClockGatingPolicy(DtmPolicy):
    """Integral-controlled global clock stop at nominal voltage."""

    name = "CG"
    hottest_only = True

    def __init__(
        self,
        config: Optional[ClockGatingConfig] = None,
        thresholds: Optional[ThermalThresholds] = None,
    ):
        self._config = config if config is not None else ClockGatingConfig()
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        self._controller = IntegralController(
            ki=self._config.ki,
            setpoint=self._thresholds.trigger_c,
            output_min=0.0,
            output_max=self._config.max_duty,
        )
        self._duty = 0.0

    @property
    def config(self) -> ClockGatingConfig:
        """The policy configuration."""
        return self._config

    @property
    def duty(self) -> float:
        """Current fraction of time the clock is stopped."""
        return self._duty

    def update(
        self, readings: Mapping[str, float], time_s: float, dt_s: float
    ) -> DtmCommand:
        """Integrate the temperature error into a new stop duty."""
        return self.update_hottest(self.hottest(readings), time_s, dt_s)

    def update_hottest(
        self, hottest: float, time_s: float, dt_s: float
    ) -> DtmCommand:
        """Integrate the temperature error into a new stop duty."""
        self._duty = self._controller.update(hottest, dt_s)
        return DtmCommand(
            gating_fraction=0.0,
            voltage=self._config.nominal_voltage,
            clock_enabled_fraction=max(1.0 - self._duty, 1e-3),
        )

    def reset(self) -> None:
        """Run the clock continuously and clear the integral state."""
        self._controller.reset()
        self._duty = 0.0
