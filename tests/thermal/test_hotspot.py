"""HotSpotModel facade."""

import pytest

from repro.errors import ThermalModelError
from repro.thermal import HotSpotModel, ThermalPackage


@pytest.fixture(scope="module")
def model(floorplan):
    return HotSpotModel(floorplan)


def uniform_power(model, watts):
    return {name: watts for name in model.block_names}


class TestSteadyState:
    def test_returns_all_nodes(self, model):
        temps = model.steady_state(uniform_power(model, 1.0))
        assert set(temps) == set(model.network.node_names)

    def test_uniform_power_heats_small_blocks_more(self, model):
        temps = model.steady_state(uniform_power(model, 1.0))
        # Same power into a smaller area means higher power density.
        assert temps["IntReg"] > temps["Icache"] > temps["L2"]

    def test_intreg_is_hotspot_under_alpha_budget(
        self, model, power_model, warm_temperatures, uniform_activities
    ):
        activities = dict(uniform_activities)
        activities["IntReg"] = 0.9
        powers = power_model.block_powers(
            activities, 1.3, 3e9, warm_temperatures
        )
        temps = model.steady_state(powers)
        assert model.hottest_block(temps) == "IntReg"

    def test_vector_and_mapping_agree(self, model):
        powers = uniform_power(model, 2.0)
        vector = model.steady_state_vector(powers)
        mapping = model.steady_state(powers)
        for i, name in enumerate(model.network.node_names):
            assert mapping[name] == pytest.approx(vector[i])


class TestTransientFactory:
    def test_default_initial_is_ambient(self, model):
        solver = model.make_transient()
        assert solver.temperatures == pytest.approx(
            model.package.ambient_c
        )

    def test_explicit_initial_mapping(self, model):
        initial = {name: 60.0 for name in model.network.node_names}
        solver = model.make_transient(initial)
        assert solver.temperatures == pytest.approx(60.0)

    def test_incomplete_initial_mapping_raises(self, model):
        with pytest.raises(KeyError):
            model.make_transient({"IntReg": 60.0})


def test_custom_package_changes_operating_point(floorplan):
    cheap = HotSpotModel(floorplan, ThermalPackage(convection_resistance=1.0))
    premium = HotSpotModel(floorplan, ThermalPackage(convection_resistance=0.5))
    powers = {name: 1.5 for name in cheap.block_names}
    hot = cheap.steady_state(powers)["IntReg"]
    cool = premium.steady_state(powers)["IntReg"]
    # A better heat sink lowers everything by ~ P_total * delta_R.
    total = 1.5 * len(cheap.block_names)
    assert hot - cool == pytest.approx(total * 0.5, rel=0.05)


def test_missing_power_entry_raises(floorplan):
    model = HotSpotModel(floorplan)
    with pytest.raises(ThermalModelError):
        model.steady_state({"IntReg": 1.0})
