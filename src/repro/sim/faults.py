"""Deterministic fault injection for sweep robustness testing.

The paper's premise is control under imperfect conditions -- noisy,
offset sensors and an emergency threshold that must never be crossed --
and the sweep harness itself must hold up under the same kind of abuse:
worker processes die, solvers emit NaNs, sensors stick or drop out.
This module describes those faults *by value*, attached to an
:class:`~repro.sim.config.EngineConfig` (and therefore to a
:class:`~repro.sim.batch.RunSpec`), so a chaos experiment is exactly as
reproducible as the sweep it perturbs:

* faults target specs by their ``seed`` (:meth:`FaultPlan.targets`), so
  the same plan over the same spec list always hits the same runs;
* *transient* faults -- worker crash, artificial delay, solver power
  corruption -- model harness-level failures.  They fire once: the
  sweep supervisor strips them (:meth:`FaultPlan.transient_cleared`)
  when it retries a failed run, so a retried run is the fault-free run,
  bit for bit;
* *sensor* faults (:mod:`repro.sensors.faults`) model plant-level
  degradation.  They are physics, not harness noise, so they survive
  retries: a run with a stuck sensor is *supposed* to produce the
  stuck-sensor trajectory every time.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import InjectedFaultError, SimulationError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.sensors.faults import SensorFault

_LOGGER = logging.getLogger("repro.faults")

CORRUPT_NAN = "nan"
CORRUPT_INF = "inf"

_CORRUPTIONS = {CORRUPT_NAN: float("nan"), CORRUPT_INF: float("inf")}


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic faults to inject into matching runs.

    Parameters
    ----------
    seeds:
        Spec seeds the faults target; an empty tuple targets every run.
    crash_worker:
        Kill the executing process outright (``os._exit``) when running
        inside a pool worker -- the supervisor sees
        ``BrokenProcessPool`` -- or raise
        :class:`~repro.errors.InjectedFaultError` when running serially
        (an interpreter must not kill itself).
    delay_s:
        Sleep this long before the run starts executing, to exercise
        per-run timeouts.
    corrupt_power_at_step:
        Thermal-step index (0-based, counting execution steps) at which
        the power vector fed to the solver is corrupted; the solver's
        numerical-health guard then raises
        :class:`~repro.errors.NumericalError`.
    corruption:
        ``"nan"`` or ``"inf"`` -- the poison value used.
    sensor_faults:
        Persistent per-block sensor degradation (see
        :mod:`repro.sensors.faults`); applied to the engine's default
        sensor array for targeted runs.
    """

    seeds: Tuple[int, ...] = ()
    crash_worker: bool = False
    delay_s: float = 0.0
    corrupt_power_at_step: Optional[int] = None
    corruption: str = CORRUPT_NAN
    sensor_faults: Tuple[SensorFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(
            self, "sensor_faults", tuple(self.sensor_faults)
        )
        if self.delay_s < 0.0:
            raise SimulationError("fault delay must be >= 0")
        if self.corruption not in _CORRUPTIONS:
            raise SimulationError(
                f"corruption must be one of {tuple(_CORRUPTIONS)}, "
                f"got {self.corruption!r}"
            )
        if (
            self.corrupt_power_at_step is not None
            and self.corrupt_power_at_step < 0
        ):
            raise SimulationError("corruption step must be >= 0")

    def targets(self, seed: int) -> bool:
        """True when this plan's faults apply to a run with ``seed``."""
        return not self.seeds or seed in self.seeds

    @property
    def poison(self) -> float:
        """The corruption value (NaN or +Inf)."""
        return _CORRUPTIONS[self.corruption]

    @property
    def has_transient_faults(self) -> bool:
        """True when any harness-level (one-shot) fault is armed."""
        return (
            self.crash_worker
            or self.delay_s > 0.0
            or self.corrupt_power_at_step is not None
        )

    def transient_cleared(self) -> Optional["FaultPlan"]:
        """This plan with the one-shot harness faults disarmed.

        Sensor faults survive (they are plant physics); returns ``None``
        when nothing survives, so retried specs carry no dead weight.
        """
        if not self.sensor_faults:
            return None
        return replace(
            self,
            crash_worker=False,
            delay_s=0.0,
            corrupt_power_at_step=None,
        )


def in_worker_process() -> bool:
    """True when executing inside a spawned/forked worker process."""
    return multiprocessing.parent_process() is not None


def fire_prerun_faults(plan: Optional[FaultPlan], seed: int) -> None:
    """Fire the pre-run harness faults (delay, crash) of ``plan``.

    Called by the batch runners at the top of each run.  A crash fault
    exits the process only inside a pool worker; serially it raises
    :class:`~repro.errors.InjectedFaultError` so the supervisor's retry
    path is exercised without killing the interpreter.
    """
    if plan is None or not plan.targets(seed):
        return
    if plan.has_transient_faults:
        _LOGGER.warning(
            "fault plan armed for run seed %d (crash=%s, delay=%.3gs, "
            "corrupt_at_step=%s)",
            seed,
            plan.crash_worker,
            plan.delay_s,
            plan.corrupt_power_at_step,
        )
        obs_metrics.inc("faults.prerun_armed")
        obs_events.emit(
            "faults.prerun_armed",
            seed=seed,
            crash_worker=plan.crash_worker,
            delay_s=plan.delay_s,
            corrupt_power_at_step=plan.corrupt_power_at_step,
        )
    if plan.delay_s > 0.0:
        time.sleep(plan.delay_s)
    if plan.crash_worker:
        if in_worker_process():
            obs_events.emit("faults.worker_crash", seed=seed)
            os._exit(17)
        raise InjectedFaultError(
            f"injected worker crash for run seed {seed}"
        )
