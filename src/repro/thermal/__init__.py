"""HotSpot-style compact thermal model.

The model follows the methodology of Skadron et al.'s HotSpot (ISCA 2003):
an equivalent RC circuit is derived purely from the floorplan geometry and
package description.  Each block gets one die node with a vertical
resistance through the die, thermal interface material and heat spreader;
adjacent blocks are coupled by lateral resistances through the silicon; the
spreader and heat sink are lumped nodes; the sink couples to ambient through
a convection resistance (1.0 K/W for the paper's low-cost package).

Heat flow is solved with a dense symmetric conductance matrix: steady state
via a cached linear factorisation, transients via either the exact
exponential propagator (default) or backward Euler (regression anchor),
each with a small LRU of per-time-step operators.
"""

from repro.thermal.materials import COPPER, SILICON, Material
from repro.thermal.package import ThermalPackage, default_package
from repro.thermal.rc_model import (
    ThermalNetwork,
    build_detailed_thermal_network,
    build_thermal_network,
)
from repro.thermal.solver import (
    STEPPER_BACKWARD_EULER,
    STEPPER_EXPONENTIAL,
    ExponentialSolver,
    TransientSolver,
    make_transient_solver,
    steady_state,
)
from repro.thermal.hotspot import HotSpotModel

__all__ = [
    "Material",
    "SILICON",
    "COPPER",
    "ThermalPackage",
    "default_package",
    "ThermalNetwork",
    "build_thermal_network",
    "build_detailed_thermal_network",
    "TransientSolver",
    "ExponentialSolver",
    "make_transient_solver",
    "STEPPER_BACKWARD_EULER",
    "STEPPER_EXPONENTIAL",
    "steady_state",
    "HotSpotModel",
]
