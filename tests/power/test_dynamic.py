"""Dynamic power."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PowerModelError
from repro.power import BlockPowerSpec, dynamic_power


@pytest.fixture(scope="module")
def spec():
    return BlockPowerSpec(
        name="IntReg", peak_dynamic_w=6.0, leakage_ref_w=0.9, clock_fraction=0.2
    )


def test_full_activity_at_nominal_is_peak(spec):
    assert dynamic_power(spec, 1.0, 1.0, 1.0) == pytest.approx(6.0)


def test_zero_activity_leaves_clock_power(spec):
    assert dynamic_power(spec, 0.0, 1.0, 1.0) == pytest.approx(6.0 * 0.2)


def test_clock_gating_removes_clock_power(spec):
    assert dynamic_power(spec, 0.0, 1.0, 1.0, clock_enabled_fraction=0.0) == 0.0


def test_v_squared_f_scaling(spec):
    full = dynamic_power(spec, 1.0, 1.0, 1.0)
    scaled = dynamic_power(spec, 1.0, 0.85, 0.873)
    assert scaled / full == pytest.approx(0.85**2 * 0.873)


def test_partial_clock_gating_scales_linearly(spec):
    full = dynamic_power(spec, 0.7, 1.0, 1.0)
    half = dynamic_power(spec, 0.7, 1.0, 1.0, clock_enabled_fraction=0.5)
    assert half == pytest.approx(0.5 * full)


@pytest.mark.parametrize("activity", [-0.1, 1.1])
def test_rejects_activity_out_of_range(spec, activity):
    with pytest.raises(PowerModelError):
        dynamic_power(spec, activity, 1.0, 1.0)


def test_rejects_bad_operating_point(spec):
    with pytest.raises(PowerModelError):
        dynamic_power(spec, 0.5, 0.0, 1.0)
    with pytest.raises(PowerModelError):
        dynamic_power(spec, 0.5, 1.0, -1.0)


def test_spec_validation():
    with pytest.raises(PowerModelError):
        BlockPowerSpec(name="x", peak_dynamic_w=-1.0, leakage_ref_w=0.0)
    with pytest.raises(PowerModelError):
        BlockPowerSpec(name="x", peak_dynamic_w=1.0, leakage_ref_w=-0.1)
    with pytest.raises(PowerModelError):
        BlockPowerSpec(
            name="x", peak_dynamic_w=1.0, leakage_ref_w=0.0, clock_fraction=1.5
        )


@given(
    activity=st.floats(0.0, 1.0),
    v=st.floats(0.5, 1.0),
    f=st.floats(0.5, 1.0),
)
def test_property_power_bounded_by_peak(activity, v, f):
    spec = BlockPowerSpec(name="b", peak_dynamic_w=5.0, leakage_ref_w=0.5)
    p = dynamic_power(spec, activity, v, f)
    assert 0.0 <= p <= 5.0 + 1e-12


@given(a1=st.floats(0.0, 1.0), a2=st.floats(0.0, 1.0))
def test_property_monotone_in_activity(a1, a2):
    spec = BlockPowerSpec(name="b", peak_dynamic_w=5.0, leakage_ref_w=0.5)
    lo, hi = sorted((a1, a2))
    p_lo = dynamic_power(spec, lo, 1.0, 1.0)
    p_hi = dynamic_power(spec, hi, 1.0, 1.0)
    assert p_lo <= p_hi + 1e-12
