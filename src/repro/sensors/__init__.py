"""On-chip thermal sensors.

One sensor per architectural block (paper, Section 3): effective precision
of 1 degree after averaging, a fixed per-sensor offset of up to 2 degrees,
and a 10 kHz sampling rate that bounds how fast DTM can observe and react.
:mod:`repro.sensors.faults` degrades sensors beyond that calibrated model
(stuck-at, dropout, drifted offset) for robustness studies.
"""

from repro.sensors.sensor import SensorParameters, ThermalSensor
from repro.sensors.array import SensorArray
from repro.sensors.faults import SensorFault

__all__ = ["SensorFault", "SensorParameters", "ThermalSensor", "SensorArray"]
