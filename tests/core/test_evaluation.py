"""Suite evaluation harness (scaled-down budgets)."""

import pytest

from repro.core import evaluate_techniques, make_policy
from repro.core.evaluation import evaluate_policy, run_baselines
from repro.dtm import DvsPolicy, FetchGatingPolicy
from repro.errors import SimulationError
from repro.workloads import build_benchmark

FAST_N = 2_000_000
SETTLE = 1.0e-3


@pytest.fixture(scope="module")
def baselines():
    suite = [build_benchmark("mesa"), build_benchmark("gzip")]
    return run_baselines(suite=suite, instructions=FAST_N,
                         settle_time_s=SETTLE)


class TestBaselines:
    def test_caches_per_benchmark(self, baselines):
        assert set(baselines.baseline) == {"mesa", "gzip"}
        assert set(baselines.initial) == {"mesa", "gzip"}

    def test_baselines_commit_budget(self, baselines):
        for run in baselines.baseline.values():
            assert run.instructions == FAST_N


class TestEvaluatePolicy:
    def test_dvs_evaluation(self, baselines):
        evaluation = evaluate_policy(DvsPolicy, baselines)
        assert evaluation.policy == "DVS"
        assert set(evaluation.slowdowns) == {"mesa", "gzip"}
        for slowdown in evaluation.slowdowns.values():
            assert slowdown >= 1.0
        assert evaluation.total_violations == 0

    def test_mean_slowdown_is_average(self, baselines):
        evaluation = evaluate_policy(DvsPolicy, baselines)
        values = list(evaluation.slowdowns.values())
        assert evaluation.mean_slowdown == pytest.approx(sum(values) / 2)

    def test_fresh_policy_per_benchmark(self, baselines):
        # The factory is called once per benchmark; controller state must
        # not leak, so a second evaluation is identical.
        first = evaluate_policy(FetchGatingPolicy, baselines)
        second = evaluate_policy(FetchGatingPolicy, baselines)
        assert first.slowdowns == pytest.approx(second.slowdowns)

    def test_inconsistent_factory_rejected(self, baselines):
        policies = iter([DvsPolicy(), FetchGatingPolicy()])
        with pytest.raises(SimulationError):
            evaluate_policy(lambda: next(policies), baselines)


class TestEvaluateTechniques:
    def test_figure4_shape_on_subset(self, baselines):
        results = evaluate_techniques(
            names=("FG", "DVS", "Hyb"), baselines=baselines
        )
        assert set(results) == {"FG", "DVS", "Hyb"}
        for name, evaluation in results.items():
            assert evaluation.policy == name
            assert evaluation.total_violations == 0

    def test_dvs_mode_recorded(self, baselines):
        results = evaluate_techniques(
            names=("DVS",), baselines=baselines, dvs_mode="ideal"
        )
        assert results["DVS"].dvs_mode == "ideal"
