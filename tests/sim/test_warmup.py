"""Steady-state initialisation."""

import numpy as np
import pytest

from repro.sim import average_block_powers, initial_temperatures
from repro.sim.warmup import average_activities


class TestAverageActivities:
    def test_weighted_by_cycles(self, gzip_workload):
        averages = average_activities(gzip_workload)
        per_phase = [p.base_activities["IntReg"] for p in gzip_workload.phases]
        assert min(per_phase) <= averages["IntReg"] <= max(per_phase)

    def test_covers_all_blocks(self, gzip_workload, floorplan):
        averages = average_activities(gzip_workload)
        assert set(averages) == set(floorplan.block_names)


class TestAveragePowers:
    def test_positive_everywhere(self, gzip_workload, power_model,
                                 warm_temperatures):
        powers = average_block_powers(
            gzip_workload, power_model, warm_temperatures
        )
        assert all(p > 0.0 for p in powers.values())

    def test_total_in_calibrated_range(self, gzip_workload, power_model,
                                       warm_temperatures):
        powers = average_block_powers(
            gzip_workload, power_model, warm_temperatures
        )
        assert 18.0 < sum(powers.values()) < 32.0


class TestInitialTemperatures:
    def test_self_consistent_fixed_point(self, gzip_workload, hotspot,
                                         power_model):
        vector = initial_temperatures(gzip_workload, hotspot, power_model)
        mapping = hotspot.network.temperatures_as_mapping(vector)
        temps = {n: mapping[n] for n in hotspot.block_names}
        # Re-evaluating power at the fixed point reproduces the same
        # temperatures.
        powers = average_block_powers(gzip_workload, power_model, temps)
        again = hotspot.steady_state_vector(powers)
        assert np.allclose(vector, again, atol=1e-3)

    def test_intreg_is_hottest_block(self, gzip_workload, hotspot,
                                     power_model):
        vector = initial_temperatures(gzip_workload, hotspot, power_model)
        mapping = hotspot.network.temperatures_as_mapping(vector)
        temps = {n: mapping[n] for n in hotspot.block_names}
        assert max(temps, key=temps.get) == "IntReg"

    def test_hot_benchmark_sits_above_trigger(self, gzip_workload, hotspot,
                                              power_model):
        vector = initial_temperatures(gzip_workload, hotspot, power_model)
        mapping = hotspot.network.temperatures_as_mapping(vector)
        assert mapping["IntReg"] > 81.8

    def test_all_temps_above_ambient(self, mesa_workload, hotspot,
                                     power_model):
        vector = initial_temperatures(mesa_workload, hotspot, power_model)
        assert np.all(vector > hotspot.package.ambient_c)
