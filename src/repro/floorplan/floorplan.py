"""Floorplan container: a named set of blocks plus derived adjacency."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

from repro.errors import FloorplanError
from repro.floorplan.block import Block


@dataclass(frozen=True)
class Adjacency:
    """A pair of abutting blocks and the geometry of their shared edge.

    ``center_distance`` is the centre-to-centre distance used as the lateral
    heat-flow path length in the RC model.
    """

    block_a: str
    block_b: str
    shared_edge_length: float
    center_distance: float


class Floorplan:
    """An immutable collection of non-overlapping rectangular blocks.

    Blocks are validated pairwise for overlap at construction time; whether
    the blocks fully tile the die is checked separately by
    :func:`repro.floorplan.validate.validate_floorplan` because partial
    floorplans are legitimate during exploration.
    """

    def __init__(self, blocks: Iterable[Block], name: str = "floorplan"):
        block_list = list(blocks)
        if not block_list:
            raise FloorplanError("floorplan must contain at least one block")
        names = [block.name for block in block_list]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise FloorplanError(f"duplicate block names: {duplicates}")
        for i, first in enumerate(block_list):
            for second in block_list[i + 1 :]:
                if first.overlaps(second):
                    raise FloorplanError(
                        f"blocks {first.name!r} and {second.name!r} overlap"
                    )
        self.name = name
        self._blocks: Dict[str, Block] = {block.name: block for block in block_list}
        self._order: List[str] = names
        self._adjacency = self._build_adjacency(block_list)

    @staticmethod
    def _build_adjacency(blocks: List[Block]) -> List[Adjacency]:
        pairs: List[Adjacency] = []
        for i, first in enumerate(blocks):
            for second in blocks[i + 1 :]:
                shared = first.shared_edge_length(second)
                if shared > 0.0:
                    pairs.append(
                        Adjacency(
                            block_a=first.name,
                            block_b=second.name,
                            shared_edge_length=shared,
                            center_distance=first.center_distance(second),
                        )
                    )
        return pairs

    # --- access ---------------------------------------------------------------

    @property
    def block_names(self) -> List[str]:
        """Block names in insertion order."""
        return list(self._order)

    @property
    def blocks(self) -> List[Block]:
        """Blocks in insertion order."""
        return [self._blocks[name] for name in self._order]

    @property
    def adjacencies(self) -> List[Adjacency]:
        """All abutting block pairs."""
        return list(self._adjacency)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __contains__(self, name: object) -> bool:
        return name in self._blocks

    def __getitem__(self, name: str) -> Block:
        try:
            return self._blocks[name]
        except KeyError:
            raise FloorplanError(f"no block named {name!r} in {self.name}") from None

    def index_of(self, name: str) -> int:
        """Stable integer index of a block, matching matrix row ordering in
        the thermal model."""
        try:
            return self._order.index(name)
        except ValueError:
            raise FloorplanError(f"no block named {name!r} in {self.name}") from None

    # --- derived geometry -------------------------------------------------------

    @property
    def bounding_box(self) -> Tuple[float, float, float, float]:
        """(x_min, y_min, x_max, y_max) over all blocks, in metres."""
        blocks = self.blocks
        return (
            min(block.x for block in blocks),
            min(block.y for block in blocks),
            max(block.right for block in blocks),
            max(block.top for block in blocks),
        )

    @property
    def die_area(self) -> float:
        """Area of the bounding box in m^2."""
        x_min, y_min, x_max, y_max = self.bounding_box
        return (x_max - x_min) * (y_max - y_min)

    @property
    def total_block_area(self) -> float:
        """Sum of block areas in m^2."""
        return sum(block.area for block in self.blocks)

    def neighbours(self, name: str) -> List[str]:
        """Names of the blocks abutting ``name``."""
        self[name]  # raise for unknown names
        result = []
        for pair in self._adjacency:
            if pair.block_a == name:
                result.append(pair.block_b)
            elif pair.block_b == name:
                result.append(pair.block_a)
        return result

    def power_density(self, powers: Mapping[str, float]) -> Dict[str, float]:
        """Per-block power density (W/m^2) for a ``{name: watts}`` mapping."""
        return {name: powers[name] / self[name].area for name in powers}
