"""In-text table T3: crossover-point robustness.

Paper (Section 5.1): the ILP/DVS crossover duty cycle is insensitive to
the binary-DVS low-voltage setting -- "the interaction of fetch duty cycle
with ILP is purely an architectural phenomenon and remains the same even
as the low voltage varies".
"""

from _helpers import bench_instructions, save_table

from repro.analysis import render_table
from repro.core import find_crossover
from repro.core.evaluation import evaluate_policy, run_baselines
from repro.core.crossover import CrossoverResult
from repro.dtm.fetch_gating import duty_cycle_to_gating_fraction
from repro.dtm.hybrid import PIHybConfig, PIHybPolicy

DUTY_CYCLES = (10.0, 4.0, 3.0, 2.0, 1.5)
V_LOW_RATIOS = (0.80, 0.85, 0.90)


def _run() -> str:
    baselines = run_baselines(instructions=bench_instructions())
    rows = []
    for ratio in V_LOW_RATIOS:
        evaluations = {}
        for duty in DUTY_CYCLES:
            config = PIHybConfig(
                max_gating_fraction=duty_cycle_to_gating_fraction(duty),
                v_low_ratio=ratio,
            )
            evaluations[duty] = evaluate_policy(
                lambda config=config: PIHybPolicy(config),
                baselines,
                dvs_mode="stall",
            )
        result = CrossoverResult(dvs_mode="stall", evaluations=evaluations)
        crossover = find_crossover(result)
        rows.append(
            [ratio, crossover]
            + [evaluations[d].mean_slowdown for d in DUTY_CYCLES]
        )
    return render_table(
        ["v_low ratio", "crossover duty"]
        + [f"duty {d:g}" for d in DUTY_CYCLES],
        rows,
        title="T3: crossover duty cycle across low-voltage settings "
              "(paper: identical crossover for all)",
    )


def test_t3_crossover_robustness(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("t3_crossover_robustness", table)
