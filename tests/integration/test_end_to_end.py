"""End-to-end integration: the whole stack on single benchmarks.

These tests exercise floorplan -> thermal -> power -> interval engine ->
sensors -> DTM -> metrics in one pass, at reduced instruction budgets.
"""

import pytest

from repro import (
    EngineConfig,
    SimulationEngine,
    build_benchmark,
    make_policy,
    slowdown_factor,
)
from repro.core import overhead_reduction

N = 20_000_000
SETTLE = 2.0e-3


@pytest.fixture(scope="module")
def crafty_runs():
    """crafty (most severe benchmark) under every technique."""
    workload = build_benchmark("crafty")
    engine = SimulationEngine(workload, policy=make_policy("none"))
    initial = engine.compute_initial_temperatures()
    runs = {"none": engine.run(N, initial=initial.copy(), settle_time_s=SETTLE)}
    for name in ("FG", "CG", "DVS", "PI-Hyb", "Hyb"):
        runs[name] = SimulationEngine(
            workload, policy=make_policy(name)
        ).run(N, initial=initial.copy(), settle_time_s=SETTLE)
    return runs


class TestProtection:
    def test_unmanaged_run_violates(self, crafty_runs):
        assert crafty_runs["none"].violations > 0

    @pytest.mark.parametrize("name", ["FG", "CG", "DVS", "PI-Hyb", "Hyb"])
    def test_every_technique_eliminates_violations(self, crafty_runs, name):
        assert crafty_runs[name].violations == 0, name

    @pytest.mark.parametrize("name", ["FG", "CG", "DVS", "PI-Hyb", "Hyb"])
    def test_regulated_below_emergency(self, crafty_runs, name):
        assert crafty_runs[name].max_true_temp_c <= 85.0


class TestCost:
    @pytest.mark.parametrize("name", ["FG", "CG", "DVS", "PI-Hyb", "Hyb"])
    def test_protection_costs_time(self, crafty_runs, name):
        slowdown = slowdown_factor(crafty_runs[name], crafty_runs["none"])
        assert slowdown > 1.0

    def test_fetch_gating_is_most_expensive_on_severe_heat(self, crafty_runs):
        baseline = crafty_runs["none"]
        fg = slowdown_factor(crafty_runs["FG"], baseline)
        for other in ("DVS", "PI-Hyb", "Hyb"):
            assert fg > slowdown_factor(crafty_runs[other], baseline)

    def test_hybrids_no_worse_than_dvs(self, crafty_runs):
        baseline = crafty_runs["none"]
        dvs = slowdown_factor(crafty_runs["DVS"], baseline)
        for hybrid in ("PI-Hyb", "Hyb"):
            assert slowdown_factor(crafty_runs[hybrid], baseline) <= dvs * 1.01


class TestMildBenchmark:
    def test_mild_stress_is_nearly_free_for_hybrids(self):
        workload = build_benchmark("eon")
        engine = SimulationEngine(workload, policy=make_policy("none"))
        initial = engine.compute_initial_temperatures()
        baseline = engine.run(N, initial=initial.copy(), settle_time_s=SETTLE)
        run = SimulationEngine(workload, policy=make_policy("PI-Hyb")).run(
            N, initial=initial.copy(), settle_time_s=SETTLE
        )
        assert run.violations == 0
        assert slowdown_factor(run, baseline) < 1.03

    def test_dvs_pays_quantisation_on_mild_stress(self):
        # Even mild overheating costs DVS a full voltage step; the ILP
        # technique responds proportionally.
        workload = build_benchmark("mesa")
        engine = SimulationEngine(workload, policy=make_policy("none"))
        initial = engine.compute_initial_temperatures()
        baseline = engine.run(N, initial=initial.copy(), settle_time_s=SETTLE)
        dvs = SimulationEngine(workload, policy=make_policy("DVS")).run(
            N, initial=initial.copy(), settle_time_s=SETTLE
        )
        pihyb = SimulationEngine(workload, policy=make_policy("PI-Hyb")).run(
            N, initial=initial.copy(), settle_time_s=SETTLE
        )
        assert slowdown_factor(pihyb, baseline) < slowdown_factor(dvs, baseline)


class TestDvsModes:
    def test_stall_overhead_appears_when_switching(self):
        workload = build_benchmark("vortex")
        engine = SimulationEngine(workload, policy=make_policy("none"))
        initial = engine.compute_initial_temperatures()
        runs = {}
        for mode in ("stall", "ideal"):
            runs[mode] = SimulationEngine(
                workload,
                policy=make_policy("DVS"),
                config=EngineConfig(dvs_mode=mode),
            ).run(N, initial=initial.copy(), settle_time_s=SETTLE)
        assert runs["stall"].elapsed_s >= runs["ideal"].elapsed_s
        assert runs["ideal"].stall_time_s == 0.0


def test_overhead_reduction_metric_round_trip(crafty_runs):
    baseline = crafty_runs["none"]
    dvs = slowdown_factor(crafty_runs["DVS"], baseline)
    hyb = slowdown_factor(crafty_runs["Hyb"], baseline)
    reduction = overhead_reduction(dvs, hyb)
    assert -1.0 < reduction < 1.0
