"""Batch execution of simulation runs.

Sweeps (figure reproductions, duty-cycle crossovers, suite evaluations)
are embarrassingly parallel: every run is one workload under one policy
with its own seed.  This module gives them a common runner:

* :class:`RunSpec` -- a frozen, picklable description of one run;
* :func:`run_many` -- executes a list of specs, serially or across a
  :class:`~concurrent.futures.ProcessPoolExecutor`, preserving spec order
  and producing results identical to the serial path (each run is seeded
  from its spec alone, so scheduling cannot perturb it);
* a per-process steady-state warmup cache, so the expensive no-DTM
  fixed-point solve happens once per workload rather than once per run.

Throughput accounting (:func:`stats` / :func:`reset_stats`) lets
benchmarks report thermal steps per second for whole sweeps.
"""

from __future__ import annotations

import atexit
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import SimulationError
from repro.sim.config import EngineConfig
from repro.sim.results import RunResult
from repro.workloads.workload import Workload

DEFAULT_INSTRUCTIONS = 20_000_000


@dataclass(frozen=True, eq=False)
class RunSpec:
    """One simulation run, described by value.

    Everything needed to reproduce the run is in the spec -- workload,
    policy, budget, engine configuration and seed -- so a spec can be
    shipped to a worker process and executed there with a result
    identical to running it in-process.

    Parameters
    ----------
    workload:
        A :class:`~repro.workloads.workload.Workload`, or a SPEC
        benchmark name (resolved with
        :func:`~repro.workloads.spec.build_benchmark`).
    policy:
        A technique name for :func:`~repro.core.policies.make_policy`,
        or a zero-argument factory returning a fresh
        :class:`~repro.dtm.base.DtmPolicy`.  Factories must be picklable
        for multi-process execution -- use :func:`functools.partial`
        around a top-level class or function, not a lambda.
    instructions:
        Measured commit budget.
    settle_time_s:
        Unmeasured lead-in with the policy active.
    dvs_mode:
        Shorthand for ``EngineConfig(dvs_mode=...)``; ignored when
        ``engine_config`` is given.
    engine_config:
        Full engine configuration override.
    seed:
        Sensor-noise seed; each run is seeded from its spec alone.
    initial:
        Node temperature vector to start from.  When omitted, the
        workload's no-DTM steady state is computed (and cached per
        process, keyed by the workload's name under the default
        floorplan/package/technology substrate).
    """

    workload: Union[str, Workload]
    policy: Union[str, Callable] = "none"
    instructions: int = DEFAULT_INSTRUCTIONS
    settle_time_s: float = 0.0
    dvs_mode: str = "stall"
    engine_config: Optional[EngineConfig] = None
    seed: int = 0
    initial: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise SimulationError("instruction budget must be > 0")
        if self.settle_time_s < 0.0:
            raise SimulationError("settle time must be >= 0")

    @property
    def config(self) -> EngineConfig:
        """The effective engine configuration."""
        if self.engine_config is not None:
            return self.engine_config
        return EngineConfig(dvs_mode=self.dvs_mode)

    @property
    def workload_name(self) -> str:
        """The workload's name without building it."""
        if isinstance(self.workload, str):
            return self.workload
        return self.workload.name


@dataclass
class BatchStats:
    """Aggregate throughput over :func:`run_many` calls since the last
    :func:`reset_stats`."""

    runs: int = 0
    thermal_steps: float = 0.0
    wall_s: float = 0.0

    @property
    def steps_per_second(self) -> float:
        """Measured thermal steps per wall-clock second."""
        return self.thermal_steps / self.wall_s if self.wall_s > 0.0 else 0.0


_TOTALS = BatchStats()

# Per-process steady-state cache: workload name -> node temperature
# vector.  Valid for the default substrate only (RunSpec carries no
# floorplan/package/technology overrides); specs with an explicit
# ``initial`` bypass it.
_WARMUP_CACHE: Dict[str, np.ndarray] = {}

# Per-process default substrate (floorplan, thermal model, power model),
# shared across every engine this module builds: all three are read-only
# after construction, and re-assembling the thermal network is the
# dominant per-run fixed cost in short sweeps.
_SUBSTRATE: Optional[tuple] = None


def _default_substrate() -> tuple:
    global _SUBSTRATE
    if _SUBSTRATE is None:
        from repro.floorplan.alpha21364 import build_alpha21364_floorplan
        from repro.power.model import PowerModel
        from repro.thermal.hotspot import HotSpotModel

        floorplan = build_alpha21364_floorplan()
        _SUBSTRATE = (
            floorplan,
            HotSpotModel(floorplan),
            PowerModel(floorplan),
        )
    return _SUBSTRATE

# The worker pool persists across run_many calls: a sweep issues one
# batch per policy configuration, and paying pool start-up per batch
# would dominate short sweeps.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_SIZE = 0


def _get_pool(processes: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_SIZE
    if _POOL is not None and _POOL_SIZE != processes:
        _POOL.shutdown(wait=False)
        _POOL = None
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=processes)
        _POOL_SIZE = processes
    return _POOL


def _shutdown_pool() -> None:
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=False)
        _POOL = None


atexit.register(_shutdown_pool)


def reset_stats() -> None:
    """Zero the batch throughput counters."""
    global _TOTALS
    _TOTALS = BatchStats()


def stats() -> BatchStats:
    """A snapshot of the batch throughput counters."""
    return replace(_TOTALS)


def _resolve_workload(spec: RunSpec) -> Workload:
    if isinstance(spec.workload, str):
        from repro.workloads.spec import build_benchmark

        return build_benchmark(spec.workload)
    return spec.workload


def _build_policy(spec: RunSpec):
    if isinstance(spec.policy, str):
        from repro.core.policies import make_policy

        return make_policy(spec.policy)
    return spec.policy()


def steady_state_for(workload: Union[str, Workload]) -> np.ndarray:
    """No-DTM steady-state node temperatures under the default substrate,
    cached per process (a copy is returned)."""
    name = workload if isinstance(workload, str) else workload.name
    cached = _WARMUP_CACHE.get(name)
    if cached is None:
        from repro.sim.engine import SimulationEngine

        if isinstance(workload, str):
            from repro.workloads.spec import build_benchmark

            workload = build_benchmark(workload)
        floorplan, hotspot, power_model = _default_substrate()
        engine = SimulationEngine(
            workload,
            floorplan=floorplan,
            hotspot=hotspot,
            power_model=power_model,
        )
        cached = engine.compute_initial_temperatures()
        _WARMUP_CACHE[name] = cached
    return cached.copy()


def run_one(spec: RunSpec) -> RunResult:
    """Execute one spec in this process."""
    from repro.sim.engine import SimulationEngine

    workload = _resolve_workload(spec)
    initial = spec.initial
    if initial is None:
        initial = steady_state_for(workload)
    floorplan, hotspot, power_model = _default_substrate()
    engine = SimulationEngine(
        workload,
        policy=_build_policy(spec),
        floorplan=floorplan,
        hotspot=hotspot,
        power_model=power_model,
        config=spec.config,
        seed=spec.seed,
    )
    return engine.run(
        spec.instructions,
        initial=np.array(initial, dtype=float, copy=True),
        settle_time_s=spec.settle_time_s,
    )


def _precompute_warmups(specs: Sequence[RunSpec]) -> List[RunSpec]:
    """Fill in ``initial`` for every spec that lacks one.

    The steady-state solve is the per-run fixed cost; computing each
    distinct workload's warmup once in the parent keeps worker processes
    from repeating it and keeps results independent of how specs are
    distributed over the pool.
    """
    filled: List[RunSpec] = []
    for spec in specs:
        if spec.initial is None:
            filled.append(replace(spec, initial=steady_state_for(spec.workload)))
        else:
            filled.append(spec)
    return filled


def _chunk_evenly(specs: Sequence[RunSpec], parts: int) -> List[List[RunSpec]]:
    """Split ``specs`` into at most ``parts`` contiguous, near-equal,
    non-empty chunks (order preserved, so flattening chunk results
    restores spec order)."""
    parts = min(parts, len(specs))
    base, extra = divmod(len(specs), parts)
    chunks: List[List[RunSpec]] = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        chunks.append(list(specs[start:stop]))
        start = stop
    return chunks


def run_many(
    specs: Sequence[RunSpec],
    processes: Optional[int] = None,
    lockstep: bool = False,
) -> List[RunResult]:
    """Execute ``specs`` and return their results in spec order.

    Parameters
    ----------
    specs:
        The runs to execute.
    processes:
        ``None`` or ``1`` -- run serially in this process.  ``N > 1`` --
        fan out over a process pool of ``N`` workers.  Results are
        identical either way: warmups are precomputed in the parent and
        every run is seeded from its spec, so the schedule cannot leak
        into the physics.  Specs that fail to pickle (e.g. a lambda
        policy factory) trigger a warning and a serial fallback.
    lockstep:
        Advance the batch's runs together, servicing their thermal
        steps with one batched BLAS-3 operation per step group (see
        :mod:`repro.sim.lockstep`).  Composes with ``processes``: each
        worker receives one contiguous chunk of specs and runs it in
        lockstep.  Results match the non-lockstep path to BLAS
        summation order.
    """
    specs = list(specs)
    if not specs:
        return []
    started = time.perf_counter()
    if lockstep:
        from repro.sim.lockstep import run_lockstep

        runner: Callable = run_lockstep
    else:
        runner = None  # type: ignore[assignment]
    if processes is not None and processes > 1:
        specs = _precompute_warmups(specs)
        unpicklable = _first_unpicklable(specs)
        if unpicklable is not None:
            warnings.warn(
                f"spec #{unpicklable} is not picklable (lambda policy "
                f"factory? use functools.partial); running the batch "
                f"serially",
                RuntimeWarning,
                stacklevel=2,
            )
            results = (
                runner(specs) if lockstep else [run_one(s) for s in specs]
            )
        else:
            if lockstep:
                chunks = _chunk_evenly(specs, processes)
                try:
                    chunked = list(_get_pool(processes).map(runner, chunks))
                except BrokenProcessPool:
                    _shutdown_pool()
                    chunked = list(_get_pool(processes).map(runner, chunks))
                results = [result for chunk in chunked for result in chunk]
            else:
                try:
                    results = list(_get_pool(processes).map(run_one, specs))
                except BrokenProcessPool:
                    # A worker died (e.g. OOM-killed); rebuild the pool
                    # and retry the batch once before giving up.
                    _shutdown_pool()
                    results = list(_get_pool(processes).map(run_one, specs))
    elif lockstep:
        results = runner(specs)
    else:
        results = [run_one(spec) for spec in specs]
    wall = time.perf_counter() - started
    _TOTALS.runs += len(results)
    _TOTALS.wall_s += wall
    for spec, result in zip(specs, results):
        _TOTALS.thermal_steps += (
            result.cycles / spec.config.thermal_step_cycles
        )
    return results


def _first_unpicklable(specs: Sequence[RunSpec]) -> Optional[int]:
    for i, spec in enumerate(specs):
        try:
            pickle.dumps(spec)
        except Exception:
            return i
    return None
