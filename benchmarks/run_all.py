"""Run the benchmark harness end to end and summarise throughput.

Each bench module regenerates one of the paper's figures or in-text
tables (see the individual ``bench_*.py`` files); this driver runs a
selection of them back to back, times each one, and snapshots the batch
runner's thermal-step throughput around it.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # full harness
    PYTHONPATH=src python benchmarks/run_all.py --json     # + BENCH_results.json
    PYTHONPATH=src python benchmarks/run_all.py --only fig3b fig4a

The instruction budget, process count and lockstep mode come from the
usual harness knobs (``REPRO_BENCH_INSTRUCTIONS``,
``REPRO_BENCH_PROCESSES``, ``REPRO_BENCH_LOCKSTEP``; see
``_helpers.py``).  ``--json`` writes ``BENCH_results.json`` at the
repository root: per-bench wall time, simulated thermal steps,
steps/second and the rendered result table, plus the harness
configuration -- the CI artifact consumed by performance tracking.
Every ``--json`` run additionally appends a one-line record (config +
overall steps/s) to ``BENCH_trajectory.jsonl`` at the repository root,
building a cumulative throughput history across commits.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).parent))

from _helpers import (
    bench_instructions,
    bench_lockstep,
    bench_processes,
    save_table,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON_PATH = REPO_ROOT / "BENCH_results.json"
TRAJECTORY_PATH = REPO_ROOT / "BENCH_trajectory.jsonl"

# name -> (module, _run positional args, saved-table name)
BENCHES: Dict[str, Tuple[str, tuple, str]] = {
    "fig3a_stall": ("bench_fig3a_pihyb_duty_sweep", ("stall",), "fig3a_stall"),
    "fig3a_ideal": ("bench_fig3a_pihyb_duty_sweep", ("ideal",), "fig3a_ideal"),
    "fig3b": ("bench_fig3b_fg_vs_dvs", (), "fig3b"),
    "fig4a": ("bench_fig4a_dtm_comparison_stall", (), "fig4a_stall"),
    "fig4b": ("bench_fig4b_dtm_comparison_ideal", (), "fig4b_ideal"),
    "t1": ("bench_t1_dvs_step_sensitivity", (), "t1_dvs_steps"),
    "t2": ("bench_t2_voltage_floor", (), "t2_voltage_floor"),
    "t4": ("bench_t4_benchmark_characterisation", (), "t4_characterisation"),
}


def _run_bench(name: str) -> dict:
    """Execute one bench's ``_run`` and measure it."""
    from repro.sim.batch import reset_stats, stats

    module_name, args, table_name = BENCHES[name]
    module = importlib.import_module(module_name)
    runner: Callable[..., str] = module._run
    reset_stats()
    started = time.perf_counter()
    table = runner(*args)
    wall_s = time.perf_counter() - started
    snapshot = stats()
    save_table(table_name, table)
    return {
        "bench": name,
        "wall_s": round(wall_s, 3),
        "runs": snapshot.runs,
        "thermal_steps": round(snapshot.thermal_steps),
        "steps_per_second": round(snapshot.steps_per_second),
        "table": table,
    }


def last_trajectory_entry(path: Path = TRAJECTORY_PATH) -> dict:
    """Last record of the cumulative throughput history, or ``None``.

    Tolerates a missing file and skips malformed lines so a truncated
    append never breaks the delta report.
    """
    if not path.is_file():
        return None
    entry = None
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
    return entry


def _print_trajectory_deltas(records: List[dict], summary: dict) -> None:
    """Per-bench and overall steps/s against the last trajectory entry."""
    previous = last_trajectory_entry()
    if previous is None:
        return
    stamp = previous.get("timestamp", "unknown time")
    print(f"\n[deltas vs last {TRAJECTORY_PATH.name} entry ({stamp})]")
    base_config = previous.get("config", {})
    if base_config.get("instructions") != summary["config"]["instructions"]:
        print(
            f"  note: baseline ran {base_config.get('instructions')} "
            f"instructions vs {summary['config']['instructions']} now; "
            f"deltas are indicative only"
        )
    base_benches = previous.get("bench_steps_per_second", {})
    for record in records:
        base = base_benches.get(record["bench"])
        if base:
            change = record["steps_per_second"] / base - 1.0
            print(
                f"  {record['bench']}: {record['steps_per_second']:,} "
                f"steps/s vs {base:,.0f} ({change:+.1%})"
            )
        else:
            print(
                f"  {record['bench']}: {record['steps_per_second']:,} "
                f"steps/s (no per-bench baseline in last entry)"
            )
    base_overall = previous.get("overall_steps_per_second")
    if base_overall:
        change = summary["overall_steps_per_second"] / base_overall - 1.0
        print(
            f"  overall: {summary['overall_steps_per_second']:,} steps/s "
            f"vs {base_overall:,.0f} ({change:+.1%})"
        )


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        nargs="?",
        const=str(DEFAULT_JSON_PATH),
        default=None,
        metavar="PATH",
        help=(
            "write a machine-readable summary "
            f"(default path: {DEFAULT_JSON_PATH.name} at the repo root)"
        ),
    )
    parser.add_argument(
        "--only",
        nargs="+",
        choices=sorted(BENCHES),
        default=None,
        help="run only these benches (default: all)",
    )
    options = parser.parse_args(argv)

    names = options.only if options.only else list(BENCHES)
    config = {
        "instructions": bench_instructions(),
        "processes": bench_processes() or 1,
        "lockstep": bench_lockstep(),
        "thermal_stepper": "default (expm + fast-forward)",
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }
    print(f"[run_all: {len(names)} benches, config {config}]")

    records = []
    started = time.perf_counter()
    for name in names:
        print(f"\n=== {name} ===")
        records.append(_run_bench(name))
    total_wall = time.perf_counter() - started

    total_steps = sum(r["thermal_steps"] for r in records)
    summary = {
        "config": config,
        "total_wall_s": round(total_wall, 3),
        "total_thermal_steps": total_steps,
        "overall_steps_per_second": round(total_steps / total_wall)
        if total_wall > 0
        else 0,
        "benches": records,
    }
    print(
        f"\n[run_all: {total_steps:,} thermal steps in {total_wall:.1f} s "
        f"= {summary['overall_steps_per_second']:,} steps/s overall]"
    )
    _print_trajectory_deltas(records, summary)
    if options.json:
        path = Path(options.json)
        path.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"[summary written to {path}]")
        entry = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
            "config": config,
            "benches": names,
            "total_wall_s": summary["total_wall_s"],
            "total_thermal_steps": total_steps,
            "overall_steps_per_second": summary["overall_steps_per_second"],
            "bench_steps_per_second": {
                r["bench"]: r["steps_per_second"] for r in records
            },
        }
        with TRAJECTORY_PATH.open("a") as handle:
            handle.write(json.dumps(entry) + "\n")
        print(f"[trajectory appended to {TRAJECTORY_PATH}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
