"""The Alpha power budget."""

import pytest

from repro.errors import PowerModelError
from repro.floorplan import ALL_BLOCKS
from repro.power import default_power_specs, total_peak_dynamic_power


@pytest.fixture(scope="module")
def specs():
    return default_power_specs()


def test_covers_every_floorplan_block(specs):
    assert set(specs) == set(ALL_BLOCKS)


def test_total_peak_is_alpha_class(specs):
    total = total_peak_dynamic_power(specs)
    assert 35.0 < total < 55.0


def test_intreg_has_highest_peak_power_density(specs, floorplan):
    densities = {
        name: specs[name].peak_dynamic_w / floorplan[name].area
        for name in specs
    }
    assert max(densities, key=densities.get) == "IntReg"


def test_l2_has_lowest_power_density(specs, floorplan):
    densities = {
        name: specs[name].peak_dynamic_w / floorplan[name].area
        for name in specs
    }
    assert min(densities, key=densities.get) in ("L2", "L2_left", "L2_right")


def test_leakage_reference_fraction(specs):
    for spec in specs.values():
        if spec.peak_dynamic_w > 0:
            assert spec.leakage_ref_w / spec.peak_dynamic_w == pytest.approx(0.15)


def test_array_blocks_have_lower_clock_fraction(specs):
    assert specs["L2"].clock_fraction < specs["IntExec"].clock_fraction
    assert specs["Icache"].clock_fraction < specs["IntReg"].clock_fraction


def test_total_rejects_empty():
    with pytest.raises(PowerModelError):
        total_peak_dynamic_power({})
