"""Regression tests for engine edge cases.

Each test pins one of three bugs the array-native engine rewrite fixed:

* a zero-instruction interval (fully gated clock) used to spin the run
  loop forever -- the commit counter never advanced and nothing bounded
  the retries;
* thermal accounting skipped DVS-switch and migration stall sub-steps,
  so an emergency reached during a 10 us stall window was silently
  missed and ``time_above_trigger_s`` under-counted by the stall time;
* per-run cycle counts truncated the final partial step
  (``int(step_cycles * fraction)``) instead of rounding the accumulated
  fractional total once.
"""

import pytest

from repro.dtm.base import DtmCommand, DtmPolicy
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import SimulationError
from repro.power.technology import default_technology
from repro.sim import EngineConfig, SimulationEngine
from repro.workloads import build_benchmark

NOMINAL_V = default_technology().vdd_nominal
NOMINAL_F = default_technology().frequency_nominal


@pytest.fixture(scope="module")
def gcc():
    return build_benchmark("gcc")


class _FullyGatedPolicy(DtmPolicy):
    """Requests a clock-enabled fraction so small no work ever commits,
    optionally releasing the clock after ``release_time_s``."""

    name = "gate-all"

    def __init__(self, release_time_s=None):
        self._release_time_s = release_time_s

    def update(self, readings, time_s, dt_s):
        if self._release_time_s is not None and time_s >= self._release_time_s:
            return DtmCommand(gating_fraction=0.0, voltage=NOMINAL_V)
        # Small enough that a 10 000-cycle interval rounds to zero
        # instructions, yet legal for DtmCommand's (0, 1] range.
        return DtmCommand(
            gating_fraction=0.0, voltage=NOMINAL_V,
            clock_enabled_fraction=1e-14,
        )

    def reset(self):
        pass


class _OneSwitchPolicy(DtmPolicy):
    """Drops the voltage once, on the first sensor sample."""

    name = "one-switch"

    def __init__(self, v_low):
        self._v_low = v_low
        self._switched = False

    def update(self, readings, time_s, dt_s):
        if not self._switched:
            self._switched = True
            return DtmCommand(gating_fraction=0.0, voltage=self._v_low)
        return DtmCommand(gating_fraction=0.0, voltage=self._v_low)

    def reset(self):
        self._switched = False


class TestZeroProgressGuard:
    def test_fully_gated_run_raises_instead_of_spinning(self, gcc):
        engine = SimulationEngine(
            gcc,
            policy=_FullyGatedPolicy(),
            config=EngineConfig(max_no_progress_steps=50),
        )
        with pytest.raises(SimulationError, match="no instructions committed"):
            engine.run(1_000_000)

    def test_gated_steps_still_advance_wall_time(self, gcc):
        """A transiently gated clock is legitimate: time moves forward
        through the gated window and the run completes once released."""
        release_s = 2.0e-4
        engine = SimulationEngine(
            gcc,
            policy=_FullyGatedPolicy(release_time_s=release_s),
            config=EngineConfig(max_no_progress_steps=1_000),
        )
        result = engine.run(500_000)
        assert result.instructions == 500_000
        # The gated lead-in is real elapsed time, far more than the
        # ungated execution needs.
        assert result.elapsed_s > release_s

    def test_budget_is_consecutive_not_cumulative(self, gcc):
        """Progress resets the counter: a run that alternates gated and
        ungated windows never trips a budget larger than one window."""
        engine = SimulationEngine(
            gcc,
            policy=_FullyGatedPolicy(release_time_s=1.0e-4),
            config=EngineConfig(max_no_progress_steps=40),
        )
        # ~30 gated steps (one sensor period) fit under the 40-step
        # budget; the run must complete rather than raise.
        result = engine.run(200_000)
        assert result.instructions == 200_000


class TestStallWindowAccounting:
    def test_violation_inside_dvs_stall_window_is_counted(self, gcc):
        """With the emergency threshold below the operating range, every
        accounted step is a violation -- including the 10 us DVS-switch
        stall sub-step, which the accounting used to skip."""
        thresholds = ThermalThresholds(
            emergency_c=40.0, practical_limit_c=40.0, trigger_c=40.0
        )
        engine = SimulationEngine(
            gcc,
            policy=_OneSwitchPolicy(v_low=NOMINAL_V * 0.85),
            thresholds=thresholds,
            config=EngineConfig(dvs_mode="stall", record_trace=True),
        )
        result = engine.run(1_000_000)
        assert result.dvs_switches == 1
        assert result.stall_time_s > 0.0
        # One violation per accounted step; the trace has exactly one
        # point per accounted step, so the counts must agree.  On the
        # pre-fix engine the stall sub-step is missing from both the
        # violation count and this equality's right-hand side.
        assert result.violations == len(result.trace)
        # Time above trigger covers the whole measured window, stall
        # included (the pre-fix engine was short by stall_time_s).
        assert result.time_above_trigger_s == pytest.approx(
            result.elapsed_s, abs=1e-15
        )

    def test_stall_substep_appears_in_trace(self, gcc):
        engine = SimulationEngine(
            gcc,
            policy=_OneSwitchPolicy(v_low=NOMINAL_V * 0.85),
            config=EngineConfig(dvs_mode="stall", record_trace=True),
        )
        result = engine.run(1_000_000)
        switch_time = engine.config.dvs_switch_time_s
        # The policy switches on the very first sensor sample (t = 0), so
        # the stall sub-step is the first trace point, at exactly the
        # switch time.  The pre-fix engine recorded nothing until the
        # first execution step.
        assert result.trace[0].time_s == pytest.approx(switch_time, rel=1e-12)


class TestCycleAccumulation:
    def test_cycles_match_elapsed_time_within_half_a_cycle(self, gcc):
        """At a constant clock, elapsed_s * f equals the exact fractional
        cycle count; the reported integer must round it, not truncate.
        The budget is chosen so the final partial step contributes a
        fractional part of ~0.78 cycles, which truncation would drop."""
        engine = SimulationEngine(gcc, config=EngineConfig())
        result = engine.run(2_500_000)
        exact = result.elapsed_s * NOMINAL_F
        assert abs(result.cycles - exact) <= 0.5

    def test_cycles_are_rounded_fractional_total(self, gcc):
        engine = SimulationEngine(gcc, config=EngineConfig())
        result = engine.run(2_500_000)
        assert result.cycles == round(result.elapsed_s * NOMINAL_F)
