"""HotSpot-style compact thermal model.

The model follows the methodology of Skadron et al.'s HotSpot (ISCA 2003):
an equivalent RC circuit is derived purely from the floorplan geometry and
package description.  Each block gets one die node with a vertical
resistance through the die, thermal interface material and heat spreader;
adjacent blocks are coupled by lateral resistances through the silicon; the
spreader and heat sink are lumped nodes; the sink couples to ambient through
a convection resistance (1.0 K/W for the paper's low-cost package).

Heat flow is solved with a dense symmetric conductance matrix: steady state
via a linear solve, transients via backward Euler with one cached matrix
factorisation per distinct time step.
"""

from repro.thermal.materials import COPPER, SILICON, Material
from repro.thermal.package import ThermalPackage, default_package
from repro.thermal.rc_model import (
    ThermalNetwork,
    build_detailed_thermal_network,
    build_thermal_network,
)
from repro.thermal.solver import TransientSolver, steady_state
from repro.thermal.hotspot import HotSpotModel

__all__ = [
    "Material",
    "SILICON",
    "COPPER",
    "ThermalPackage",
    "default_package",
    "ThermalNetwork",
    "build_thermal_network",
    "build_detailed_thermal_network",
    "TransientSolver",
    "steady_state",
    "HotSpotModel",
]
