"""Workload container."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import Phase, Workload, make_activity_profile


def phase(name, instructions=1_000_000, ipc=2.0):
    return Phase(
        name=name,
        instructions=instructions,
        base_ipc=ipc,
        memory_cpi_fraction=0.1,
        fetch_supply_ipc=3.2,
        speculation_waste=0.2,
        base_activities=make_activity_profile(0.8, 0.1, 0.5, 0.7, 0.2),
    )


def test_total_instructions():
    wl = Workload("w", [phase("a", 1_000_000), phase("b", 2_000_000)])
    assert wl.total_instructions == 3_000_000


def test_mean_ipc_is_instruction_weighted_harmonic():
    wl = Workload("w", [phase("a", 1_000_000, ipc=1.0),
                        phase("b", 1_000_000, ipc=3.0)])
    # Equal instructions: total cycles = 1M/1 + 1M/3; mean IPC = 2M/cycles.
    assert wl.mean_ipc == pytest.approx(2.0 / (1.0 + 1.0 / 3.0))


def test_phases_returns_copy():
    phases = [phase("a")]
    wl = Workload("w", phases)
    wl.phases.append(phase("b"))
    assert len(wl.phases) == 1


def test_rejects_empty():
    with pytest.raises(WorkloadError):
        Workload("w", [])
    with pytest.raises(WorkloadError):
        Workload("", [phase("a")])


def test_rejects_duplicate_phase_names():
    with pytest.raises(WorkloadError):
        Workload("w", [phase("a"), phase("a")])


def test_repr_is_informative():
    wl = Workload("gzip", [phase("a")])
    assert "gzip" in repr(wl)
    assert "1 phases" in repr(wl)
