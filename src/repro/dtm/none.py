"""The no-DTM baseline: always run at nominal."""

from __future__ import annotations

from typing import Mapping

from repro.dtm.base import DtmCommand, DtmPolicy


class NoDtmPolicy(DtmPolicy):
    """Always-nominal operation; thermal violations are allowed.

    Used to establish the baseline runtime against which slowdown factors
    are computed, and to measure benchmarks' unmanaged thermal behaviour.
    """

    name = "none"
    hottest_only = True

    def __init__(self, nominal_voltage: float = 1.3):
        self._command = DtmCommand(gating_fraction=0.0, voltage=nominal_voltage)

    def update(
        self, readings: Mapping[str, float], time_s: float, dt_s: float
    ) -> DtmCommand:
        """Ignore the readings and stay at nominal."""
        return self._command

    def update_hottest(
        self, hottest: float, time_s: float, dt_s: float
    ) -> DtmCommand:
        """Ignore the reading and stay at nominal."""
        return self._command

    def reset(self) -> None:
        """Stateless; nothing to reset."""
