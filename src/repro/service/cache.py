"""Content-addressed on-disk result cache.

One completed run is one file, ``results/<digest>.json``, where the
digest is :func:`~repro.sim.supervisor.spec_digest` -- the same
identity the sweep journal uses, so journal entries and cache entries
are interchangeable.  Identical specs therefore hit the cache instead
of recomputing, across server restarts and across clients.

Durability rules:

* **writes are atomic** -- the entry is written to a temp file in the
  same directory and ``os.replace``d into place, so a crash (even
  SIGKILL) can never leave a half-written entry under a digest;
* **reads are skeptical** -- an unreadable or malformed entry is a
  cache *miss*, quarantined out of the way (renamed to ``*.corrupt``)
  and counted, never a crash;
* **the journal backfills the cache** -- :meth:`ResultCache.absorb_journal`
  replays a sweep journal into the cache, which is how a restarted
  server recovers results that were journalled but not yet cached when
  it was killed.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.sim.supervisor import (
    _JOURNAL_ENTRY_ERRORS,
    load_journal,
    result_from_journal_entry,
)


class ResultCache:
    """Digest-keyed store of completed run results.

    ``root`` is created on first use.  Entries are the same JSON
    mappings the sweep journal records (``result`` payload plus a
    ``kind`` tag for non-single-core results), so one serialisation
    format serves both persistence paths.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def _entry_path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def __contains__(self, digest: str) -> bool:
        return self._entry_path(digest).is_file()

    def get(self, digest: str):
        """The cached result for ``digest``, or ``None`` on a miss.

        A corrupt entry counts as a miss: it is renamed to
        ``<digest>.json.corrupt`` (so the evidence survives for
        inspection but can never be served) and a
        ``service.cache_corrupt`` event is emitted.
        """
        path = self._entry_path(digest)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        try:
            entry = json.loads(raw.decode("utf-8"))
            result = result_from_journal_entry(entry)
        except (UnicodeDecodeError,) + _JOURNAL_ENTRY_ERRORS as exc:
            self.corrupt += 1
            obs_metrics.inc("service.cache_corrupt")
            obs_events.emit(
                "service.cache_corrupt",
                digest=digest,
                error_type=type(exc).__name__,
            )
            try:
                os.replace(path, str(path) + ".corrupt")
            except OSError:  # pragma: no cover - raced removal
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, digest: str, result) -> None:
        """Store ``result`` under ``digest``, atomically.

        The temp file lives in the cache directory itself so the final
        ``os.replace`` is same-filesystem and therefore atomic; a crash
        between write and replace leaves only an orphaned ``.tmp`` file,
        which is garbage, not a servable entry.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        entry: Dict[str, object] = {
            "digest": digest,
            "result": result.to_json_dict(),
        }
        kind = getattr(result, "journal_kind", None)
        if kind is not None:
            entry["kind"] = kind
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=f".{digest}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._entry_path(digest))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def absorb_journal(self, path) -> int:
        """Backfill the cache from a sweep journal; returns the number
        of entries added.  Tolerates a torn journal tail the same way
        resume does (:func:`~repro.sim.supervisor.load_journal`)."""
        added = 0
        for digest, result in load_journal(path).items():
            if digest not in self:
                self.put(digest, result)
                added += 1
        return added

    def stats(self) -> Dict[str, int]:
        """Counters for STATUS replies and reports."""
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
        }
