"""Shared fixtures.

Simulation-backed tests use small instruction budgets and subsets of the
benchmark suite so the whole test run stays fast; the full-scale numbers
live in benchmarks/.
"""

from __future__ import annotations

import pytest

from repro.floorplan import build_alpha21364_floorplan
from repro.power import PowerModel
from repro.thermal import HotSpotModel
from repro.workloads import build_benchmark


@pytest.fixture(scope="session")
def floorplan():
    """The Alpha 21364 floorplan (immutable; shared session-wide)."""
    return build_alpha21364_floorplan()


@pytest.fixture(scope="session")
def hotspot(floorplan):
    """Thermal model over the default package."""
    return HotSpotModel(floorplan)


@pytest.fixture(scope="session")
def power_model(floorplan):
    """Power model with the default Alpha budget."""
    return PowerModel(floorplan)


@pytest.fixture(scope="session")
def gzip_workload():
    """A hot integer benchmark used by most engine tests."""
    return build_benchmark("gzip")


@pytest.fixture(scope="session")
def mesa_workload():
    """A mild benchmark (barely above trigger)."""
    return build_benchmark("mesa")


@pytest.fixture(scope="session")
def uniform_activities(floorplan):
    """A flat 0.5 activity vector over all blocks."""
    return {name: 0.5 for name in floorplan.block_names}


@pytest.fixture(scope="session")
def warm_temperatures(floorplan):
    """A flat 85 C temperature map over all blocks."""
    return {name: 85.0 for name in floorplan.block_names}
