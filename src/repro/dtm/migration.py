"""Activity migration (related work the paper excludes, implemented).

"Migrating computation" moves work from a hot unit to a spare copy placed
in a cooler part of the die, ping-ponging when the active copy heats up
(Heo/Barr/Asanovic, ISLPED 2003).  The paper leaves it out over "the
cost-benefit concerns of adding extra hardware for migration"; with the
:func:`~repro.floorplan.migration.build_migration_floorplan` variant this
policy lets the library price that trade:

* benefit -- the hotspot's power density is time-shared over two
  register-file copies far apart on the die;
* cost -- a pipeline flush per migration (engine-applied stall) and a
  small throughput penalty while running on the remote copy (longer
  bypass paths), plus the idle copy's standing leakage and clock power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.dtm.base import DtmCommand, DtmPolicy
from repro.dtm.controllers import LowPassFilter
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import DtmConfigError
from repro.floorplan.migration import SPARE_REGISTER_FILE


@dataclass(frozen=True)
class MigrationConfig:
    """Configuration of the activity-migration policy.

    Parameters
    ----------
    hot_block, spare_block:
        The migrating structure and its duplicate.
    remote_penalty:
        Fractional throughput loss while running on the spare copy
        (longer bypass/wakeup paths).
    release_filter_alpha, release_margin_c:
        Filtered decision for returning home once everything is cool.
    nominal_voltage:
        Supply voltage (migration never touches it).
    """

    hot_block: str = "IntReg"
    spare_block: str = SPARE_REGISTER_FILE
    remote_penalty: float = 0.03
    release_filter_alpha: float = 0.25
    release_margin_c: float = 0.5
    nominal_voltage: float = 1.3

    def __post_init__(self) -> None:
        if self.hot_block == self.spare_block:
            raise DtmConfigError("hot and spare blocks must differ")
        if not 0.0 <= self.remote_penalty < 1.0:
            raise DtmConfigError("remote penalty must be in [0, 1)")
        if self.release_margin_c < 0.0:
            raise DtmConfigError("release margin must be >= 0")
        if self.nominal_voltage <= 0.0:
            raise DtmConfigError("voltage must be > 0")


class MigrationPolicy(DtmPolicy):
    """Threshold-driven ping-pong between a hot block and its spare.

    Above the trigger on the *currently active* copy, work migrates to
    the other copy; when the filtered temperature of both copies falls
    below trigger minus margin, work returns home and stays there.
    """

    name = "AM"

    def __init__(
        self,
        config: Optional[MigrationConfig] = None,
        thresholds: Optional[ThermalThresholds] = None,
    ):
        self._config = config if config is not None else MigrationConfig()
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        self._away = False
        self._filter = LowPassFilter(self._config.release_filter_alpha)

    @property
    def config(self) -> MigrationConfig:
        """The policy configuration."""
        return self._config

    @property
    def away(self) -> bool:
        """True while work runs on the spare copy."""
        return self._away

    def update(
        self, readings: Mapping[str, float], time_s: float, dt_s: float
    ) -> DtmCommand:
        """Ping-pong on the active copy's temperature."""
        config = self._config
        trigger = self._thresholds.trigger_c
        home_temp = readings.get(config.hot_block)
        if home_temp is None:
            raise DtmConfigError(
                f"no reading for migrating block {config.hot_block!r}"
            )
        spare_temp = readings.get(config.spare_block, home_temp)
        active_temp = spare_temp if self._away else home_temp
        pair_max = self._filter.update(max(home_temp, spare_temp))

        if active_temp > trigger:
            self._away = not self._away
        elif self._away and pair_max < trigger - config.release_margin_c:
            self._away = False

        if self._away:
            return DtmCommand(
                gating_fraction=0.0,
                voltage=config.nominal_voltage,
                migration=(
                    config.hot_block,
                    config.spare_block,
                    1.0,
                ),
                clock_enabled_fraction=1.0 - config.remote_penalty,
            )
        return DtmCommand(
            gating_fraction=0.0, voltage=config.nominal_voltage
        )

    def reset(self) -> None:
        """Return home and clear the filter."""
        self._away = False
        self._filter.reset()
