"""No-DTM baseline policy."""

import pytest

from repro.dtm import NoDtmPolicy


def test_always_nominal():
    policy = NoDtmPolicy()
    cmd = policy.update({"IntReg": 120.0}, 0.0, 1e-4)
    assert cmd.gating_fraction == 0.0
    assert cmd.voltage == pytest.approx(1.3)
    assert cmd.clock_enabled_fraction == 1.0


def test_custom_nominal_voltage():
    policy = NoDtmPolicy(nominal_voltage=1.1)
    cmd = policy.update({"IntReg": 90.0}, 0.0, 1e-4)
    assert cmd.voltage == pytest.approx(1.1)


def test_reset_is_noop():
    policy = NoDtmPolicy()
    policy.reset()
    assert policy.update({"a": 50.0}, 0.0, 1e-4).voltage == pytest.approx(1.3)


def test_name():
    assert NoDtmPolicy().name == "none"
