"""Predictive hybrid DTM (the future-work extension)."""

import pytest

from repro.dtm import PredictiveHybConfig, PredictiveHybPolicy, ThermalThresholds
from repro.dtm.hybrid import HybridState
from repro.errors import DtmConfigError

TRIGGER = ThermalThresholds().trigger_c
DT = 1e-4


def readings(temp):
    return {"IntReg": temp}


def feed_ramp(policy, start, slope_per_s, samples):
    """Feed a linear temperature ramp; returns the last command."""
    cmd = None
    for i in range(samples):
        temp = start + slope_per_s * i * DT
        cmd = policy.update(readings(temp), i * DT, DT)
    return cmd


class TestForecast:
    def test_constant_temperature_forecasts_itself(self):
        policy = PredictiveHybPolicy()
        for i in range(50):
            policy.update(readings(78.0), i * DT, DT)
        assert policy.forecast(78.0, DT) == pytest.approx(78.0, abs=0.05)

    def test_rising_ramp_forecasts_ahead(self):
        policy = PredictiveHybPolicy()
        slope = 2000.0  # 2 K/ms
        feed_ramp(policy, 75.0, slope, 60)
        last = 75.0 + slope * 59 * DT
        forecast = policy.forecast(last + slope * DT, DT)
        assert forecast > last + 0.3  # looks ahead of the level


class TestProactiveResponse:
    def test_engages_before_trigger_on_rising_ramp(self):
        policy = PredictiveHybPolicy()
        slope = 3000.0  # 3 K/ms toward the trigger
        engaged_at = None
        for i in range(400):
            temp = 79.0 + slope * i * DT
            policy.update(readings(temp), i * DT, DT)
            if policy.state is not HybridState.NOMINAL and engaged_at is None:
                engaged_at = temp
            if temp > TRIGGER:
                break
        assert engaged_at is not None
        assert engaged_at < TRIGGER  # acted before the threshold

    def test_stays_nominal_when_cool_and_stable(self):
        policy = PredictiveHybPolicy()
        cmd = feed_ramp(policy, 78.0, 0.0, 100)
        assert policy.state is HybridState.NOMINAL
        assert cmd.gating_fraction == 0.0

    def test_fast_ramp_escalates_to_dvs(self):
        policy = PredictiveHybPolicy()
        feed_ramp(policy, 80.0, 20_000.0, 120)  # 20 K/ms runaway
        assert policy.state is HybridState.DVS

    def test_falling_temperature_releases(self):
        policy = PredictiveHybPolicy()
        feed_ramp(policy, 80.0, 20_000.0, 120)
        assert policy.state is HybridState.DVS
        feed_ramp(policy, 78.0, -1000.0, 300)
        assert policy.state is HybridState.NOMINAL


class TestConfig:
    def test_rejects_bad_horizon(self):
        with pytest.raises(DtmConfigError):
            PredictiveHybConfig(horizon_s=0.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(DtmConfigError):
            PredictiveHybConfig(slope_filter_alpha=0.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(DtmConfigError):
            PredictiveHybConfig(gating_fraction=1.0)

    def test_reset_clears_history(self):
        policy = PredictiveHybPolicy()
        feed_ramp(policy, 80.0, 20_000.0, 120)
        policy.reset()
        assert policy.state is HybridState.NOMINAL
        # After reset the first sample primes cleanly (no stale slope).
        cmd = policy.update(readings(70.0), 0.0, DT)
        assert cmd.gating_fraction == 0.0


class TestEndToEnd:
    def test_protects_a_hot_benchmark(self):
        from repro.sim import SimulationEngine
        from repro.workloads import build_benchmark

        workload = build_benchmark("gzip")
        engine = SimulationEngine(workload, policy=PredictiveHybPolicy())
        run = engine.run(4_000_000, settle_time_s=2e-3)
        assert run.violations == 0
        assert run.max_true_temp_c < 85.0
