"""Unit helpers."""

import pytest

from repro import units


def test_celsius_kelvin_round_trip():
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(85.0)) == pytest.approx(85.0)


def test_celsius_to_kelvin_offset():
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)


def test_area_round_trip():
    assert units.m2_to_mm2(units.mm2_to_m2(4.18)) == pytest.approx(4.18)


def test_mm2_to_m2_magnitude():
    assert units.mm2_to_m2(1.0) == pytest.approx(1e-6)


def test_cycles_seconds_round_trip():
    f = 3e9
    assert units.seconds_to_cycles(units.cycles_to_seconds(10_000, f), f) == pytest.approx(10_000)


def test_thermal_step_duration_at_3ghz():
    # The paper's 10k-cycle step is 3.33 us at 3 GHz.
    assert units.cycles_to_seconds(10_000, 3e9) == pytest.approx(3.333e-6, rel=1e-3)


def test_unit_constants():
    assert units.MM == pytest.approx(1e-3)
    assert units.UM == pytest.approx(1e-6)
    assert units.GHZ == pytest.approx(1e9)
    assert units.US == pytest.approx(1e-6)
    assert units.MS == pytest.approx(1e-3)
