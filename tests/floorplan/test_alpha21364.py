"""The Alpha 21364 floorplan of Figure 2."""

import pytest

from repro.floorplan import (
    ALL_BLOCKS,
    CORE_BLOCKS,
    HOTTEST_BLOCK,
    L2_BLOCKS,
    build_alpha21364_floorplan,
    validate_floorplan,
)
from repro.floorplan.alpha21364 import DIE_SIDE
from repro.units import MM


@pytest.fixture(scope="module")
def fp():
    return build_alpha21364_floorplan()


def test_has_all_eighteen_blocks(fp):
    assert len(fp) == 18
    assert set(fp.block_names) == set(ALL_BLOCKS)


def test_fully_tiles_the_die(fp):
    validate_floorplan(fp, require_full_coverage=True)


def test_bounding_box_is_16mm_square(fp):
    x0, y0, x1, y1 = fp.bounding_box
    assert x0 == 0.0 and y0 == 0.0
    assert x1 == pytest.approx(DIE_SIDE)
    assert y1 == pytest.approx(16.0 * MM)


def test_l2_wraps_the_core(fp):
    # The three L2 banks make up most of the die area.
    l2_area = sum(fp[name].area for name in L2_BLOCKS)
    assert l2_area / fp.die_area > 0.75


def test_core_blocks_sit_in_core_region(fp):
    for name in CORE_BLOCKS:
        block = fp[name]
        assert block.x >= 4.9 * MM - 1e-12
        assert block.right <= 11.1 * MM + 1e-12
        assert block.y >= 9.8 * MM - 1e-12


def test_hotspot_block_is_integer_register_file(fp):
    assert HOTTEST_BLOCK == "IntReg"
    assert HOTTEST_BLOCK in fp


def test_intreg_is_small_relative_to_caches(fp):
    # Small area is what gives the register file its high power density.
    assert fp["IntReg"].area < fp["Icache"].area
    assert fp["IntReg"].area < fp["Dcache"].area


def test_caches_abut_the_register_stack(fp):
    # Figure 2's layout: caches at the bottom of the core, register file
    # and execution units at the top.
    assert fp["Icache"].y < fp["IntReg"].y
    assert fp["Dcache"].y < fp["IntExec"].y


def test_intreg_and_intexec_are_adjacent(fp):
    assert "IntExec" in fp.neighbours("IntReg")


def test_figure2_adjacency_samples(fp):
    assert "L2" in fp.neighbours("Icache")
    assert "L2_left" in fp.neighbours("IntReg")
    assert "L2_right" in fp.neighbours("IntExec")


def test_blocks_named_in_constants_are_consistent(fp):
    assert set(CORE_BLOCKS) | set(L2_BLOCKS) == set(ALL_BLOCKS)
    assert not set(CORE_BLOCKS) & set(L2_BLOCKS)
