"""Ablation A6: local toggling versus fetch gating.

Paper, Section 2: "We have found that local toggling confers little
advantage over fetch gating and do not consider it further."  This bench
measures the claim: per-domain clock stops cut only the gated domain's
power but stall the whole pipeline whenever the gated domain is on the
critical path, so across the hot integer suite the two techniques land in
the same slowdown ballpark.
"""

from _helpers import bench_instructions, save_table

from repro.analysis import render_table
from repro.core.evaluation import evaluate_policy, run_baselines
from repro.dtm import FetchGatingPolicy, LocalTogglingPolicy


def _run() -> str:
    baselines = run_baselines(instructions=bench_instructions())
    fg = evaluate_policy(FetchGatingPolicy, baselines)
    lt = evaluate_policy(LocalTogglingPolicy, baselines)
    rows = [
        [b, fg.slowdowns[b], lt.slowdowns[b]] for b in sorted(fg.slowdowns)
    ]
    rows.append(["MEAN", fg.mean_slowdown, lt.mean_slowdown])
    return render_table(
        ["benchmark", "FG slowdown", "LT slowdown"],
        rows,
        title="A6: fetch gating vs local toggling "
              f"(violations: FG {fg.total_violations}, "
              f"LT {lt.total_violations}; paper: LT confers little "
              f"advantage over FG)",
    )


def test_a6_local_toggling(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("a6_local_toggling", table)
