"""Sensor fault modes, grounded in the paper's sensor error model.

The paper budgets the trigger/emergency gap for *well-behaved* sensor
error: Gaussian noise with an effective +/-1 degree precision plus a
fixed offset of up to 2 degrees (see :mod:`repro.sensors.sensor`).
Real arrays misbehave beyond that budget -- Rotem et al.'s Core Duo
characterisation reports sensors that stick, drop out, or drift past
their calibration band -- and a DTM technique is only credible if the
harness can reproduce those modes deterministically.  Three modes:

* ``stuck``  -- the sensor reports a constant reading regardless of the
  true temperature (a latched ADC or a dead diode pinned at a rail);
* ``dropout`` -- the sensor returns nothing at all; the array serves the
  remaining sensors, and raises
  :class:`~repro.errors.SensorFaultError` if *every* sensor is gone;
* ``offset`` -- an extra fixed offset on top of the calibrated-error
  model, i.e. a sensor that has drifted outside the paper's +/-2 degree
  offset bound.

A fault is a frozen value object so it can ride inside a
:class:`~repro.sim.faults.FaultPlan` through pickling into worker
processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

SENSOR_FAULT_STUCK = "stuck"
SENSOR_FAULT_DROPOUT = "dropout"
SENSOR_FAULT_OFFSET = "offset"

_MODES = (SENSOR_FAULT_STUCK, SENSOR_FAULT_DROPOUT, SENSOR_FAULT_OFFSET)


@dataclass(frozen=True)
class SensorFault:
    """One faulty sensor: which block, which mode, and the fault value.

    Parameters
    ----------
    block:
        Floorplan block whose sensor misbehaves.
    mode:
        ``"stuck"``, ``"dropout"`` or ``"offset"``.
    value_c:
        The stuck reading (``stuck``) or the extra offset in degrees
        (``offset``); ignored for ``dropout``.
    """

    block: str
    mode: str
    value_c: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise SimulationError(
                f"sensor fault mode must be one of {_MODES}, "
                f"got {self.mode!r}"
            )
        if not self.block:
            raise SimulationError("sensor fault needs a block name")

    @staticmethod
    def stuck(block: str, reading_c: float) -> "SensorFault":
        """A sensor latched at a constant reading."""
        return SensorFault(block, SENSOR_FAULT_STUCK, reading_c)

    @staticmethod
    def dropout(block: str) -> "SensorFault":
        """A sensor that returns no reading at all."""
        return SensorFault(block, SENSOR_FAULT_DROPOUT)

    @staticmethod
    def drifted(block: str, extra_offset_c: float) -> "SensorFault":
        """A sensor whose offset drifted beyond the calibration band."""
        return SensorFault(block, SENSOR_FAULT_OFFSET, extra_offset_c)
