"""Technology parameters."""

import pytest

from repro.errors import PowerModelError
from repro.power import Technology, default_technology


def test_default_is_paper_operating_point():
    tech = default_technology()
    assert tech.node_nm == 130.0
    assert tech.vdd_nominal == pytest.approx(1.3)
    assert tech.frequency_nominal == pytest.approx(3.0e9)


def test_relative_voltage():
    tech = default_technology()
    assert tech.relative_voltage(1.3) == pytest.approx(1.0)
    assert tech.relative_voltage(1.105) == pytest.approx(0.85)


def test_relative_voltage_rejects_subthreshold():
    tech = default_technology()
    with pytest.raises(PowerModelError):
        tech.relative_voltage(0.3)


def test_relative_voltage_rejects_overvolting():
    tech = default_technology()
    with pytest.raises(PowerModelError):
        tech.relative_voltage(1.5)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"vdd_nominal": 0.0},
        {"vth": 0.0},
        {"vth": 1.5},
        {"frequency_nominal": -1.0},
        {"alpha": 0.5},
    ],
)
def test_rejects_invalid_parameters(kwargs):
    with pytest.raises(PowerModelError):
        Technology(**kwargs)
