"""Temperature-dependent leakage power.

The paper updates Wattch's leakage model to follow ITRS 130 nm projections
with leakage as a function of temperature (via HotLeakage).  Subthreshold
leakage grows exponentially with temperature; at block level this is well
captured by::

    P_leak(T, V) = P_ref * (V / V_nominal) * exp(beta * (T - T_ref))

where ``P_ref`` is the block's leakage at the reference temperature and
nominal voltage.  ``beta`` of about 0.017 /K doubles leakage roughly every
40 degrees, matching the 130 nm node's published sensitivity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PowerModelError


@dataclass(frozen=True)
class LeakageParameters:
    """Shape of the leakage-vs-temperature curve.

    Parameters
    ----------
    reference_temp_c:
        Temperature at which per-block reference leakage is specified.
    beta_per_k:
        Exponential temperature coefficient (1/K).
    voltage_exponent:
        Exponent applied to the relative voltage; 1.0 models leakage power
        as V times a supply-insensitive subthreshold current.
    """

    reference_temp_c: float = 85.0
    beta_per_k: float = 0.017
    voltage_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.beta_per_k <= 0.0:
            raise PowerModelError("leakage beta must be > 0")
        if self.voltage_exponent < 0.0:
            raise PowerModelError("leakage voltage exponent must be >= 0")


def leakage_power(
    reference_w: float,
    relative_voltage: float,
    temp_c: float,
    params: LeakageParameters,
) -> float:
    """Leakage power (W) of a block at ``temp_c`` and ``relative_voltage``.

    Parameters
    ----------
    reference_w:
        The block's leakage at the reference temperature and nominal voltage.
    relative_voltage:
        Supply voltage divided by nominal.
    temp_c:
        Block temperature in Celsius.
    params:
        Curve shape.
    """
    if reference_w < 0.0:
        raise PowerModelError("reference leakage must be >= 0")
    if relative_voltage <= 0.0:
        raise PowerModelError("relative voltage must be > 0")
    scale = relative_voltage**params.voltage_exponent
    return (
        reference_w
        * scale
        * math.exp(params.beta_per_k * (temp_c - params.reference_temp_c))
    )
