"""Physical constants and unit helpers.

Conventions used throughout the package:

* lengths in metres, areas in m^2, volumes in m^3
* power in watts, energy in joules
* temperatures in degrees Celsius at API boundaries (the thermal solver
  works with temperature *differences*, which are identical in C and K)
* time in seconds, frequency in hertz
* thermal resistance in K/W, thermal capacitance in J/K
"""

from __future__ import annotations

# --- unit multipliers -------------------------------------------------------

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9

MM = 1e-3
"""One millimetre in metres."""

UM = 1e-6
"""One micrometre in metres."""

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

US = 1e-6
"""One microsecond in seconds."""

MS = 1e-3
"""One millisecond in seconds."""

CELSIUS_TO_KELVIN = 273.15
"""Additive offset between Celsius and Kelvin."""

BOLTZMANN_EV = 8.617333262e-5
"""Boltzmann constant in eV/K, used by the leakage model."""


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from Celsius to Kelvin."""
    return temp_c + CELSIUS_TO_KELVIN


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from Kelvin to Celsius."""
    return temp_k - CELSIUS_TO_KELVIN


def mm2_to_m2(area_mm2: float) -> float:
    """Convert an area from square millimetres to square metres."""
    return area_mm2 * MM * MM


def m2_to_mm2(area_m2: float) -> float:
    """Convert an area from square metres to square millimetres."""
    return area_m2 / (MM * MM)


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Number of clock cycles elapsed in ``seconds`` at ``frequency_hz``."""
    return seconds * frequency_hz


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Wall-clock duration of ``cycles`` clock cycles at ``frequency_hz``."""
    return cycles / frequency_hz
