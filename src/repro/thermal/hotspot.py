"""High-level HotSpot-style facade over the RC network and solvers.

:class:`HotSpotModel` is what the rest of the library talks to: it accepts
and returns per-block ``{name: value}`` mappings and hides the matrix
plumbing.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.errors import ThermalModelError
from repro.floorplan.floorplan import Floorplan
from repro.thermal.package import ThermalPackage, default_package
from repro.thermal.rc_model import (
    SINK_NODE,
    SPREADER_NODE,
    ThermalNetwork,
    build_thermal_network,
)
from repro.thermal.solver import TransientSolver, steady_state


class HotSpotModel:
    """Compact thermal model for a floorplan under a given package.

    Examples
    --------
    >>> from repro.floorplan import build_alpha21364_floorplan
    >>> model = HotSpotModel(build_alpha21364_floorplan())
    >>> temps = model.steady_state({name: 2.0 for name in model.block_names})
    >>> temps["IntReg"] > model.package.ambient_c
    True
    """

    def __init__(
        self,
        floorplan: Floorplan,
        package: Optional[ThermalPackage] = None,
        detail: str = "block",
    ):
        if detail not in ("block", "full"):
            raise ThermalModelError(
                f"detail must be 'block' or 'full', got {detail!r}"
            )
        self._floorplan = floorplan
        self._package = package if package is not None else default_package()
        if detail == "full":
            from repro.thermal.rc_model import build_detailed_thermal_network

            self._network = build_detailed_thermal_network(
                floorplan, self._package
            )
        else:
            self._network = build_thermal_network(floorplan, self._package)
        self._detail = detail

    # --- introspection -----------------------------------------------------------

    @property
    def floorplan(self) -> Floorplan:
        """The floorplan the model was built from."""
        return self._floorplan

    @property
    def package(self) -> ThermalPackage:
        """The thermal package."""
        return self._package

    @property
    def network(self) -> ThermalNetwork:
        """The underlying RC network (for solver-level access)."""
        return self._network

    @property
    def block_names(self) -> tuple:
        """Die block names, in node order."""
        return self._network.block_names

    # --- solving -----------------------------------------------------------------

    def steady_state(self, block_powers: Mapping[str, float]) -> Dict[str, float]:
        """Steady-state temperatures (Celsius) for constant block powers.

        The result includes the ``__spreader__`` and ``__sink__`` package
        nodes alongside the die blocks.
        """
        power = self._network.power_vector(block_powers)
        temps = steady_state(self._network, power)
        return self._network.temperatures_as_mapping(temps)

    def steady_state_vector(self, block_powers: Mapping[str, float]) -> np.ndarray:
        """As :meth:`steady_state` but returning the raw node vector."""
        power = self._network.power_vector(block_powers)
        return steady_state(self._network, power)

    def make_transient(
        self, initial: Optional[Mapping[str, float]] = None
    ) -> TransientSolver:
        """Create a transient solver.

        Parameters
        ----------
        initial:
            Optional ``{node: celsius}`` initial condition covering every
            node; when omitted, all nodes start at ambient.
        """
        if initial is None:
            vector = np.full(self._network.size, self._package.ambient_c)
        else:
            vector = np.array(
                [initial[name] for name in self._network.node_names], dtype=float
            )
        return TransientSolver(self._network, vector)

    # --- convenience -------------------------------------------------------------

    def hottest_block(self, temps: Mapping[str, float]) -> str:
        """Name of the hottest *die block* in a temperature mapping."""
        return max(self.block_names, key=lambda name: temps[name])

    @staticmethod
    def package_nodes() -> tuple:
        """Names of the non-die nodes included in results."""
        return (SPREADER_NODE, SINK_NODE)
