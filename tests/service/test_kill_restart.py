"""Crash drills against real processes.

The in-thread suite (test_server.py) pins scheduling and protocol
behaviour; these tests pin the *survival* story end to end, with real
``python -m repro`` subprocesses, real runs and real signals:

* SIGTERM to ``repro serve`` drains gracefully and exits 0;
* SIGKILL to ``repro serve`` loses nothing that was journalled -- a
  restarted server rebuilds its cache from the journal and replays
  completed runs bit-identically, re-executing only unfinished specs;
* SIGTERM to ``repro batch`` flushes a loadable journal and exits 143,
  and a resume completes the sweep bit-identically.

Budgets are small (1.5M instructions) so each drill stays in seconds.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.core.evaluation import DEFAULT_SETTLE_TIME_S
from repro.service.client import ServiceClient
from repro.sim import RunSpec, load_journal, run_many
from repro.sim.supervisor import spec_digest

REPO_ROOT = Path(__file__).resolve().parents[2]
INSTRUCTIONS = 1_500_000
# The fused step kernel retires ~2G instructions per wall-clock second,
# so "kill it mid-run" tests need budgets in the billions to make the
# in-flight window seconds wide instead of milliseconds.
SLOW_INSTRUCTIONS = 10_000_000_000
BATCH_INSTRUCTIONS = 2_000_000_000


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def wire(seed=0, benchmark="gzip", policy="FG"):
    return {
        "benchmark": benchmark,
        "policy": policy,
        "instructions": INSTRUCTIONS,
        "seed": seed,
    }


def start_server(tmp_path, cache_dir):
    sock = tmp_path / "svc.sock"
    if sock.exists():
        sock.unlink()  # a SIGKILLed server cannot clean up its socket
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", str(sock), "--cache-dir", str(cache_dir)],
        env=_env(), cwd=str(tmp_path),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"server died on startup:\n{proc.stdout.read()}"
            )
        try:
            with ServiceClient(str(sock), timeout=5.0) as client:
                client.ping()
            return proc, str(sock)
        except OSError:
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("server never started listening")


def stop(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=30.0)
    if proc.stdout is not None:
        proc.stdout.close()


class TestServeSignals:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        proc, sock = start_server(tmp_path, tmp_path / "cache")
        try:
            with ServiceClient(sock) as client:
                outcome = client.submit([wire(seed=0)], timeout_s=120.0)
            assert outcome[0].ok
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30.0) == 0
            # The drain flushed the journal: the completed run is there.
            journal = tmp_path / "cache" / "journal.jsonl"
            assert len(load_journal(journal)) == 1
        finally:
            stop(proc)

    def test_sigkill_then_restart_replays_from_journal(self, tmp_path):
        cache_dir = tmp_path / "cache"
        proc, sock = start_server(tmp_path, cache_dir)
        try:
            with ServiceClient(sock) as client:
                before = client.submit([wire(seed=0)], timeout_s=120.0)
            assert before[0].ok and not before[0].cached
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30.0)
        finally:
            stop(proc)
        # Simulate losing the cache but not the journal: recovery must
        # come from the journal, which is the durable store.
        for entry in (cache_dir / "results").glob("*.json"):
            entry.unlink()

        reborn, sock = start_server(tmp_path, cache_dir)
        try:
            with ServiceClient(sock) as client:
                after = client.submit(
                    [wire(seed=0), wire(seed=1)], timeout_s=240.0
                )
                status = client.status()
            # The journalled run replays as a cache hit, bit-identical;
            # only the never-run spec executed.
            assert after[0].cached
            assert after[0].digest == before[0].digest
            assert (after[0].result.to_json_dict()
                    == before[0].result.to_json_dict())
            assert after[1].ok and not after[1].cached
            assert status["jobs_done"] == 1
        finally:
            stop(reborn)

    def test_sigkill_mid_flight_reexecutes_on_restart(self, tmp_path):
        cache_dir = tmp_path / "cache"
        proc, sock = start_server(tmp_path, cache_dir)
        slow = wire(seed=2)
        slow["instructions"] = SLOW_INSTRUCTIONS
        submit_error = []

        def doomed_submit():
            try:
                with ServiceClient(sock, timeout=120.0) as client:
                    client.submit([slow], timeout_s=120.0)
            except Exception as exc:  # noqa: BLE001 - expected to die
                submit_error.append(exc)

        thread = threading.Thread(target=doomed_submit)
        try:
            thread.start()
            deadline = time.monotonic() + 60.0
            with ServiceClient(sock, timeout=5.0) as status_client:
                while time.monotonic() < deadline:
                    if status_client.status()["running"] is not None:
                        break
                else:
                    raise AssertionError("job never started running")
            proc.send_signal(signal.SIGKILL)  # mid-run, no warning
            proc.wait(timeout=30.0)
        finally:
            thread.join(timeout=30.0)
            stop(proc)
        assert submit_error, "client should see the server vanish"

        reborn, sock = start_server(tmp_path, cache_dir)
        try:
            with ServiceClient(sock, timeout=120.0) as client:
                outcome = client.submit([slow], timeout_s=240.0)
            # The killed run was never journalled, so it re-executes --
            # and succeeds, because nothing was corrupted.
            assert outcome[0].ok and not outcome[0].cached
        finally:
            stop(reborn)


class TestBatchSigterm:
    POLICIES = ("FG", "CG", "LT")

    def test_sigterm_flushes_journal_and_resume_completes(self, tmp_path):
        # A three-run sweep (gzip x [FG, CG, LT]) at ~1s per run,
        # SIGTERMed once the first finish is journalled: the process
        # must exit 143 with a valid journal, and a --resume must
        # complete the sweep bit-identically to an uninterrupted one.
        # Lockstep advances all runs together and journals them when
        # the *batch* finishes, so pin the per-run path, which streams
        # one journal record per finished run.
        env = _env()
        env["REPRO_SWEEP_LOCKSTEP"] = "off"
        journal = tmp_path / "sweep.jsonl"
        argv = [
            sys.executable, "-m", "repro", "batch",
            "--benchmarks", "gzip", "--policies", *self.POLICIES,
            "--instructions", str(BATCH_INSTRUCTIONS),
            "--journal", str(journal),
        ]
        proc = subprocess.Popen(
            argv, env=env, cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if journal.exists() and journal.stat().st_size > 0:
                    break
                if proc.poll() is not None:
                    raise AssertionError(
                        f"batch exited early:\n{proc.stdout.read()}"
                    )
                time.sleep(0.02)
            else:
                raise AssertionError("journal never received a record")
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=60.0)
            output = proc.stdout.read()
        finally:
            stop(proc)
        assert code == 143, output
        assert "resume" in output  # the hint names the journal

        # The journal is valid and holds only completed runs; the
        # SIGTERM interrupted the sweep before it finished.
        completed = load_journal(journal)
        assert 1 <= len(completed) < len(self.POLICIES)

        # Resume finishes the sweep; together the runs are bit-identical
        # to an uninterrupted reference sweep.
        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "batch",
             "--benchmarks", "gzip", "--policies", *self.POLICIES,
             "--instructions", str(BATCH_INSTRUCTIONS),
             "--resume", str(journal)],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            timeout=240.0,
        )
        assert resumed.returncode == 0, resumed.stdout
        final = load_journal(journal)
        assert len(final) == len(self.POLICIES)

        specs = [
            RunSpec("gzip", policy, instructions=BATCH_INSTRUCTIONS,
                    settle_time_s=DEFAULT_SETTLE_TIME_S)
            for policy in self.POLICIES
        ]
        digests = [spec_digest(spec) for spec in specs]
        assert set(final) == set(digests)
        reference = run_many(specs, lockstep=False)
        for digest, result in zip(digests, reference):
            assert (final[digest].to_json_dict()
                    == result.to_json_dict())
