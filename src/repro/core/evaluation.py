"""Suite-level evaluation harness.

Runs techniques over the nine-benchmark suite with the paper's protocol:
steady-state initialisation, a settling lead-in with the policy active,
then a fixed instruction budget measured against the no-DTM baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.metrics import mean_slowdown, slowdown_factor
from repro.core.policies import make_policy
from repro.dtm.base import DtmPolicy
from repro.errors import SimulationError
from repro.sim.batch import RunSpec, run_many, steady_state_for
from repro.sim.config import EngineConfig
from repro.sim.results import RunResult
from repro.workloads.spec import build_spec_suite
from repro.workloads.workload import Workload

DEFAULT_INSTRUCTIONS = 20_000_000
"""Default per-benchmark instruction budget (a representative sample, as
the paper's SimPoint windows are; ~7 ms of 3 GHz execution)."""

DEFAULT_SETTLE_TIME_S = 2.0e-3
"""Default settling lead-in before measurement starts."""


@dataclass
class BenchmarkEvaluation:
    """One technique's result on one benchmark."""

    benchmark: str
    policy: str
    run: RunResult
    baseline: RunResult

    @property
    def slowdown(self) -> float:
        """Slowdown factor versus the unmanaged baseline."""
        return slowdown_factor(self.run, self.baseline)


@dataclass
class SuiteEvaluation:
    """One technique's results across the whole suite."""

    policy: str
    dvs_mode: str
    per_benchmark: List[BenchmarkEvaluation] = field(default_factory=list)

    @property
    def slowdowns(self) -> Dict[str, float]:
        """Per-benchmark slowdown factors."""
        return {e.benchmark: e.slowdown for e in self.per_benchmark}

    @property
    def mean_slowdown(self) -> float:
        """Mean slowdown across the suite (the paper's reported figure)."""
        return mean_slowdown([e.slowdown for e in self.per_benchmark])

    @property
    def total_violations(self) -> int:
        """Thermal violations across the suite (must be zero for a valid
        DTM configuration)."""
        return sum(e.run.violations for e in self.per_benchmark)


class _Baselines:
    """Cached no-DTM baselines and initial conditions per benchmark."""

    def __init__(
        self,
        suite: Sequence[Workload],
        instructions: int,
        settle_time_s: float,
        seed: int,
        processes: Optional[int] = None,
        lockstep: bool = False,
    ):
        self.suite = list(suite)
        self.instructions = instructions
        self.settle_time_s = settle_time_s
        self.seed = seed
        self.processes = processes
        self.lockstep = lockstep
        self.initial: Dict[str, np.ndarray] = {
            workload.name: steady_state_for(workload)
            for workload in self.suite
        }
        runs = run_many(
            [
                RunSpec(
                    workload=workload,
                    policy="none",
                    instructions=instructions,
                    settle_time_s=settle_time_s,
                    seed=seed,
                    initial=self.initial[workload.name],
                )
                for workload in self.suite
            ],
            processes=processes,
            lockstep=lockstep,
        )
        self.baseline: Dict[str, RunResult] = {
            workload.name: run for workload, run in zip(self.suite, runs)
        }


def run_baselines(
    suite: Optional[Sequence[Workload]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    settle_time_s: float = DEFAULT_SETTLE_TIME_S,
    seed: int = 0,
    processes: Optional[int] = None,
    lockstep: bool = False,
) -> _Baselines:
    """Compute (and cache in the returned object) the no-DTM baselines.

    Reuse one baselines object across many :func:`evaluate_policy` calls:
    the baseline runs and steady-state solves dominate harness cost.
    ``processes`` fans the baseline runs out over a process pool and is
    remembered as the default for evaluations built on this object;
    ``lockstep`` likewise selects the batched lockstep runner (see
    :func:`repro.sim.batch.run_many`) and is remembered as the default.
    """
    if suite is None:
        suite = build_spec_suite()
    return _Baselines(
        suite, instructions, settle_time_s, seed, processes, lockstep
    )


def evaluate_policy(
    policy_factory: Callable[[], DtmPolicy],
    baselines: _Baselines,
    dvs_mode: str = "stall",
    engine_config: Optional[EngineConfig] = None,
    processes: Optional[int] = None,
    lockstep: Optional[bool] = None,
) -> SuiteEvaluation:
    """Run one technique across the suite.

    Parameters
    ----------
    policy_factory:
        Zero-argument callable returning a *fresh* policy (controller
        state must not leak across benchmarks).  Must be picklable --
        e.g. ``functools.partial`` around a policy class -- to run in a
        process pool; lambdas still work but force a serial fallback.
    baselines:
        Output of :func:`run_baselines`.
    dvs_mode:
        ``"stall"`` or ``"ideal"`` (ignored if ``engine_config`` given).
    engine_config:
        Full engine configuration override.
    processes:
        Worker-process count for :func:`repro.sim.batch.run_many`;
        defaults to the count the baselines were built with.
    lockstep:
        Run the suite through the lockstep batched runner; defaults to
        the setting the baselines were built with.
    """
    config = (
        engine_config
        if engine_config is not None
        else EngineConfig(dvs_mode=dvs_mode)
    )
    if processes is None:
        processes = baselines.processes
    if lockstep is None:
        lockstep = baselines.lockstep
    runs = run_many(
        [
            RunSpec(
                workload=workload,
                policy=policy_factory,
                instructions=baselines.instructions,
                settle_time_s=baselines.settle_time_s,
                engine_config=config,
                seed=baselines.seed,
                initial=baselines.initial[workload.name],
            )
            for workload in baselines.suite
        ],
        processes=processes,
        lockstep=lockstep,
    )
    names = {run.policy for run in runs}
    if len(names) > 1:
        raise SimulationError(
            "policy_factory must build the same technique every call"
        )
    evaluation = SuiteEvaluation(policy=runs[0].policy, dvs_mode=config.dvs_mode)
    for workload, run in zip(baselines.suite, runs):
        evaluation.per_benchmark.append(
            BenchmarkEvaluation(
                benchmark=workload.name,
                policy=run.policy,
                run=run,
                baseline=baselines.baseline[workload.name],
            )
        )
    return evaluation


def evaluate_techniques(
    names: Sequence[str] = ("FG", "DVS", "PI-Hyb", "Hyb"),
    dvs_mode: str = "stall",
    baselines: Optional[_Baselines] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    settle_time_s: float = DEFAULT_SETTLE_TIME_S,
    processes: Optional[int] = None,
    lockstep: Optional[bool] = None,
) -> Dict[str, SuiteEvaluation]:
    """The Figure 4 experiment: all techniques over the full suite."""
    if baselines is None:
        baselines = run_baselines(
            instructions=instructions,
            settle_time_s=settle_time_s,
            processes=processes,
            lockstep=bool(lockstep),
        )
    return {
        name: evaluate_policy(
            partial(make_policy, name),
            baselines,
            dvs_mode=dvs_mode,
            processes=processes,
            lockstep=lockstep,
        )
        for name in names
    }
