"""Dynamic voltage scaling policies.

Binary DVS (the paper's recommendation) is a pair of comparators: observed
temperature above the trigger selects the low voltage immediately; returning
to the high voltage is gated through a low-pass filter so sensor noise near
the threshold does not thrash the regulator.

Multi-step DVS (continuous / 10 / 5 / 3 levels) uses a PI controller to set
the voltage to the highest level that regulates temperature, quantising
*down* to the nearest available level (safety requires DTM to be
conservative).  As the paper shows -- and the step-sensitivity bench
reproduces -- the extra levels buy almost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from repro.dtm.base import DtmCommand, DtmPolicy
from repro.dtm.controllers import LowPassFilter, PIController
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import DtmConfigError
from repro.power.technology import Technology, default_technology
from repro.power.vf_curve import VoltageFrequencyCurve

CONTINUOUS_LEVEL_COUNT = 100
"""Level count used to approximate continuous DVS."""


@dataclass(frozen=True)
class DvsConfig:
    """Configuration of a DVS policy.

    Parameters
    ----------
    level_count:
        Number of voltage levels (2 = binary).  Use
        :data:`CONTINUOUS_LEVEL_COUNT` for effectively continuous DVS.
    v_low_ratio:
        Lowest voltage as a fraction of nominal (paper: 0.85 is the largest
        value that eliminates violations).
    kp, ki:
        PI gains for multi-step control, in depth-units per Kelvin and per
        Kelvin-second respectively.
    raise_filter_alpha:
        Low-pass blend weight for the filtered temperature used by
        *increase* decisions.
    raise_margin_c:
        The filtered temperature must fall this far below the trigger
        before the voltage may rise.
    """

    level_count: int = 2
    v_low_ratio: float = 0.85
    kp: float = 0.3
    ki: float = 800.0
    raise_filter_alpha: float = 0.25
    raise_margin_c: float = 0.3

    def __post_init__(self) -> None:
        if self.level_count < 2:
            raise DtmConfigError("DVS needs at least 2 levels")
        if not 0.0 < self.v_low_ratio < 1.0:
            raise DtmConfigError("v_low_ratio must be in (0, 1)")
        if self.raise_margin_c < 0.0:
            raise DtmConfigError("raise margin must be >= 0")

    @staticmethod
    def continuous(**overrides) -> "DvsConfig":
        """A finely quantised configuration approximating continuous DVS."""
        overrides.setdefault("level_count", CONTINUOUS_LEVEL_COUNT)
        return DvsConfig(**overrides)


class DvsPolicy(DtmPolicy):
    """Voltage scaling under comparator (binary) or PI (multi-step)
    control."""

    name = "DVS"
    hottest_only = True

    def __init__(
        self,
        config: Optional[DvsConfig] = None,
        thresholds: Optional[ThermalThresholds] = None,
        technology: Optional[Technology] = None,
    ):
        self._config = config if config is not None else DvsConfig()
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        self._tech = technology if technology is not None else default_technology()
        curve = VoltageFrequencyCurve(self._tech)
        v_low = self._config.v_low_ratio * self._tech.vdd_nominal
        self._voltages: List[float] = [
            voltage for voltage, _ in curve.levels(self._config.level_count, v_low)
        ]
        self._level = len(self._voltages) - 1  # start at nominal
        self._filter = LowPassFilter(self._config.raise_filter_alpha)
        if self._config.level_count > 2:
            # Depth in [0, 1]: 0 = nominal voltage, 1 = lowest level.
            self._controller: Optional[PIController] = PIController(
                kp=self._config.kp,
                ki=self._config.ki,
                setpoint=self._thresholds.trigger_c,
                output_min=0.0,
                output_max=1.0,
            )
        else:
            self._controller = None

    @property
    def config(self) -> DvsConfig:
        """The policy configuration."""
        return self._config

    @property
    def voltages(self) -> List[float]:
        """Available voltage levels, lowest first."""
        return list(self._voltages)

    @property
    def current_level(self) -> int:
        """Index into :attr:`voltages` of the current setting."""
        return self._level

    def _command(self) -> DtmCommand:
        return DtmCommand(
            gating_fraction=0.0, voltage=self._voltages[self._level]
        )

    def _update_binary(self, hottest: float, filtered: float) -> None:
        if hottest > self._thresholds.trigger_c:
            self._level = 0  # compulsory, unfiltered
        elif filtered < self._thresholds.trigger_c - self._config.raise_margin_c:
            self._level = len(self._voltages) - 1

    def _update_multistep(self, hottest: float, filtered: float, dt: float) -> None:
        depth = self._controller.update(hottest, dt)
        top = len(self._voltages) - 1
        # Depth maps linearly onto the level range; quantise *down* in
        # voltage (up in depth) so the setting is always safe.
        import math

        target_level = top - math.ceil(depth * top - 1e-9)
        target_level = min(max(target_level, 0), top)
        if target_level < self._level:
            self._level = target_level  # compulsory lowering
        elif target_level > self._level:
            if filtered < self._thresholds.trigger_c - self._config.raise_margin_c:
                self._level = target_level

    def update(
        self, readings: Mapping[str, float], time_s: float, dt_s: float
    ) -> DtmCommand:
        """One comparator/PI evaluation per sensor sample."""
        return self.update_hottest(self.hottest(readings), time_s, dt_s)

    def update_hottest(
        self, hottest: float, time_s: float, dt_s: float
    ) -> DtmCommand:
        """One comparator/PI evaluation per sensor sample."""
        filtered = self._filter.update(hottest)
        if self._controller is None:
            self._update_binary(hottest, filtered)
        else:
            self._update_multistep(hottest, filtered, dt_s)
        return self._command()

    def reset(self) -> None:
        """Back to nominal voltage with cleared filters/controllers."""
        self._level = len(self._voltages) - 1
        self._filter.reset()
        if self._controller is not None:
            self._controller.reset()
