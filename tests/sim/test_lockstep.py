"""Lockstep batched execution versus the serial runner.

``run_many(..., lockstep=True)`` advances a batch's runs together,
servicing compatible thermal-step requests with one batched BLAS-3
operation per group.  Per-run physics is untouched, so every statistic
must match the serial path to BLAS summation order; discrete statistics
must match exactly.
"""

import numpy as np
import pytest

from repro.sim.batch import RunSpec, run_many
from repro.sim.config import EngineConfig
from repro.sim.lockstep import run_lockstep

EXACT_FIELDS = (
    "instructions",
    "cycles",
    "violations",
    "hottest_block",
    "dvs_switches",
    "migrations",
)
CLOSE_FIELDS = (
    "elapsed_s",
    "time_above_trigger_s",
    "dvs_low_time_s",
    "stall_time_s",
    "mean_gating_fraction",
    "max_true_temp_c",
    "mean_power_w",
)


def _specs():
    # Three policies x two seeds on one workload: the runs share the
    # thermal substrate and step length, so lockstep actually batches
    # them (DVS runs drift to other step lengths and regroup on the fly).
    return [
        RunSpec(
            workload="gcc",
            policy=policy,
            instructions=1_000_000,
            settle_time_s=1.0e-4,
            seed=seed,
        )
        for policy in ("none", "FG", "DVS")
        for seed in (0, 1)
    ]


def _assert_equivalent(result, reference):
    for field in EXACT_FIELDS:
        assert getattr(result, field) == getattr(reference, field), field
    for field in CLOSE_FIELDS:
        assert getattr(result, field) == pytest.approx(
            getattr(reference, field), rel=1e-9, abs=1e-12
        ), field


@pytest.fixture(scope="module")
def serial_results():
    # The whole suite compares lockstep against per-run execution, so
    # the reference must opt out of the lockstep sweep default.
    return run_many(_specs(), lockstep=False)


class TestLockstepEquivalence:
    def test_matches_serial_runner(self, serial_results):
        lockstep = run_many(_specs(), lockstep=True)
        assert len(lockstep) == len(serial_results)
        for batched, serial in zip(lockstep, serial_results):
            _assert_equivalent(batched, serial)

    def test_run_lockstep_direct_entry_point(self, serial_results):
        for batched, serial in zip(run_lockstep(_specs()), serial_results):
            _assert_equivalent(batched, serial)

    def test_single_spec_batch(self, serial_results):
        (result,) = run_many(_specs()[:1], lockstep=True)
        _assert_equivalent(result, serial_results[0])

    def test_empty_batch(self):
        assert run_many([], lockstep=True) == []

    def test_explicit_initial_is_respected(self):
        spec = _specs()[0]
        (reference,) = run_many([spec])
        from repro.sim.batch import steady_state_for

        initial = steady_state_for(spec.workload)
        pinned = RunSpec(
            workload=spec.workload,
            policy=spec.policy,
            instructions=spec.instructions,
            settle_time_s=spec.settle_time_s,
            seed=spec.seed,
            initial=np.asarray(initial),
        )
        (result,) = run_many([pinned], lockstep=True)
        _assert_equivalent(result, reference)


class TestGeneratorCleanup:
    def test_failure_closes_all_live_generators(self, monkeypatch):
        # One run failing mid-sweep must close every other run's
        # suspended iter_run generator, not leave it to be finalised at
        # some arbitrary garbage collection.
        from repro.errors import NumericalError
        from repro.sim.engine import SimulationEngine
        from repro.sim.faults import FaultPlan

        captured = []
        original = SimulationEngine.iter_run

        def capturing(self, *args, **kwargs):
            generator = original(self, *args, **kwargs)
            captured.append(generator)
            return generator

        monkeypatch.setattr(SimulationEngine, "iter_run", capturing)

        poisoned = RunSpec(
            workload="gcc",
            policy="none",
            instructions=1_000_000,
            seed=1,
            engine_config=EngineConfig(
                fault_plan=FaultPlan(corrupt_power_at_step=3)
            ),
        )
        healthy = [
            RunSpec(
                workload="gcc",
                policy="none",
                instructions=1_000_000,
                seed=seed,
            )
            for seed in (0, 2)
        ]
        with pytest.raises(NumericalError):
            run_lockstep([healthy[0], poisoned, healthy[1]])
        assert len(captured) == 3
        assert all(gen.gi_frame is None for gen in captured)


class TestRaiseOnViolationFallback:
    def test_falls_back_to_serial_runner(self, monkeypatch):
        # An emergency must abort only its own run, so specs with
        # raise_on_violation are routed through run_one even inside a
        # lockstep batch.
        import repro.sim.batch as batch

        routed = []
        original = batch.run_one

        def counting(spec):
            routed.append(spec)
            return original(spec)

        monkeypatch.setattr(batch, "run_one", counting)
        guarded = RunSpec(
            workload="mesa",
            policy="none",
            instructions=200_000,
            # mesa's unmanaged steady state sits below the emergency
            # threshold, so the guarded run completes instead of raising.
            engine_config=EngineConfig(raise_on_violation=True),
        )
        plain = RunSpec(
            workload="gcc", policy="FG", instructions=200_000
        )
        results = run_lockstep([plain, guarded, plain])
        assert routed == [guarded]
        assert all(r is not None for r in results)
        (reference,) = run_many([guarded])
        _assert_equivalent(results[1], reference)
