"""Floorplan container and adjacency."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan import Block, Floorplan


def two_by_one():
    return Floorplan(
        [
            Block("left", 0.0, 0.0, 1.0, 1.0),
            Block("right", 1.0, 0.0, 1.0, 1.0),
        ],
        name="pair",
    )


def quad():
    return Floorplan(
        [
            Block("sw", 0.0, 0.0, 1.0, 1.0),
            Block("se", 1.0, 0.0, 1.0, 1.0),
            Block("nw", 0.0, 1.0, 1.0, 1.0),
            Block("ne", 1.0, 1.0, 1.0, 1.0),
        ]
    )


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(FloorplanError):
            Floorplan([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(FloorplanError) as err:
            Floorplan([Block("a", 0, 0, 1, 1), Block("a", 2, 0, 1, 1)])
        assert "duplicate" in str(err.value)

    def test_rejects_overlapping_blocks(self):
        with pytest.raises(FloorplanError) as err:
            Floorplan([Block("a", 0, 0, 2, 1), Block("b", 1, 0, 2, 1)])
        assert "overlap" in str(err.value)


class TestAccess:
    def test_len_iteration_and_contains(self):
        fp = two_by_one()
        assert len(fp) == 2
        assert [b.name for b in fp] == ["left", "right"]
        assert "left" in fp and "missing" not in fp

    def test_getitem_and_index(self):
        fp = two_by_one()
        assert fp["right"].x == pytest.approx(1.0)
        assert fp.index_of("left") == 0
        assert fp.index_of("right") == 1

    def test_unknown_block_raises(self):
        fp = two_by_one()
        with pytest.raises(FloorplanError):
            fp["nope"]
        with pytest.raises(FloorplanError):
            fp.index_of("nope")

    def test_block_names_order_is_stable(self):
        assert quad().block_names == ["sw", "se", "nw", "ne"]


class TestGeometry:
    def test_bounding_box_and_areas(self):
        fp = quad()
        assert fp.bounding_box == (0.0, 0.0, 2.0, 2.0)
        assert fp.die_area == pytest.approx(4.0)
        assert fp.total_block_area == pytest.approx(4.0)

    def test_power_density(self):
        fp = two_by_one()
        densities = fp.power_density({"left": 2.0, "right": 4.0})
        assert densities["left"] == pytest.approx(2.0)
        assert densities["right"] == pytest.approx(4.0)


class TestAdjacency:
    def test_pair_adjacency(self):
        fp = two_by_one()
        assert len(fp.adjacencies) == 1
        pair = fp.adjacencies[0]
        assert {pair.block_a, pair.block_b} == {"left", "right"}
        assert pair.shared_edge_length == pytest.approx(1.0)
        assert pair.center_distance == pytest.approx(1.0)

    def test_quad_has_four_edges_no_diagonals(self):
        fp = quad()
        # Diagonal neighbours (sw-ne, se-nw) share only a corner.
        assert len(fp.adjacencies) == 4
        pairs = {frozenset((a.block_a, a.block_b)) for a in fp.adjacencies}
        assert frozenset(("sw", "ne")) not in pairs
        assert frozenset(("se", "nw")) not in pairs

    def test_neighbours(self):
        fp = quad()
        assert sorted(fp.neighbours("sw")) == ["nw", "se"]

    def test_neighbours_unknown_block_raises(self):
        with pytest.raises(FloorplanError):
            quad().neighbours("nope")
