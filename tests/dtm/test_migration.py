"""Activity migration."""

import pytest

from repro.dtm import MigrationConfig, MigrationPolicy, ThermalThresholds
from repro.errors import DtmConfigError
from repro.floorplan import SPARE_REGISTER_FILE

TRIGGER = ThermalThresholds().trigger_c
DT = 1e-4


def readings(home, spare=70.0):
    return {"IntReg": home, SPARE_REGISTER_FILE: spare, "L2": 70.0}


class TestPolicy:
    def test_stays_home_when_cool(self):
        policy = MigrationPolicy()
        cmd = policy.update(readings(75.0), 0.0, DT)
        assert cmd.migration is None
        assert not policy.away

    def test_migrates_when_home_is_hot(self):
        policy = MigrationPolicy()
        cmd = policy.update(readings(TRIGGER + 1.0), 0.0, DT)
        assert policy.away
        assert cmd.migration == ("IntReg", SPARE_REGISTER_FILE, 1.0)

    def test_remote_penalty_applied_while_away(self):
        policy = MigrationPolicy()
        cmd = policy.update(readings(TRIGGER + 1.0), 0.0, DT)
        assert cmd.clock_enabled_fraction == pytest.approx(0.97)

    def test_ping_pong_when_spare_heats_up(self):
        policy = MigrationPolicy()
        policy.update(readings(TRIGGER + 1.0), 0.0, DT)
        assert policy.away
        cmd = policy.update(
            readings(TRIGGER - 2.0, spare=TRIGGER + 1.0), DT, DT
        )
        assert not policy.away
        assert cmd.migration is None

    def test_returns_home_after_sustained_cooling(self):
        policy = MigrationPolicy()
        policy.update(readings(TRIGGER + 1.0), 0.0, DT)
        cmd = None
        for i in range(60):
            cmd = policy.update(readings(75.0, spare=75.0), (i + 1) * DT, DT)
        assert not policy.away
        assert cmd.migration is None

    def test_missing_home_reading_rejected(self):
        policy = MigrationPolicy()
        with pytest.raises(DtmConfigError):
            policy.update({"L2": 70.0}, 0.0, DT)

    def test_reset(self):
        policy = MigrationPolicy()
        policy.update(readings(TRIGGER + 1.0), 0.0, DT)
        policy.reset()
        assert not policy.away

    def test_config_validation(self):
        with pytest.raises(DtmConfigError):
            MigrationConfig(hot_block="X", spare_block="X")
        with pytest.raises(DtmConfigError):
            MigrationConfig(remote_penalty=1.0)


class TestMigrationFloorplan:
    def test_migration_floorplan_valid_and_has_spare(self):
        from repro.floorplan import build_migration_floorplan, validate_floorplan

        floorplan = build_migration_floorplan()
        validate_floorplan(floorplan)
        assert SPARE_REGISTER_FILE in floorplan
        assert floorplan["IntReg"].area == pytest.approx(
            floorplan[SPARE_REGISTER_FILE].area
        )

    def test_spare_sits_far_from_primary(self):
        from repro.floorplan import build_migration_floorplan

        floorplan = build_migration_floorplan()
        distance = floorplan["IntReg"].center_distance(
            floorplan[SPARE_REGISTER_FILE]
        )
        assert distance > 3e-3  # metres: across the core

    def test_migration_specs_keep_density(self):
        from repro.floorplan import build_migration_floorplan
        from repro.power import default_power_specs, migration_power_specs
        from repro.floorplan import build_alpha21364_floorplan

        base_fp = build_alpha21364_floorplan()
        mig_fp = build_migration_floorplan()
        base_density = (
            default_power_specs()["IntReg"].peak_dynamic_w
            / base_fp["IntReg"].area
        )
        mig_density = (
            migration_power_specs()["IntReg"].peak_dynamic_w
            / mig_fp["IntReg"].area
        )
        assert mig_density == pytest.approx(base_density, rel=0.01)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.dtm import NoDtmPolicy
        from repro.floorplan import build_migration_floorplan
        from repro.power import PowerModel, migration_power_specs
        from repro.sim import SimulationEngine
        from repro.workloads import build_benchmark

        floorplan = build_migration_floorplan()
        power = PowerModel(floorplan, specs=migration_power_specs())
        workload = build_benchmark("crafty")
        engine = SimulationEngine(
            workload, policy=NoDtmPolicy(), floorplan=floorplan,
            power_model=power,
        )
        init = engine.compute_initial_temperatures()
        base = engine.run(4_000_000, initial=init.copy(), settle_time_s=2e-3)
        return floorplan, power, workload, init, base

    def test_migration_eliminates_violations(self, setup):
        from repro.sim import SimulationEngine

        floorplan, power, workload, init, base = setup
        assert base.violations > 0  # unmanaged crafty runs hot
        run = SimulationEngine(
            workload, policy=MigrationPolicy(), floorplan=floorplan,
            power_model=power,
        ).run(4_000_000, initial=init.copy(), settle_time_s=2e-3)
        assert run.violations == 0
        assert run.max_true_temp_c < 85.0

    def test_migration_cheaper_than_dvs_on_register_heat(self, setup):
        from repro.dtm import DvsPolicy
        from repro.sim import SimulationEngine

        floorplan, power, workload, init, base = setup
        migration = SimulationEngine(
            workload, policy=MigrationPolicy(), floorplan=floorplan,
            power_model=power,
        ).run(4_000_000, initial=init.copy(), settle_time_s=2e-3)
        dvs = SimulationEngine(
            workload, policy=DvsPolicy(), floorplan=floorplan,
            power_model=power,
        ).run(4_000_000, initial=init.copy(), settle_time_s=2e-3)
        assert migration.elapsed_s < dvs.elapsed_s
