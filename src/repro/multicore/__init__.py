"""Multi-core thermal management (paper future work, Section 6).

"Thermal management on multi-threaded and multi-core systems remains
poorly understood."  This package extends the reproduction to a dual-core
chip:

* :mod:`repro.multicore.floorplan` -- a two-core die (each core a full
  copy of the Figure 2 core) sharing an L2, so the cores are thermally
  coupled through the silicon and the package;
* :mod:`repro.multicore.engine` -- a co-simulation engine running one
  workload and one DTM policy per core against the shared thermal model;
* :mod:`repro.multicore.hopping` -- core hopping, the scheduler-level DTM
  technique multi-core chips unlock: when the active core overheats and
  the other is cooler, swap the workloads instead of throttling;
* :mod:`repro.multicore.batch` -- :class:`DualCoreRunSpec`, the sweep
  integration: dual-core runs execute through
  :func:`~repro.sim.batch.run_many` with supervision, journalling and
  report aggregation.
"""

from repro.multicore.floorplan import (
    CORE_INSTANCES,
    build_dual_core_floorplan,
    core_block,
    core_of,
    dual_core_power_specs,
)
from repro.multicore.engine import (
    DUAL_CORE_PACKAGE,
    HOP_STALL_S,
    CoreResult,
    MultiCoreEngine,
    MultiCoreResult,
)
from repro.multicore.hopping import CoreHopper, HoppingConfig
from repro.multicore.batch import DualCoreRunSpec, run_dual_core

__all__ = [
    "DualCoreRunSpec",
    "HOP_STALL_S",
    "run_dual_core",
    "CORE_INSTANCES",
    "build_dual_core_floorplan",
    "core_block",
    "core_of",
    "dual_core_power_specs",
    "MultiCoreEngine",
    "MultiCoreResult",
    "CoreResult",
    "DUAL_CORE_PACKAGE",
    "CoreHopper",
    "HoppingConfig",
]
