"""Live progress through the service: the ``status``/``jobs`` verbs,
streamed ``progress`` frames, the HTTP facade, and drain readiness.

The runner seam stands in for the engine and publishes heartbeats by
hand, keyed by the job digest exactly as ``run_one``'s bracket does --
so these tests pin the relay contract (engine slot -> service entry ->
wire) without paying for a simulation.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import heartbeat
from repro.service.client import ServiceClient, ServiceError
from repro.sim.batch import RunSpec
from repro.sim.supervisor import spec_digest
from tests.service.conftest import synthetic_result


@pytest.fixture(autouse=True)
def _fast_heartbeats():
    """Unthrottled, clean heartbeat state around every test here."""
    interval = heartbeat.set_publish_interval(0.0)
    heartbeat.reset()
    yield
    heartbeat.set_publish_interval(interval)
    heartbeat.reset()


def publishing_runner(samples=4, gap_s=0.05, release=None):
    """A runner that heartbeats ``samples`` times, then resolves.

    ``release`` (an Event) gates completion so a test can hold a job
    in flight while it probes the server from outside.
    """

    def run(spec):
        publisher = heartbeat.begin(
            spec_digest(spec), spec.workload_name, spec.policy, 100.0
        )
        try:
            for i in range(1, samples + 1):
                if publisher is not None:
                    publisher.publish(
                        i * 100.0 / samples, i * 0.1, i * 1000, 80.0, False
                    )
                time.sleep(gap_s)
            if release is not None:
                assert release.wait(timeout=30.0)
        finally:
            heartbeat.finish(publisher)
        return synthetic_result(spec.workload_name, spec.policy)

    return run


def submit_in_background(address, specs):
    """Submit on a worker thread; returns (thread, outcomes-list)."""
    outcomes = []

    def work():
        with ServiceClient(address, timeout=60.0) as client:
            outcomes.extend(client.submit(specs, timeout_s=60.0))

    thread = threading.Thread(target=work, daemon=True)
    thread.start()
    return thread, outcomes


def _status_or_none(client, digest):
    """Poll-friendly status: None while the submission is still in
    flight to the server (the background submitter races the poller)."""
    try:
        return client.status(digest)
    except ServiceError as err:
        if "unknown job" in str(err):
            return None
        raise


def _get(address, path):
    url = f"http://{address}{path}"
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestStatusVerb:
    def test_per_job_progress_is_monotonic(self, service_factory):
        server = service_factory(publishing_runner(samples=5, gap_s=0.1))
        spec = RunSpec("gzip", "Hyb", instructions=1_000_000)
        digest = spec_digest(spec)
        thread, outcomes = submit_in_background(
            server.service.config.socket_path, [spec]
        )
        percents = []
        with ServiceClient(server.service.config.socket_path) as client:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                entry = _status_or_none(client, digest)
                if entry is not None:
                    if entry.get("percent") is not None:
                        percents.append(entry["percent"])
                    if entry["state"] in ("done", "failed"):
                        break
                time.sleep(0.04)
        thread.join(timeout=30.0)
        assert outcomes and outcomes[0].ok
        assert percents == sorted(percents)  # never regresses
        assert len(set(percents)) >= 2  # actually moved mid-run
        assert percents[-1] == 100.0

    def test_running_entry_carries_heartbeat_fields(self, service_factory):
        release = threading.Event()
        server = service_factory(
            publishing_runner(samples=2, gap_s=0.01, release=release)
        )
        spec = RunSpec("art", "FG", instructions=1_000_000)
        digest = spec_digest(spec)
        thread, _ = submit_in_background(
            server.service.config.socket_path, [spec]
        )
        try:
            with ServiceClient(server.service.config.socket_path) as client:
                deadline = time.monotonic() + 30.0
                entry = None
                while time.monotonic() < deadline:
                    entry = _status_or_none(client, digest)
                    if (
                        entry is not None
                        and entry["state"] == "running"
                        and "progress" in entry
                    ):
                        break
                    time.sleep(0.02)
                assert entry is not None and entry["state"] == "running"
                progress = entry["progress"]
                assert progress["total"] == 100.0
                assert progress["dtm_state"] in ("nominal", "engaged")
                assert progress["steps"] >= 1000
        finally:
            release.set()
        thread.join(timeout=30.0)

    def test_unknown_digest_errors(self, service_factory):
        server = service_factory(publishing_runner(samples=1))
        from repro.service.client import ServiceError

        with ServiceClient(server.service.config.socket_path) as client:
            with pytest.raises(ServiceError):
                client.status("0" * 64)

    def test_finished_job_resolves_from_history(self, service_factory):
        server = service_factory(publishing_runner(samples=1, gap_s=0.0))
        spec = RunSpec("gzip", "none", instructions=1_000_000)
        digest = spec_digest(spec)
        with ServiceClient(server.service.config.socket_path) as client:
            outcomes = client.submit([spec], timeout_s=60.0)
            assert outcomes[0].ok
            entry = client.status(digest)
        assert entry["state"] == "done"
        assert entry["percent"] == 100.0


class TestJobsVerb:
    def test_lists_running_then_finished(self, service_factory):
        server = service_factory(publishing_runner(samples=2, gap_s=0.0))
        specs = [
            RunSpec("gzip", "none", instructions=1_000_000, seed=s)
            for s in (1, 2)
        ]
        with ServiceClient(server.service.config.socket_path) as client:
            outcomes = client.submit(specs, timeout_s=60.0)
            assert all(o.ok for o in outcomes)
            jobs = client.jobs()
        digests = {spec_digest(spec) for spec in specs}
        seen = {job["digest"] for job in jobs}
        assert digests <= seen
        for job in jobs:
            if job["digest"] in digests:
                assert job["state"] == "done"
                assert job["percent"] == 100.0


class TestWatch:
    def test_progress_frames_stream_to_watchers(self, service_factory):
        server = service_factory(
            publishing_runner(samples=6, gap_s=0.1),
            progress_interval_s=0.05,
        )
        spec = RunSpec("gzip", "Hyb", instructions=1_000_000)
        frames = []
        with ServiceClient(
            server.service.config.socket_path, timeout=60.0
        ) as client:
            client.on_progress = frames.append
            assert client.watch(True) is True
            outcomes = client.submit([spec], timeout_s=60.0)
        assert outcomes[0].ok
        assert frames, "no progress frames reached the watcher"
        for frame in frames:
            assert frame["op"] == "progress"
            assert isinstance(frame["jobs"], list)
        digests = {
            job["digest"] for frame in frames for job in frame["jobs"]
        }
        assert spec_digest(spec) in digests

    def test_watch_off_stops_frames(self, service_factory):
        server = service_factory(publishing_runner(samples=1, gap_s=0.0))
        with ServiceClient(server.service.config.socket_path) as client:
            assert client.watch(True) is True
            assert client.watch(False) is False


class TestHttpFacade:
    def test_jobs_and_metrics_mid_run(self, service_factory):
        release = threading.Event()
        server = service_factory(
            publishing_runner(samples=3, gap_s=0.01, release=release),
            http="127.0.0.1:0",
        )
        address = server.service.http_address
        assert address is not None
        spec = RunSpec("gzip", "Hyb", instructions=1_000_000)
        digest = spec_digest(spec)
        thread, _ = submit_in_background(
            server.service.config.socket_path, [spec]
        )
        try:
            deadline = time.monotonic() + 30.0
            entry = None
            while time.monotonic() < deadline:
                status, entry = _get(address, f"/jobs/{digest}")
                if status == 200 and entry["state"] == "running":
                    break
                time.sleep(0.02)
            assert entry is not None and entry["state"] == "running"

            status, payload = _get(address, "/jobs")
            assert status == 200
            assert digest in {job["digest"] for job in payload["jobs"]}

            status, payload = _get(address, "/healthz")
            assert status == 200 and payload["ok"] is True

            url = f"http://{address}/metrics"
            with urllib.request.urlopen(url, timeout=5.0) as response:
                text = response.read().decode()
            assert "repro_service_inflight_jobs 1" in text
            assert "repro_service_queue_depth" in text
            assert "repro_service_cache_hit_rate" in text
        finally:
            release.set()
        thread.join(timeout=30.0)

    def test_job_miss_is_404(self, service_factory):
        server = service_factory(
            publishing_runner(samples=1), http="127.0.0.1:0"
        )
        status, payload = _get(server.service.http_address, "/jobs/feedbeef")
        assert status == 404
        assert "feedbeef" in payload["error"]

    def test_readyz_flips_503_during_drain_with_inflight_job(
        self, service_factory
    ):
        release = threading.Event()
        server = service_factory(
            publishing_runner(samples=1, gap_s=0.0, release=release),
            http="127.0.0.1:0",
        )
        address = server.service.http_address
        spec = RunSpec("gzip", "none", instructions=1_000_000)
        digest = spec_digest(spec)
        thread, outcomes = submit_in_background(
            server.service.config.socket_path, [spec]
        )
        try:
            status, _ = _get(address, "/readyz")
            assert status == 200

            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                code, entry = _get(address, f"/jobs/{digest}")
                if code == 200 and entry["state"] == "running":
                    break
                time.sleep(0.02)
            with ServiceClient(server.service.config.socket_path) as client:
                client.drain()
            status, payload = _get(address, "/readyz")
            assert status == 503
            assert payload["ready"] is False
            assert payload["draining"] is True
        finally:
            release.set()
        thread.join(timeout=30.0)
        assert outcomes and outcomes[0].ok
