"""Phase detection: build a workload from a recorded interval trace.

The paper's methodology rests on SimPoint-style phase behaviour; this
module provides the reverse tool -- given a per-interval record of IPC
and block activities (from the detailed core, from an external profiler,
or from production telemetry), cluster the intervals into phases and
synthesise a :class:`~repro.workloads.workload.Workload` the simulation
engine can run.

Clustering is a small deterministic k-means over the (activity, IPC)
feature vectors: seeded initialisation, fixed iteration count, empty
clusters dropped.  Performance-model parameters that a trace cannot
reveal (memory CPI split, fetch supply, speculation waste) are taken as
explicit arguments with the calibrated suite's defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.phases import Phase
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class IntervalRecord:
    """One recorded interval: committed work plus mean block activities."""

    instructions: int
    ipc: float
    activities: Mapping[str, float]

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise WorkloadError("interval must commit at least 1 instruction")
        if self.ipc <= 0.0:
            raise WorkloadError("interval IPC must be > 0")
        if not self.activities:
            raise WorkloadError("interval needs at least one activity")


def _feature_matrix(
    records: Sequence[IntervalRecord], blocks: List[str]
) -> np.ndarray:
    rows = []
    for record in records:
        rows.append(
            [record.activities.get(block, 0.0) for block in blocks]
            + [record.ipc / 4.0]  # scale IPC near the activity range
        )
    return np.asarray(rows)


def _kmeans(
    features: np.ndarray, k: int, iterations: int, seed: int
) -> np.ndarray:
    """Deterministic k-means; returns per-row labels."""
    rng = np.random.default_rng(seed)
    n = features.shape[0]
    centres = features[rng.choice(n, size=k, replace=False)].copy()
    labels = np.zeros(n, dtype=int)
    for _ in range(iterations):
        distances = np.linalg.norm(
            features[:, None, :] - centres[None, :, :], axis=2
        )
        labels = distances.argmin(axis=1)
        for cluster in range(k):
            members = features[labels == cluster]
            if len(members):
                centres[cluster] = members.mean(axis=0)
    return labels


def detect_phases(
    records: Sequence[IntervalRecord],
    max_phases: int = 4,
    iterations: int = 25,
    seed: int = 0,
    memory_cpi_fraction: float = 0.15,
    speculation_waste: float = 0.2,
    fetch_supply_ratio: float = 1.55,
) -> List[Phase]:
    """Cluster ``records`` into at most ``max_phases`` phases.

    Phases are returned in order of first appearance in the trace; each
    carries the cluster's instruction total, work-weighted mean IPC, and
    mean activity vector.
    """
    if not records:
        raise WorkloadError("cannot detect phases in an empty trace")
    if max_phases < 1:
        raise WorkloadError("max_phases must be >= 1")
    blocks = sorted(records[0].activities)
    for record in records:
        if sorted(record.activities) != blocks:
            raise WorkloadError(
                "all interval records must cover the same block set"
            )
    k = min(max_phases, len(records))
    features = _feature_matrix(records, blocks)
    labels = _kmeans(features, k, iterations, seed)

    phases: List[Phase] = []
    seen: Dict[int, None] = {}
    for label in labels:
        if label not in seen:
            seen[int(label)] = None
    for order, label in enumerate(seen):
        members = [r for r, l in zip(records, labels) if l == label]
        if not members:
            continue
        instructions = sum(r.instructions for r in members)
        ipc = instructions / sum(r.instructions / r.ipc for r in members)
        activities = {
            block: float(
                np.mean([r.activities[block] for r in members])
            )
            for block in blocks
        }
        phases.append(
            Phase(
                name=f"phase{order}",
                instructions=instructions,
                base_ipc=ipc,
                memory_cpi_fraction=memory_cpi_fraction,
                fetch_supply_ipc=fetch_supply_ratio * ipc,
                speculation_waste=speculation_waste,
                base_activities=activities,
            )
        )
    return phases


def workload_from_trace(
    name: str,
    records: Sequence[IntervalRecord],
    max_phases: int = 4,
    description: str = "detected from interval trace",
    **phase_kwargs,
) -> Workload:
    """Detect phases in ``records`` and wrap them as a workload."""
    phases = detect_phases(records, max_phases=max_phases, **phase_kwargs)
    return Workload(name, phases, description)
