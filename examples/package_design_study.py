"""Package design study: what DTM buys in cooling dollars.

The paper's motivation: cooling costs $1-3+ per watt, so designing the
package for the *typical* case and letting DTM absorb the worst case cut
the Pentium 4's thermal design power by 20 %.  This example sweeps the
sink-to-air resistance (cheaper sink = higher resistance) on one severe
benchmark and shows the trade: package cost versus DTM slowdown versus
protection.

Run:  python examples/package_design_study.py
"""

from repro import SimulationEngine, ThermalPackage, build_benchmark, make_policy

RESISTANCES = (0.80, 0.90, 1.00, 1.10)
INSTRUCTIONS = 6_000_000
SETTLE_S = 2.0e-3


def main() -> None:
    workload = build_benchmark("crafty")
    print(f"benchmark: {workload.name} ({workload.description})\n")
    print(f"{'R_conv':>7} {'unmanaged max':>14} {'needs DTM?':>11} "
          f"{'Hyb max':>8} {'Hyb viol':>9} {'Hyb slowdown':>13}")
    for resistance in RESISTANCES:
        package = ThermalPackage(convection_resistance=resistance)
        baseline_engine = SimulationEngine(
            workload, policy=make_policy("none"), package=package
        )
        initial = baseline_engine.compute_initial_temperatures()
        baseline = baseline_engine.run(
            INSTRUCTIONS, initial=initial.copy(), settle_time_s=SETTLE_S
        )
        hyb = SimulationEngine(
            workload, policy=make_policy("Hyb"), package=package
        ).run(INSTRUCTIONS, initial=initial.copy(), settle_time_s=SETTLE_S)
        needs_dtm = "yes" if baseline.violations > 0 else "no"
        slowdown = hyb.elapsed_s / baseline.elapsed_s
        print(f"{resistance:>7.2f} {baseline.max_true_temp_c:>13.2f}C "
              f"{needs_dtm:>11} {hyb.max_true_temp_c:>7.2f}C "
              f"{hyb.violations:>9d} {slowdown:>13.4f}")
    print(
        "\ncheaper packages (higher R_conv) need DTM; DTM converts the\n"
        "package saving into a bounded slowdown -- until its die-level\n"
        "authority runs out and violations reappear."
    )


if __name__ == "__main__":
    main()
