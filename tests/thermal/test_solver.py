"""Thermal solvers, validated against analytical results."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ThermalModelError
from repro.floorplan import Block, Floorplan
from repro.thermal import (
    ThermalPackage,
    TransientSolver,
    build_thermal_network,
    steady_state,
)


@pytest.fixture(scope="module")
def network():
    fp = Floorplan(
        [Block("a", 0, 0, 2e-3, 2e-3), Block("b", 2e-3, 0, 2e-3, 2e-3)]
    )
    return build_thermal_network(fp, ThermalPackage())


class TestSteadyState:
    def test_zero_power_settles_at_ambient(self, network):
        temps = steady_state(network, np.zeros(network.size))
        assert np.allclose(temps, network.ambient_c)

    def test_total_power_sets_sink_rise(self, network):
        # In steady state all heat leaves through the convection
        # resistance: T_sink = T_amb + R_conv * P_total.
        power = network.power_vector({"a": 3.0, "b": 2.0})
        temps = steady_state(network, power)
        sink = temps[network.index_of("__sink__")]
        assert sink == pytest.approx(network.ambient_c + 1.0 * 5.0, rel=1e-9)

    def test_heat_flows_downhill(self, network):
        power = network.power_vector({"a": 5.0, "b": 0.0})
        temps = steady_state(network, power)
        a = temps[network.index_of("a")]
        b = temps[network.index_of("b")]
        spreader = temps[network.index_of("__spreader__")]
        assert a > b > spreader > network.ambient_c

    def test_superposition(self, network):
        # The network is linear: temperatures superpose.
        p1 = network.power_vector({"a": 2.0, "b": 0.0})
        p2 = network.power_vector({"a": 0.0, "b": 3.0})
        t1 = steady_state(network, p1) - network.ambient_c
        t2 = steady_state(network, p2) - network.ambient_c
        t12 = steady_state(network, p1 + p2) - network.ambient_c
        assert np.allclose(t12, t1 + t2)

    def test_wrong_shape_raises(self, network):
        with pytest.raises(ThermalModelError):
            steady_state(network, np.zeros(2))


class TestTransient:
    def test_converges_to_steady_state(self, network):
        power = network.power_vector({"a": 4.0, "b": 1.0})
        target = steady_state(network, power)
        solver = TransientSolver(
            network, np.full(network.size, network.ambient_c)
        )
        # March long enough for even the sink (tau ~ R C ~ minutes) to
        # settle: adaptive giant steps are fine for backward Euler.
        for _ in range(200):
            temps = solver.step(power, 10.0)
        assert np.allclose(temps, target, atol=1e-3)

    def test_starting_at_steady_state_stays_there(self, network):
        power = network.power_vector({"a": 4.0, "b": 1.0})
        target = steady_state(network, power)
        solver = TransientSolver(network, target)
        temps = solver.step(power, 1e-5)
        assert np.allclose(temps, target, atol=1e-9)

    def test_monotone_heating_from_ambient(self, network):
        power = network.power_vector({"a": 4.0, "b": 4.0})
        solver = TransientSolver(
            network, np.full(network.size, network.ambient_c)
        )
        previous = solver.temperatures
        for _ in range(50):
            current = solver.step(power, 1e-4)
            assert np.all(current >= previous - 1e-12)
            previous = current

    def test_single_node_exponential_decay_rate(self):
        # One tiny block: die node decays toward its driven equilibrium
        # with tau ~= R_vertical * C_block when the package nodes barely
        # move.  Backward Euler with small steps must track the
        # analytical exponential within a few percent.
        fp = Floorplan([Block("solo", 0, 0, 1e-3, 1e-3)])
        package = ThermalPackage()
        network = build_thermal_network(fp, package)
        steady = steady_state(network, np.zeros(network.size))
        # Perturb the die node by +10 K and watch it relax.
        start = steady.copy()
        die = network.index_of("solo")
        start[die] += 10.0
        solver = TransientSolver(network, start)

        r_vertical = package.block_vertical_resistance(1e-6)
        capacitance = package.block_capacitance(1e-6)
        tau = r_vertical * capacitance

        dt = tau / 50.0
        steps = 50  # one time constant
        for _ in range(steps):
            temps = solver.step(np.zeros(network.size), dt)
        excess = (temps[die] - steady[die]) / 10.0
        assert excess == pytest.approx(np.exp(-1.0), rel=0.08)

    def test_dt_cache_consistency(self, network):
        # Alternating between two step sizes must agree with a fresh
        # solver using the same sequence (exercises the LU cache).
        power = network.power_vector({"a": 2.0, "b": 2.0})
        s1 = TransientSolver(network, np.full(network.size, 45.0))
        s2 = TransientSolver(network, np.full(network.size, 45.0))
        for dt in (1e-5, 3e-6, 1e-5, 3e-6, 1e-5):
            t1 = s1.step(power, dt)
        for dt in (1e-5, 3e-6, 1e-5, 3e-6, 1e-5):
            t2 = s2.step(power, dt)
        assert np.allclose(t1, t2)

    def test_time_tracking_and_reset(self, network):
        solver = TransientSolver(network, np.full(network.size, 45.0))
        solver.step(np.zeros(network.size), 2e-6)
        solver.step(np.zeros(network.size), 3e-6)
        assert solver.time_s == pytest.approx(5e-6)
        solver.reset(np.full(network.size, 50.0))
        assert solver.time_s == 0.0
        assert np.allclose(solver.temperatures, 50.0)

    def test_rejects_bad_inputs(self, network):
        solver = TransientSolver(network, np.full(network.size, 45.0))
        with pytest.raises(ThermalModelError):
            solver.step(np.zeros(network.size), 0.0)
        with pytest.raises(ThermalModelError):
            solver.step(np.zeros(2), 1e-6)
        with pytest.raises(ThermalModelError):
            TransientSolver(network, np.zeros(2))


@settings(max_examples=25, deadline=None)
@given(
    pa=st.floats(0.0, 20.0),
    pb=st.floats(0.0, 20.0),
)
def test_property_steady_state_bounded_and_ordered(pa, pb):
    fp = Floorplan(
        [Block("a", 0, 0, 2e-3, 2e-3), Block("b", 2e-3, 0, 2e-3, 2e-3)]
    )
    network = build_thermal_network(fp, ThermalPackage())
    temps = steady_state(network, network.power_vector({"a": pa, "b": pb}))
    # No node can be cooler than ambient or hotter than the dissipation
    # bound T_amb + P_total * (sum of worst-case series resistances).
    assert np.all(temps >= network.ambient_c - 1e-9)
    total = pa + pb
    worst_series = 50.0  # generous bound for this tiny network
    assert np.all(temps <= network.ambient_c + total * worst_series + 1e-9)
    # More power in "a" than "b" implies "a" is at least as hot.
    if pa > pb:
        assert temps[network.index_of("a")] >= temps[network.index_of("b")]


@settings(max_examples=20, deadline=None)
@given(power_w=st.floats(0.5, 10.0), dt=st.floats(1e-7, 1e-3))
def test_property_energy_conservation_single_step(power_w, dt):
    # Backward Euler conserves energy exactly per step:
    # sum(C dT) = (P_in - P_out_to_ambient(T_new)) dt.
    fp = Floorplan([Block("solo", 0, 0, 1e-3, 1e-3)])
    network = build_thermal_network(fp, ThermalPackage())
    start = np.full(network.size, network.ambient_c)
    solver = TransientSolver(network, start)
    power = network.power_vector({"solo": power_w})
    after = solver.step(power, dt)
    stored = float(np.sum(network.capacitance * (after - start)))
    leaked = float(
        np.sum(network.ambient_conductance * (after - network.ambient_c)) * dt
    )
    injected = power_w * dt
    assert stored + leaked == pytest.approx(injected, rel=1e-6)
