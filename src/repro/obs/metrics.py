"""The metrics registry: counters, gauges, fixed-bucket histograms.

One module-level flag (:func:`enabled`, initialised from ``REPRO_OBS``)
gates the whole observability layer.  Instrumented code follows one of
two patterns:

* *hot paths* (the engine's step loop) check the flag **once per run**
  and keep plain local counters either way, publishing them into the
  registry in one batch at the end of the run -- the disabled path
  executes no observability code at all;
* *cold paths* (a fallback activation, a pool rebuild) call
  :func:`inc` or ``REGISTRY.counter(...).inc()`` directly; when
  disabled, :func:`inc` returns before touching the registry and
  allocates nothing.

The registry itself is process-local.  Worker processes publish into
their own copy; cross-process aggregation happens through per-run spill
records (:mod:`repro.obs.spill`), not by merging registries.
"""

from __future__ import annotations

import atexit
import os
import re
import shutil
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

OBS_ENV = "REPRO_OBS"
"""Set to ``1`` to enable the observability layer (metrics registry,
structured events, span tracing, sweep reports).  Off by default."""

OBS_DIR_ENV = "REPRO_OBS_DIR"
"""Directory that receives event logs, worker spill files and sweep
reports.  When unset, a per-run temporary directory is created lazily
(``repro-obs-*`` under the system temp dir) and removed at interpreter
exit, so casual runs never litter the working directory with
``obs/events-*.jsonl`` files.  Set it explicitly to keep the logs."""

_FALSEY = ("", "0", "off", "false", "no")

_ENABLED = os.environ.get(OBS_ENV, "").strip().lower() not in _FALSEY

_NAME_RE = re.compile(r"^[a-z][a-z0-9_.]*$")

DEFAULT_TIME_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)
"""Default fixed buckets for duration histograms, in seconds."""


def enabled() -> bool:
    """True when the observability layer is switched on."""
    return _ENABLED


def set_enabled(on: bool) -> bool:
    """Set the module-level enabled flag; returns the previous value.

    The environment variable seeds the flag at import; this lets the
    CLI (``--obs``) and tests flip it per call without re-importing.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    return previous


# The lazily created default output directory, cached per process so
# every caller (and every pool worker forked afterwards) agrees on one
# path.  Only the process that created it removes it at exit: forked
# workers inherit the cache but not ownership.
_DEFAULT_DIR: Optional[Path] = None
_DEFAULT_DIR_OWNER: Optional[int] = None


def _cleanup_default_dir() -> None:
    if _DEFAULT_DIR is not None and _DEFAULT_DIR_OWNER == os.getpid():
        shutil.rmtree(_DEFAULT_DIR, ignore_errors=True)


def obs_dir() -> Path:
    """The observability output directory.

    ``REPRO_OBS_DIR`` names it explicitly (not created here).  Without
    the override, a per-run temporary directory is created on first use
    and removed at interpreter exit by the process that created it --
    telemetry spill/event files must live *somewhere* while pool
    workers stream them back, but they are intermediate state, not a
    deliverable, and used to accumulate unboundedly in ``./obs``.
    """
    env = os.environ.get(OBS_DIR_ENV)
    if env:
        return Path(env)
    global _DEFAULT_DIR, _DEFAULT_DIR_OWNER
    if _DEFAULT_DIR is None:
        _DEFAULT_DIR = Path(tempfile.mkdtemp(prefix="repro-obs-"))
        _DEFAULT_DIR_OWNER = os.getpid()
        atexit.register(_cleanup_default_dir)
    return _DEFAULT_DIR


def reset_default_dir_for_testing() -> None:
    """Drop (and delete) the cached default directory so the next
    :func:`obs_dir` call creates a fresh one.  Test isolation only."""
    global _DEFAULT_DIR, _DEFAULT_DIR_OWNER
    _cleanup_default_dir()
    _DEFAULT_DIR = None
    _DEFAULT_DIR_OWNER = None


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} must be lowercase dotted "
            f"([a-z][a-z0-9_.]*)"
        )
    return name


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0.0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)

    def add(self, amount: float) -> None:
        """Shift the gauge by ``amount``."""
        self.value += amount


class Histogram:
    """Fixed-bucket recording of an observed distribution.

    ``bounds`` are the inclusive upper edges of the finite buckets, in
    increasing order; one implicit overflow bucket catches everything
    beyond the last edge.  Bucket counts are stored per bucket (not
    cumulative); the Prometheus exporter accumulates them into the
    classic ``le`` form.
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_TIME_BUCKETS,
        help: str = "",
    ):
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing bucket "
                f"bounds, got {bounds!r}"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # + overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """Named metrics, created on first use and stable thereafter.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the same
    name always returns the same object, so call sites can look metrics
    up by name without holding references.  A name registered as one
    kind cannot be re-registered as another.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _claim(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} is already a {other_kind}"
                )

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        metric = self._counters.get(name)
        if metric is None:
            self._claim(name, "counter")
            metric = self._counters[name] = Counter(name, help)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        metric = self._gauges.get(name)
        if metric is None:
            self._claim(name, "gauge")
            metric = self._gauges[name] = Gauge(name, help)
        return metric

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_TIME_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """Get or create the histogram ``name`` (bounds apply only on
        creation)."""
        metric = self._histograms.get(name)
        if metric is None:
            self._claim(name, "histogram")
            metric = self._histograms[name] = Histogram(name, bounds, help)
        return metric

    def counter_values(self) -> Dict[str, float]:
        """Current counter values by name (a plain dict snapshot)."""
        return {name: c.value for name, c in self._counters.items()}

    def snapshot(self) -> Dict[str, object]:
        """The whole registry as a JSON-serialisable mapping."""
        return {
            "counters": self.counter_values(),
            "gauges": {name: g.value for name, g in self._gauges.items()},
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for name, h in self._histograms.items()
            },
        }

    def reset(self) -> None:
        """Drop every registered metric (test isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


REGISTRY = MetricsRegistry()
"""The process-wide default registry everything publishes into."""


def inc(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` on the default registry when
    observability is enabled; a free no-op otherwise (no allocation,
    no registry access) -- safe to call from warm paths."""
    if _ENABLED:
        REGISTRY.counter(name).inc(amount)


def counter_delta(
    after: Dict[str, float], before: Dict[str, float]
) -> Dict[str, float]:
    """Per-name difference of two :meth:`MetricsRegistry.counter_values`
    snapshots, dropping zero entries."""
    delta: Dict[str, float] = {}
    for name, value in after.items():
        change = value - before.get(name, 0.0)
        if change != 0.0:
            delta[name] = change
    return delta
