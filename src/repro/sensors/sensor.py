"""A single thermal sensor with noise, offset and quantisation."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.sensors.faults import (
    SENSOR_FAULT_DROPOUT,
    SENSOR_FAULT_OFFSET,
    SENSOR_FAULT_STUCK,
    SensorFault,
)


@dataclass(frozen=True)
class SensorParameters:
    """Error model of one on-chip thermal sensor.

    Parameters
    ----------
    noise_sigma_c:
        Standard deviation of the per-reading Gaussian noise.  The paper's
        "effective precision after averaging" of 1 degree is modelled as a
        +/-1 degree 3-sigma bound, i.e. sigma of 1/3 degree.
    max_offset_c:
        Magnitude bound of the fixed per-sensor offset; the actual offset
        is drawn uniformly in [-max_offset_c, +max_offset_c] at
        construction, representing calibration error and sensor placement
        relative to the true hotspot.
    quantisation_c:
        Step of the digitised output (0 disables quantisation).
    """

    noise_sigma_c: float = 1.0 / 3.0
    max_offset_c: float = 2.0
    quantisation_c: float = 0.1

    def __post_init__(self) -> None:
        if self.noise_sigma_c < 0.0:
            raise SimulationError("noise sigma must be >= 0")
        if self.max_offset_c < 0.0:
            raise SimulationError("max offset must be >= 0")
        if self.quantisation_c < 0.0:
            raise SimulationError("quantisation must be >= 0")

    @staticmethod
    def ideal() -> "SensorParameters":
        """An error-free sensor (for ablation studies)."""
        return SensorParameters(noise_sigma_c=0.0, max_offset_c=0.0,
                                quantisation_c=0.0)


class ThermalSensor:
    """One sensor: reading = quantise(true + offset + noise).

    The fixed offset is drawn once at construction from the sensor's own
    RNG stream, so a given ``(parameters, seed)`` pair is reproducible.

    An optional :class:`~repro.sensors.faults.SensorFault` degrades the
    sensor beyond its calibrated error model: ``stuck`` pins the reading
    to a constant, ``offset`` adds a drift on top of the drawn offset,
    and ``dropout`` marks the sensor dead (:attr:`alive` is false; the
    array skips it).  Each sensor owns its RNG stream, so faulting one
    sensor cannot perturb another sensor's noise sequence.
    """

    def __init__(
        self,
        parameters: SensorParameters,
        seed: int,
        fault: Optional[SensorFault] = None,
    ):
        self._params = parameters
        self._seed = seed
        self._rng = random.Random(seed)
        self._offset = self._rng.uniform(
            -parameters.max_offset_c, parameters.max_offset_c
        )
        self._fault = fault

    def reset(self) -> None:
        """Rewind the sensor's RNG stream to construction state.

        Re-seeds and re-draws the fixed offset (consuming the same
        first value), so a reset sensor produces bit-identical noise on
        a repeated run.
        """
        self._rng = random.Random(self._seed)
        self._offset = self._rng.uniform(
            -self._params.max_offset_c, self._params.max_offset_c
        )

    @property
    def parameters(self) -> SensorParameters:
        """The sensor's error model."""
        return self._params

    @property
    def offset_c(self) -> float:
        """This sensor's fixed offset in degrees Celsius."""
        return self._offset

    @property
    def fault(self) -> Optional[SensorFault]:
        """The injected fault, if any."""
        return self._fault

    @property
    def alive(self) -> bool:
        """False when the sensor has dropped out entirely."""
        return (
            self._fault is None or self._fault.mode != SENSOR_FAULT_DROPOUT
        )

    def read(self, true_temp_c: float) -> float:
        """One digitised reading of ``true_temp_c``."""
        fault = self._fault
        if fault is not None:
            if fault.mode == SENSOR_FAULT_STUCK:
                return fault.value_c
            if fault.mode == SENSOR_FAULT_DROPOUT:
                raise SimulationError(
                    f"sensor on {fault.block!r} has dropped out"
                )
        value = true_temp_c + self._offset
        if fault is not None and fault.mode == SENSOR_FAULT_OFFSET:
            value += fault.value_c
        if self._params.noise_sigma_c > 0.0:
            value += self._rng.gauss(0.0, self._params.noise_sigma_c)
        step = self._params.quantisation_c
        if step > 0.0:
            value = round(value / step) * step
        return value
