"""Sensor fault modes: stuck-at, dropout, extra offset."""

import pytest

from repro.errors import SensorFaultError, SimulationError
from repro.floorplan.alpha21364 import build_alpha21364_floorplan
from repro.sensors import SensorArray, SensorParameters, ThermalSensor
from repro.sensors.faults import SensorFault
from repro.sim import EngineConfig, FaultPlan, RunSpec, run_one

FAST_N = 1_500_000


class TestSensorFault:
    def test_rejects_unknown_mode(self):
        with pytest.raises(SimulationError):
            SensorFault(block="IntReg", mode="melted")

    def test_constructors(self):
        assert SensorFault.stuck("a", 40.0).mode == "stuck"
        assert SensorFault.dropout("a").mode == "dropout"
        assert SensorFault.drifted("a", 3.0).mode == "offset"


class TestFaultedSensor:
    def test_stuck_pins_reading(self):
        sensor = ThermalSensor(
            SensorParameters(), seed=0, fault=SensorFault.stuck("a", 42.5)
        )
        assert sensor.read(95.0) == 42.5
        assert sensor.read(20.0) == 42.5
        assert sensor.alive

    def test_dropout_is_dead(self):
        sensor = ThermalSensor(
            SensorParameters(), seed=0, fault=SensorFault.dropout("a")
        )
        assert not sensor.alive
        with pytest.raises(SimulationError):
            sensor.read(80.0)

    def test_extra_offset_shifts_reading(self):
        params = SensorParameters.ideal()
        clean = ThermalSensor(params, seed=0)
        drifted = ThermalSensor(
            params, seed=0, fault=SensorFault.drifted("a", 3.0)
        )
        assert drifted.read(80.0) == pytest.approx(clean.read(80.0) + 3.0)

    def test_fault_does_not_perturb_noise_stream(self):
        # The drawn offset comes from the sensor's own RNG; attaching a
        # fault must not shift the stream.
        clean = ThermalSensor(SensorParameters(), seed=7)
        faulted = ThermalSensor(
            SensorParameters(), seed=7, fault=SensorFault.drifted("a", 0.0)
        )
        assert clean.offset_c == faulted.offset_c
        assert clean.read(80.0) == pytest.approx(faulted.read(80.0))


class TestFaultedArray:
    def _floorplan(self):
        return build_alpha21364_floorplan()

    def test_rejects_unknown_block(self):
        with pytest.raises(SimulationError):
            SensorArray(
                self._floorplan(),
                faults=[SensorFault.stuck("NoSuchBlock", 40.0)],
            )

    def test_rejects_duplicate_block(self):
        with pytest.raises(SimulationError):
            SensorArray(
                self._floorplan(),
                faults=[
                    SensorFault.stuck("IntReg", 40.0),
                    SensorFault.dropout("IntReg"),
                ],
            )

    def test_dropped_sensor_is_skipped(self):
        floorplan = self._floorplan()
        array = SensorArray(
            floorplan, faults=[SensorFault.dropout("IntReg")]
        )
        temps = {name: 70.0 for name in floorplan.block_names}
        readings = array.sample(temps, time_s=0.0)
        assert "IntReg" not in readings
        assert len(readings) == len(floorplan.block_names) - 1

    def test_all_dropped_raises_typed_error(self):
        floorplan = self._floorplan()
        array = SensorArray(
            floorplan,
            faults=[
                SensorFault.dropout(name) for name in floorplan.block_names
            ],
        )
        temps = {name: 95.0 for name in floorplan.block_names}
        with pytest.raises(SensorFaultError):
            array.sample(temps, time_s=0.0)


class TestEngineUnderSensorFaults:
    """The paper's DTM loop driven through a degraded sensor array."""

    # The per-sensor offsets are drawn from the spec seed; this seed
    # gives a neighbouring sensor (IntQ, ~81.7 C true) a positive
    # offset, so the trigger is observable through the survivors when
    # the hottest block's own sensor is lost.
    SEED = 11

    def _spec(self, faults, policy="FG", seed=SEED):
        return RunSpec(
            workload="gcc",
            policy=policy,
            instructions=FAST_N,
            settle_time_s=1.0e-4,
            seed=seed,
            engine_config=EngineConfig(
                fault_plan=FaultPlan(sensor_faults=tuple(faults))
            ),
        )

    def test_stuck_hottest_sensor_still_trips_trigger(self):
        # gcc's hottest block is IntReg.  Stick its sensor far below the
        # 81.8 C trigger: the neighbouring sensors still read hot, so
        # fetch gating must engage anyway -- the array's redundancy is
        # the whole point of per-block sensing.
        result = run_one(
            self._spec([SensorFault.stuck("IntReg", 40.0)])
        )
        assert result.mean_gating_fraction > 0.0
        assert result.time_above_trigger_s > 0.0

    def test_stuck_sensor_weakens_but_does_not_blind_control(self):
        clean = run_one(self._spec([]))
        stuck = run_one(
            self._spec([SensorFault.stuck("IntReg", 40.0)])
        )
        # Control still responds, but observing the hottest block only
        # through its neighbours cannot gate more than direct sight.
        assert 0.0 < stuck.mean_gating_fraction <= clean.mean_gating_fraction

    def test_fully_dropped_array_raises_not_zero_violations(self):
        floorplan = build_alpha21364_floorplan()
        faults = [
            SensorFault.dropout(name) for name in floorplan.block_names
        ]
        with pytest.raises(SensorFaultError):
            run_one(self._spec(faults))

    def test_sensor_faults_only_hit_targeted_seeds(self):
        fault = SensorFault.stuck("IntReg", 40.0)
        plan = FaultPlan(seeds=(99,), sensor_faults=(fault,))
        spec = RunSpec(
            workload="gcc",
            policy="FG",
            instructions=FAST_N,
            settle_time_s=1.0e-4,
            seed=0,
            engine_config=EngineConfig(fault_plan=plan),
        )
        clean_spec = RunSpec(
            workload="gcc",
            policy="FG",
            instructions=FAST_N,
            settle_time_s=1.0e-4,
            seed=0,
        )
        targeted = run_one(spec)
        clean = run_one(clean_spec)
        assert targeted.elapsed_s == clean.elapsed_s
        assert targeted.max_true_temp_c == clean.max_true_temp_c
