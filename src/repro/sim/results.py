"""Run results."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from repro.errors import SimulationError


@dataclass
class TracePoint:
    """One recorded step of a traced run."""

    time_s: float
    hottest_block: str
    hottest_temp_c: float
    gating_fraction: float
    voltage: float
    clock_enabled_fraction: float
    instructions: float


@dataclass
class RunResult:
    """Outcome of one engine run.

    ``elapsed_s`` is the quantity slowdown factors are computed from: the
    wall-clock time the run needed to commit its instruction budget,
    including DVS switching stalls.
    """

    benchmark: str
    policy: str
    dvs_mode: str
    instructions: float
    elapsed_s: float
    cycles: int
    violations: int
    max_true_temp_c: float
    hottest_block: str
    time_above_trigger_s: float
    dvs_switches: int
    dvs_low_time_s: float
    stall_time_s: float
    mean_gating_fraction: float
    mean_power_w: float
    migrations: int = 0
    # Distinct excursions above the trigger temperature (defaulted so
    # journals written before this field existed still load).
    trigger_crossings: int = 0
    trace: Optional[List[TracePoint]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.instructions <= 0.0 or self.elapsed_s <= 0.0:
            raise SimulationError("run committed no work")

    @property
    def ips(self) -> float:
        """Instructions per second of wall-clock time."""
        return self.instructions / self.elapsed_s

    @property
    def fraction_above_trigger(self) -> float:
        """Fraction of the run spent above the trigger temperature."""
        return self.time_above_trigger_s / self.elapsed_s

    @property
    def violation_free(self) -> bool:
        """True when the emergency threshold was never exceeded."""
        return self.violations == 0

    def to_json_dict(self) -> Dict[str, object]:
        """All scalar fields as a JSON-serialisable mapping.

        The trace (if any) is dropped: the sweep journal stores run
        outcomes, not per-step time series.
        """
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "trace"
        }

    @staticmethod
    def from_json_dict(data: Dict[str, object]) -> "RunResult":
        """Rebuild a (traceless) result from :meth:`to_json_dict` output.

        Unknown keys are ignored so a journal written by a newer version
        with extra fields still loads; missing keys raise ``TypeError``
        as a corrupt-journal signal.
        """
        known = {f.name for f in fields(RunResult) if f.name != "trace"}
        return RunResult(**{k: v for k, v in data.items() if k in known})

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary for tables."""
        return {
            "instructions": self.instructions,
            "elapsed_ms": self.elapsed_s * 1e3,
            "violations": float(self.violations),
            "max_temp_c": self.max_true_temp_c,
            "above_trigger_frac": self.fraction_above_trigger,
            "trigger_crossings": float(self.trigger_crossings),
            "dvs_switches": float(self.dvs_switches),
            "dvs_low_frac": self.dvs_low_time_s / self.elapsed_s,
            "stall_ms": self.stall_time_s * 1e3,
            "mean_gating": self.mean_gating_fraction,
            "mean_power_w": self.mean_power_w,
        }
