"""The Alpha-class per-block power budget.

Peak dynamic power per block at nominal voltage and frequency, chosen so
that (a) realised power densities rank like the Alpha 21264 Wattch data --
the integer register file has the highest density and is the hotspot for
every benchmark -- and (b) total typical chip power sits in the high-20s to
low-30s of watts, which with the paper's 1.0 K/W low-cost package places the
hot SPEC benchmarks just above the 81.8 C trigger at steady state.

Leakage references are 15 % of peak dynamic at 85 C, matching the ITRS
130 nm projection the paper adopts.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import PowerModelError
from repro.floorplan.alpha21364 import ALL_BLOCKS
from repro.power.dynamic import BlockPowerSpec

_LEAKAGE_FRACTION_OF_PEAK = 0.15
"""Reference leakage at 85 C as a fraction of peak dynamic power."""

_PEAK_DYNAMIC_W: Mapping[str, float] = {
    # Large, low-density arrays.
    "L2": 5.0,
    "L2_left": 1.1,
    "L2_right": 1.1,
    "Icache": 5.5,
    "Dcache": 6.5,
    # Thin strip of predictor / FP blocks.
    "Bpred": 0.9,
    "DTB": 0.7,
    "FPAdd": 0.9,
    "FPReg": 0.8,
    "FPMul": 0.9,
    "FPMap": 0.6,
    # Queues and map logic.
    "IntMap": 1.1,
    "IntQ": 1.5,
    "FPQ": 0.8,
    "LdStQ": 1.7,
    "ITB": 0.9,
    # The hotspot: small, heavily multi-ported register file.
    "IntReg": 6.0,
    "IntExec": 6.5,
}

_CLOCK_FRACTION: Mapping[str, float] = {
    # Array structures have proportionally less clock/precharge power than
    # latched datapath logic.
    "L2": 0.05,
    "L2_left": 0.05,
    "L2_right": 0.05,
    "Icache": 0.10,
    "Dcache": 0.10,
}
_DEFAULT_CLOCK_FRACTION = 0.18


def default_power_specs() -> Dict[str, BlockPowerSpec]:
    """Per-block :class:`BlockPowerSpec` for the Alpha 21364 floorplan."""
    specs: Dict[str, BlockPowerSpec] = {}
    for name in ALL_BLOCKS:
        peak = _PEAK_DYNAMIC_W[name]
        specs[name] = BlockPowerSpec(
            name=name,
            peak_dynamic_w=peak,
            leakage_ref_w=_LEAKAGE_FRACTION_OF_PEAK * peak,
            clock_fraction=_CLOCK_FRACTION.get(name, _DEFAULT_CLOCK_FRACTION),
        )
    return specs


def migration_power_specs() -> Dict[str, BlockPowerSpec]:
    """Specs for the activity-migration floorplan variant.

    Fitting two register-file copies into the core's top row shrinks each
    copy to 1.6 mm x 1.9 mm (from the single file's 2.2 mm x 1.9 mm), so
    both copies are modelled as reduced-port banked files with peak power
    scaled by the area ratio -- keeping their power *density* equal to the
    original design's.  The idle copy's standing leakage and clock power
    is the "cost-benefit concern" the paper cites.
    """
    from repro.floorplan.migration import SPARE_REGISTER_FILE

    specs = default_power_specs()
    primary = specs["IntReg"]
    area_ratio = 1.6 / 2.2  # migration-row width over original width
    for name in ("IntReg", SPARE_REGISTER_FILE):
        specs[name] = BlockPowerSpec(
            name=name,
            peak_dynamic_w=primary.peak_dynamic_w * area_ratio,
            leakage_ref_w=primary.leakage_ref_w * area_ratio,
            clock_fraction=primary.clock_fraction,
        )
    return specs


def total_peak_dynamic_power(specs: Mapping[str, BlockPowerSpec]) -> float:
    """Sum of per-block peak dynamic power in watts."""
    if not specs:
        raise PowerModelError("empty power-spec mapping")
    return sum(spec.peak_dynamic_w for spec in specs.values())
