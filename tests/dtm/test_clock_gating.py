"""Clock-gating policy."""

import pytest

from repro.dtm import ClockGatingConfig, ClockGatingPolicy, ThermalThresholds
from repro.errors import DtmConfigError

TRIGGER = ThermalThresholds().trigger_c


def readings(temp):
    return {"IntReg": temp}


def test_clock_runs_when_cool():
    policy = ClockGatingPolicy()
    cmd = policy.update(readings(70.0), 0.0, 1e-4)
    assert cmd.clock_enabled_fraction == 1.0


def test_duty_ramps_under_heat():
    policy = ClockGatingPolicy()
    enabled = [
        policy.update(readings(TRIGGER + 2.0), i * 1e-4, 1e-4).clock_enabled_fraction
        for i in range(20)
    ]
    assert enabled[-1] < enabled[0]


def test_duty_saturates_at_max():
    policy = ClockGatingPolicy(ClockGatingConfig(max_duty=0.8))
    for i in range(1000):
        cmd = policy.update(readings(TRIGGER + 5.0), i * 1e-4, 1e-4)
    assert cmd.clock_enabled_fraction == pytest.approx(0.2)


def test_never_gates_fetch_or_voltage():
    policy = ClockGatingPolicy()
    cmd = policy.update(readings(TRIGGER + 5.0), 0.0, 1e-4)
    assert cmd.gating_fraction == 0.0
    assert cmd.voltage == pytest.approx(1.3)


def test_reset():
    policy = ClockGatingPolicy()
    policy.update(readings(TRIGGER + 5.0), 0.0, 1e-4)
    policy.reset()
    assert policy.duty == 0.0


def test_config_validation():
    with pytest.raises(DtmConfigError):
        ClockGatingConfig(ki=-1.0)
    with pytest.raises(DtmConfigError):
        ClockGatingConfig(max_duty=1.0)
    with pytest.raises(DtmConfigError):
        ClockGatingConfig(nominal_voltage=0.0)
