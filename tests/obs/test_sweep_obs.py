"""Observability through real sweeps: reports, bit-identity, logging.

These are the integration-level guarantees of the obs layer:

* a sweep with ``REPRO_OBS=1`` produces a :class:`SweepReport` whose
  counters are identical whether the sweep ran serially, across a
  process pool, or in lockstep chunks;
* enabling observability changes *nothing* about the physics -- run
  results are bit-identical with obs on or off;
* when the supervisor abandons its pool, the reason survives into the
  report metadata and each serial-fallback failure's notes;
* ``logging_setup`` routes library diagnostics through standard
  handlers.
"""

import io
import logging

import pytest

import repro.obs as obs
from repro.errors import SimulationError
from repro.sim import RunFailure, RunSpec, run_many
from repro.sim.batch import last_sweep_report, run_one

FAST_N = 1_500_000


def _spec(seed=0, benchmark="gzip", policy="FG"):
    return RunSpec(
        workload=benchmark,
        policy=policy,
        instructions=FAST_N,
        settle_time_s=1.0e-4,
        seed=seed,
    )


def _exploding_policy():
    raise SimulationError("injected policy failure")


class TestSweepReport:
    def test_serial_sweep_produces_report(self, obs_on):
        specs = [_spec(seed=s) for s in range(2)]
        # Per-run path: lockstep sweeps spill one chunk record per
        # batch rather than one record per run.
        run_many(specs, lockstep=False)
        report = last_sweep_report()
        assert report is not None
        assert report.meta["n_runs"] == 2
        assert report.counters["engine.runs"] == 2.0
        assert report.counters["engine.trigger_crossings"] >= 0.0
        assert "dtm.duty_cycle" in report.counters
        assert report.spans["run.total"][1] == 2
        run_ids = {run["run_id"] for run in report.runs}
        assert len(run_ids) == 2
        for run in report.runs:
            assert "engine.trigger_crossings" in run["metrics"]
            assert "dtm.duty_cycle" in run["metrics"]

    def test_pool_and_lockstep_counters_match_serial(self, obs_on):
        specs = [_spec(seed=s) for s in range(3)]
        run_many(specs, lockstep=False)
        serial = last_sweep_report()

        run_many(specs, processes=2, lockstep=False)
        pooled = last_sweep_report()

        run_many(specs, processes=2, lockstep=True)
        lockstep = last_sweep_report()

        engine_keys = [
            key for key in serial.counters
            if key.startswith(("engine.", "dtm.", "thermal."))
        ]
        assert engine_keys
        for key in engine_keys:
            assert pooled.counters.get(key) == pytest.approx(
                serial.counters[key]
            ), key
            assert lockstep.counters.get(key) == pytest.approx(
                serial.counters[key]
            ), key
        # Pool workers contributed their spill records.
        assert len(pooled.runs) == 3

    def test_disabled_sweep_produces_no_report(self, obs_dir):
        run_many([_spec()])
        assert last_sweep_report() is None

    def test_report_export_round_trip(self, obs_on, tmp_path):
        run_many([_spec()])
        report = last_sweep_report()
        loaded = type(report).load(report.save(tmp_path / "report.jsonl"))
        assert loaded.counters == report.counters
        assert "repro_engine_runs 1" in loaded.prometheus_text()
        assert "engine.runs" in loaded.render()


class TestBitIdentity:
    def test_results_identical_with_obs_on_and_off(self, obs_dir):
        spec = _spec(policy="Hyb")
        obs.set_enabled(False)
        baseline = run_one(spec)
        obs.set_enabled(True)
        observed = run_one(spec)
        assert observed == baseline

    def test_trigger_crossings_populated_either_way(self, obs_dir):
        spec = _spec(benchmark="gzip", policy="none")
        result = run_one(spec)
        assert result.trigger_crossings >= 1
        assert result.summary()["trigger_crossings"] == float(
            result.trigger_crossings
        )


class TestDegradationReason:
    def test_reason_reaches_failures_and_report(self, obs_on, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        import repro.sim.batch as batch

        class _AlwaysBroken:
            def submit(self, *args, **kwargs):
                raise BrokenProcessPool("worker died at fork")

        monkeypatch.setattr(
            batch, "_get_pool", lambda processes: _AlwaysBroken()
        )
        specs = [_spec(), RunSpec(
            workload="gzip",
            policy=_exploding_policy,
            instructions=FAST_N,
            settle_time_s=1.0e-4,
            seed=1,
        )]
        with pytest.warns(RuntimeWarning, match="degrading"):
            outcomes = run_many(
                specs, processes=2, partial_results=True
            )

        failures = [o for o in outcomes if isinstance(o, RunFailure)]
        assert len(failures) == 1
        (failure,) = failures
        assert failure.error_type == "SimulationError"
        assert failure.notes
        assert "pool degraded to serial" in failure.notes[0]
        assert "BrokenProcessPool" in failure.notes[0]
        assert "; ".join(failure.notes) in failure.to_json_dict()["notes"]

        report = last_sweep_report()
        assert "BrokenProcessPool" in report.meta["degradation_reason"]
        assert report.counters["sweep.serial_degradations"] == 1.0
        assert report.counters["sweep.pool_rebuilds"] >= 1.0
        assert report.counters["sweep.run_failures"] == 1.0
        # The healthy spec still completed serially and reported in.
        assert report.meta["n_runs"] == 1
        assert report.meta["n_failures"] == 1


class TestLoggingBridge:
    def test_library_warnings_reach_the_stream(self, obs_dir):
        buffer = io.StringIO()
        logger = obs.logging_setup(stream=buffer)
        try:
            logging.getLogger("repro.faults").warning("probe %d", 17)
            assert "WARNING repro.faults: probe 17" in buffer.getvalue()
        finally:
            for handler in list(logger.handlers):
                logger.removeHandler(handler)

    def test_reconfiguring_does_not_duplicate_output(self, obs_dir):
        first = io.StringIO()
        second = io.StringIO()
        obs.logging_setup(stream=first)
        logger = obs.logging_setup(stream=second)
        try:
            logging.getLogger("repro.sweep").warning("only once")
            assert "only once" not in first.getvalue()
            assert second.getvalue().count("only once") == 1
        finally:
            for handler in list(logger.handlers):
                logger.removeHandler(handler)
