"""Per-run progress heartbeats: publisher lifecycle, the seqlock slot
file, snapshot merging, and engine integration (bit identity)."""

import json
import os
import struct

import pytest

from repro.obs import heartbeat, metrics


@pytest.fixture
def hb_on(obs_dir):
    previous = heartbeat.set_enabled(True)
    interval = heartbeat.set_publish_interval(0.0)
    heartbeat.reset()
    yield
    heartbeat.set_enabled(previous)
    heartbeat.set_publish_interval(interval)
    heartbeat.reset()


class TestPublisher:
    def test_begin_returns_none_when_disabled(self, obs_dir):
        previous = heartbeat.set_enabled(False)
        try:
            assert heartbeat.begin("k", "gzip", "Hyb", 100.0) is None
            assert heartbeat.active() is None
        finally:
            heartbeat.set_enabled(previous)

    def test_begin_publish_finish_roundtrip(self, hb_on):
        publisher = heartbeat.begin("k1", "gzip", "Hyb", 200.0)
        assert heartbeat.active() is publisher
        publisher.publish(50.0, 0.1, 7, 81.5, True)
        record = heartbeat.snapshot()["k1"]
        assert record["state"] == "running"
        assert record["done"] == 50.0
        assert record["percent"] == 25.0
        assert record["steps"] == 7
        assert record["peak_temp_c"] == 81.5
        assert record["dtm_state"] == "engaged"
        heartbeat.finish(publisher)
        assert heartbeat.active() is None
        record = heartbeat.snapshot()["k1"]
        assert record["state"] == "done"
        assert record["percent"] == 100.0

    def test_finish_with_error_marks_failed(self, hb_on):
        publisher = heartbeat.begin("k2", "art", "FG", 100.0)
        heartbeat.finish(publisher, error="RuntimeError: boom")
        record = heartbeat.snapshot()["k2"]
        assert record["state"] == "failed"
        assert record["error"] == "RuntimeError: boom"
        assert record["percent"] == 0.0  # no progress claimed

    def test_release_pops_stack_without_finishing(self, hb_on):
        outer = heartbeat.begin("outer", "gzip", "Hyb", 1.0)
        heartbeat.release(outer)
        assert heartbeat.active() is None
        assert heartbeat.snapshot()["outer"]["state"] == "running"
        heartbeat.finish(outer)

    def test_wall_clock_throttle(self, hb_on):
        publisher = heartbeat.begin("k3", "gzip", "Hyb", 100.0)
        publisher.interval_s = 3600.0
        publisher.publish(10.0, 0.0, 1, 80.0, False)
        publisher.publish(90.0, 0.0, 2, 80.0, False)  # throttled away
        assert heartbeat.snapshot()["k3"]["done"] == 10.0


class TestSlotFile:
    def _slot_path(self):
        return metrics.obs_dir() / f"hb-{os.getpid()}.slot"

    def test_publish_writes_readable_slot(self, hb_on):
        publisher = heartbeat.begin("k4", "gzip", "Hyb", 100.0)
        publisher.publish(25.0, 0.5, 3, 82.0, False)
        records = heartbeat._read_slot(self._slot_path())
        assert [r["key"] for r in records] == ["k4"]
        assert records[0]["done"] == 25.0
        heartbeat.finish(publisher)

    def test_torn_write_is_skipped(self, hb_on):
        publisher = heartbeat.begin("k5", "gzip", "Hyb", 100.0)
        publisher.publish(25.0, 0.5, 3, 82.0, False)
        path = self._slot_path()
        # Forge a writer-in-progress header (odd sequence).
        with open(path, "r+b") as handle:
            handle.write(struct.pack("<QI", 7, 0))
        assert heartbeat._read_slot(path) == []
        heartbeat.finish(publisher)

    def test_garbage_payload_is_skipped(self, hb_on, tmp_path):
        path = tmp_path / "hb-999.slot"
        payload = b"not json at all"
        header = struct.pack("<QI", 2, len(payload)).ljust(16, b"\x00")
        path.write_bytes(header + payload)
        assert heartbeat._read_slot(path) == []

    def test_snapshot_merges_foreign_slot_by_freshness(self, hb_on):
        # A (simulated) worker's slot file with a fresher record for
        # the same key must win over this process's stale one.
        publisher = heartbeat.begin("k6", "gzip", "Hyb", 100.0)
        publisher.publish(10.0, 0.1, 1, 80.0, False)
        local_ts = heartbeat.snapshot()["k6"]["ts"]
        foreign = dict(heartbeat.snapshot()["k6"])
        foreign["done"] = 90.0
        foreign["ts"] = local_ts + 100.0
        foreign.pop("percent")
        payload = json.dumps([foreign]).encode()
        slot = metrics.obs_dir() / "hb-12345.slot"
        header = struct.pack("<QI", 2, len(payload)).ljust(16, b"\x00")
        slot.write_bytes(header + payload)
        assert heartbeat.snapshot()["k6"]["done"] == 90.0
        heartbeat.finish(publisher)


class TestEngineIntegration:
    def test_single_core_heartbeat_monotonic_and_bit_identical(self, obs_dir):
        from repro.sim.batch import RunSpec, run_one

        spec = RunSpec("gzip", "Hyb", instructions=40_000_000)
        baseline = run_one(spec)

        published = []
        original = heartbeat._Publisher.publish

        def spying(self, done, time_s, steps, peak, engaged):
            published.append(float(done))
            return original(self, done, time_s, steps, peak, engaged)

        previous = heartbeat.set_enabled(True)
        interval = heartbeat.set_publish_interval(0.0)
        heartbeat._Publisher.publish = spying
        try:
            result = run_one(spec)
        finally:
            heartbeat._Publisher.publish = original
            heartbeat.set_enabled(previous)
            heartbeat.set_publish_interval(interval)
        assert result.to_json_dict() == baseline.to_json_dict()
        assert len(published) >= 2  # the engine actually heartbeats
        assert published == sorted(published)  # progress never regresses
        record = heartbeat.snapshot()[next(iter(heartbeat.snapshot()))]
        assert record["state"] == "done"
        assert record["percent"] == 100.0

    def test_lockstep_runs_all_reach_done(self, obs_dir):
        from repro.sim.batch import RunSpec
        from repro.sim.lockstep import run_lockstep

        previous = heartbeat.set_enabled(True)
        interval = heartbeat.set_publish_interval(0.0)
        try:
            specs = [
                RunSpec("gzip", "none", instructions=1_000_000, seed=s)
                for s in (1, 2)
            ]
            results = run_lockstep(specs)
            snap = heartbeat.snapshot()
        finally:
            heartbeat.set_enabled(previous)
            heartbeat.set_publish_interval(interval)
        assert all(r is not None for r in results)
        assert len(snap) == 2
        assert all(rec["state"] == "done" for rec in snap.values())

    def test_dual_core_heartbeat_reaches_done(self, obs_dir):
        from repro.multicore.batch import DualCoreRunSpec
        from repro.sim.batch import run_one

        previous = heartbeat.set_enabled(True)
        interval = heartbeat.set_publish_interval(0.0)
        try:
            run_one(DualCoreRunSpec(("gzip", "art"), duration_s=0.02))
            snap = heartbeat.snapshot()
        finally:
            heartbeat.set_enabled(previous)
            heartbeat.set_publish_interval(interval)
        (record,) = snap.values()
        assert record["state"] == "done"
        assert record["percent"] == 100.0
