"""Ablation A4 (paper future work): reactive versus predictive hybrid DTM.

Section 6: "Techniques for predicting thermal stress and responding
proactively ... may further reduce the overhead of DTM."  This bench runs
the forecast-driven hybrid (`PredictiveHybPolicy`) against the reactive
Hyb across the suite.
"""

from _helpers import bench_instructions, save_table

from repro.analysis import render_table
from repro.core.evaluation import evaluate_policy, run_baselines
from repro.dtm import HybPolicy, PredictiveHybPolicy


def _run() -> str:
    baselines = run_baselines(instructions=bench_instructions())
    reactive = evaluate_policy(HybPolicy, baselines)
    predictive = evaluate_policy(PredictiveHybPolicy, baselines)
    rows = [
        [b, reactive.slowdowns[b], predictive.slowdowns[b]]
        for b in sorted(reactive.slowdowns)
    ]
    rows.append(["MEAN", reactive.mean_slowdown, predictive.mean_slowdown])
    return render_table(
        ["benchmark", "Hyb (reactive)", "Pred-Hyb (forecast)"],
        rows,
        title="A4: reactive vs predictive hybrid DTM "
              f"(violations: reactive {reactive.total_violations}, "
              f"predictive {predictive.total_violations})",
    )


def test_a4_predictive_dtm(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("a4_predictive", table)
