"""Per-run telemetry context.

A *run* here is one engine execution inside a sweep (one
:class:`~repro.sim.batch.RunSpec`).  :func:`begin` opens the context --
pushing the run id into the ambient event context and opening a span
aggregate -- and :func:`end` closes it, returning the finished run
record: identity fields, numeric metrics published by the engine, and
the run's span table.  :func:`repro.sim.batch.run_one` writes that
record through :mod:`repro.obs.spill` so it reaches the sweep parent
even from a pool worker.

Contexts nest (supervised serial fallback re-running a spec inside a
sweep), and are process-local like everything else in the obs layer.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from repro.obs import events, metrics, trace


class _RunContext:
    __slots__ = ("run_id", "meta", "metrics", "t0", "saved_events")

    def __init__(self, run_id: str, meta: Dict[str, object]):
        self.run_id = run_id
        self.meta = meta
        self.metrics: Dict[str, float] = {}
        self.t0 = time.perf_counter()
        self.saved_events = events.push_context(run_id=run_id)


_STACK: List[_RunContext] = []


def begin(run_id: str, **meta) -> None:
    """Open a run context; ``meta`` are identity fields (benchmark,
    policy, seed, ...) copied verbatim into the run record."""
    trace.begin_run()
    _STACK.append(_RunContext(run_id, dict(meta)))


def current() -> Optional[str]:
    """The innermost active run id, or ``None``."""
    return _STACK[-1].run_id if _STACK else None


def add_metric(name: str, value: float) -> None:
    """Attach one numeric metric to the innermost run (accumulating:
    repeated calls with the same name sum)."""
    if _STACK:
        table = _STACK[-1].metrics
        table[name] = table.get(name, 0.0) + value


def add_metrics(values: Dict[str, float]) -> None:
    """Attach a batch of numeric metrics to the innermost run."""
    if _STACK:
        table = _STACK[-1].metrics
        for name, value in values.items():
            table[name] = table.get(name, 0.0) + value


def end(error: Optional[str] = None) -> Dict[str, object]:
    """Close the innermost run context and return its record.

    The record is flat-ish JSON: identity fields at top level, numeric
    metrics under ``"metrics"``, per-run span aggregates under
    ``"spans"`` as ``{name: [seconds, calls]}``.  Wall time also lands
    in the shared ``run.wall_seconds`` histogram.
    """
    spans = trace.end_run()
    if not _STACK:
        return {}
    ctx = _STACK.pop()
    events.pop_context(ctx.saved_events)
    wall = time.perf_counter() - ctx.t0
    metrics.REGISTRY.histogram("run.wall_seconds").observe(wall)
    record: Dict[str, object] = {
        "kind": "run",
        "run_id": ctx.run_id,
        "pid": os.getpid(),
        "wall_seconds": wall,
    }
    record.update(ctx.meta)
    if error is not None:
        record["error"] = error
    record["metrics"] = dict(ctx.metrics)
    record["spans"] = {
        name: [seconds, calls] for name, (seconds, calls) in spans.items()
    }
    return record


def reset() -> None:
    """Drop any open run contexts (test isolation)."""
    while _STACK:
        ctx = _STACK.pop()
        events.pop_context(ctx.saved_events)
