"""Steady-state initialisation.

The paper initialises all temperatures to their steady-state values before
measuring ("we initialize all temperatures to their steady-state values
and then run ... to bring operating temperatures to accurate runtime
values").  Over a millisecond-scale run the spreader and heat sink barely
move, so the initial condition fixes the package operating point and DTM
acts on the fast die-level dynamics -- exactly the regime the paper
studies.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.power.model import PowerModel
from repro.thermal.hotspot import HotSpotModel
from repro.workloads.workload import Workload

_LEAKAGE_ITERATIONS = 40
_CONVERGENCE_C = 1e-6


def leakage_fixed_point(
    block_powers: Callable[[Dict[str, float]], Mapping[str, float]],
    hotspot: HotSpotModel,
    start_c: float = 85.0,
    max_iterations: int = _LEAKAGE_ITERATIONS,
    tolerance_c: float = _CONVERGENCE_C,
) -> Tuple[np.ndarray, bool, int]:
    """Iterate the leakage/temperature fixed point to a steady state.

    ``block_powers`` maps a block-temperature dict to per-block powers;
    each iteration solves the steady state of those powers and feeds
    the temperatures back, until the hottest block moves less than
    ``tolerance_c`` between iterations.  Shared by the single-core and
    multicore warmup paths (which differ only in how they average
    workload activity into power).

    Returns ``(vector, converged, iterations)``; callers decide whether
    a non-converged state is fatal (single-core raises, multicore warns
    and proceeds).
    """
    temps = {name: start_c for name in hotspot.block_names}
    vector = None
    previous_max = None
    for iteration in range(1, max_iterations + 1):
        powers = block_powers(temps)
        vector = hotspot.steady_state_vector(powers)
        mapping = hotspot.network.temperatures_as_mapping(vector)
        temps = {name: mapping[name] for name in hotspot.block_names}
        current_max = max(temps.values())
        if (
            previous_max is not None
            and abs(current_max - previous_max) < tolerance_c
        ):
            return vector, True, iteration
        previous_max = current_max
    return vector, False, max_iterations


def average_activities(workload: Workload) -> Dict[str, float]:
    """Cycle-weighted average per-block activity of one pass through the
    workload at nominal operation."""
    weighted: Dict[str, float] = {}
    total_cycles = 0.0
    for phase in workload.phases:
        cycles = phase.instructions / phase.base_ipc
        acts = phase.activity_model.activities(1.0, 1.0)
        for block, value in acts.items():
            weighted[block] = weighted.get(block, 0.0) + value * cycles
        total_cycles += cycles
    return {block: value / total_cycles for block, value in weighted.items()}


def average_block_powers(
    workload: Workload,
    power_model: PowerModel,
    temperatures: Mapping[str, float],
) -> Dict[str, float]:
    """Average per-block power at nominal operation and the given
    temperatures.

    Floorplan blocks the workload does not exercise (e.g. the spare
    register file of a migration floorplan) get zero activity.
    """
    activities = average_activities(workload)
    for name in power_model.floorplan.block_names:
        activities.setdefault(name, 0.0)
    tech = power_model.technology
    return power_model.block_powers(
        activities,
        tech.vdd_nominal,
        tech.frequency_nominal,
        temperatures,
    )


def initial_temperatures(
    workload: Workload,
    hotspot: HotSpotModel,
    power_model: PowerModel,
) -> np.ndarray:
    """Self-consistent no-DTM steady-state temperature vector.

    Iterates the leakage/temperature fixed point: leakage depends on
    temperature, temperature on power.  Converges in a few iterations
    because leakage is a modest fraction of total power.
    """
    vector, converged, _ = leakage_fixed_point(
        lambda temps: average_block_powers(workload, power_model, temps),
        hotspot,
    )
    if not converged:
        raise SimulationError(
            "leakage/temperature fixed point did not converge; the operating "
            "point is likely in thermal runaway"
        )
    return vector
