"""Floorplan validation."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan import Block, Floorplan, validate_floorplan


def test_full_tiling_passes():
    fp = Floorplan(
        [Block("a", 0, 0, 1, 2), Block("b", 1, 0, 1, 2)]
    )
    validate_floorplan(fp)


def test_gap_fails_full_coverage():
    fp = Floorplan(
        [Block("a", 0, 0, 1, 1), Block("b", 1, 0, 1, 2)]
    )
    with pytest.raises(FloorplanError) as err:
        validate_floorplan(fp)
    assert "uncovered" in str(err.value)


def test_gap_allowed_when_partial_coverage_requested():
    fp = Floorplan(
        [Block("a", 0, 0, 1, 1), Block("b", 1, 0, 1, 2)]
    )
    validate_floorplan(fp, require_full_coverage=False)


def test_disconnected_floorplan_fails():
    fp = Floorplan(
        [Block("a", 0, 0, 1, 1), Block("b", 5, 5, 1, 1)]
    )
    with pytest.raises(FloorplanError) as err:
        validate_floorplan(fp, require_full_coverage=False)
    assert "disconnected" in str(err.value)


def test_corner_touch_counts_as_disconnected():
    # Thermal coupling needs a shared edge, not a point.
    fp = Floorplan(
        [Block("a", 0, 0, 1, 1), Block("b", 1, 1, 1, 1)]
    )
    with pytest.raises(FloorplanError):
        validate_floorplan(fp, require_full_coverage=False)


def test_single_block_is_valid():
    validate_floorplan(Floorplan([Block("solo", 0, 0, 1, 1)]))
