"""The content-addressed result cache: atomic writes, skeptical reads,
journal backfill."""

from __future__ import annotations

import json

import pytest

from repro.service.cache import ResultCache
from repro.sim.supervisor import SweepJournal
from tests.service.conftest import synthetic_result


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = ResultCache(tmp_path / "results")
        result = synthetic_result()
        cache.put("d0", result)
        assert "d0" in cache
        assert len(cache) == 1
        got = cache.get("d0")
        assert got.to_json_dict() == result.to_json_dict()
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 0, "corrupt": 0,
        }

    def test_missing_is_a_counted_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "results")
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_overwrite_is_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path / "results")
        cache.put("d0", synthetic_result(seed=0))
        cache.put("d0", synthetic_result(seed=0))
        assert len(cache) == 1

    def test_no_temp_files_survive_a_put(self, tmp_path):
        cache = ResultCache(tmp_path / "results")
        cache.put("d0", synthetic_result())
        leftovers = [
            p for p in (tmp_path / "results").iterdir()
            if p.suffix != ".json"
        ]
        assert leftovers == []


class TestSkepticalReads:
    @pytest.mark.parametrize("payload", [
        b"garbage not json",
        b'{"digest": "d0"}',             # missing the result payload
        b'{"result": {"benchmark": 1}}',  # unbuildable result
        '{"digest": "é'.encode("utf-8")[:-1],  # sheared UTF-8
    ])
    def test_corrupt_entry_is_quarantined_miss(self, tmp_path, payload):
        root = tmp_path / "results"
        cache = ResultCache(root)
        root.mkdir(parents=True)
        (root / "d0.json").write_bytes(payload)
        assert cache.get("d0") is None
        assert cache.corrupt == 1
        assert not (root / "d0.json").exists()
        assert (root / "d0.json.corrupt").exists()  # evidence survives
        # The quarantined entry can never be served again.
        assert cache.get("d0") is None
        assert "d0" not in cache


class TestJournalBackfill:
    def test_absorb_recovers_journalled_results(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        journal = SweepJournal(journal_path)
        results = {f"d{i}": synthetic_result(seed=i) for i in range(3)}
        for i, (digest, result) in enumerate(results.items()):
            journal.record(digest, i, result)
        journal.close()

        cache = ResultCache(tmp_path / "results")
        assert cache.absorb_journal(journal_path) == 3
        for digest, result in results.items():
            assert cache.get(digest).to_json_dict() == result.to_json_dict()
        # Re-absorbing the same journal adds nothing.
        assert cache.absorb_journal(journal_path) == 0

    def test_absorb_tolerates_missing_journal(self, tmp_path):
        cache = ResultCache(tmp_path / "results")
        assert cache.absorb_journal(tmp_path / "nope.jsonl") == 0

    def test_absorb_tolerates_torn_tail(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        journal = SweepJournal(journal_path)
        journal.record("good", 0, synthetic_result())
        journal.close()
        with open(journal_path, "ab") as handle:
            handle.write(b'{"digest": "torn", "resu')
        cache = ResultCache(tmp_path / "results")
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            added = cache.absorb_journal(journal_path)
        assert added == 1
        assert "good" in cache

    def test_entry_format_matches_journal_lines(self, tmp_path):
        # One serialisation format serves both persistence paths: a
        # cache entry carries the same digest/result mapping a journal
        # line does.
        cache = ResultCache(tmp_path / "results")
        result = synthetic_result()
        cache.put("d0", result)
        entry = json.loads((tmp_path / "results" / "d0.json").read_text())
        assert entry["digest"] == "d0"
        assert entry["result"] == json.loads(
            json.dumps(result.to_json_dict())
        )
