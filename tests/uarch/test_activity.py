"""Activity accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.uarch import ActivityModel
from repro.uarch.activity import PEAK_EVENTS_PER_CYCLE, normalise_event_counts


class TestNormalisation:
    def test_events_at_peak_rate_give_activity_one(self):
        events = {"Icache": 1000.0}  # peak 1.0/cycle over 1000 cycles
        acts = normalise_event_counts(events, 1000)
        assert acts["Icache"] == pytest.approx(1.0)

    def test_clamped_at_one(self):
        acts = normalise_event_counts({"Icache": 5000.0}, 1000)
        assert acts["Icache"] == 1.0

    def test_missing_blocks_report_zero(self):
        acts = normalise_event_counts({}, 1000)
        assert acts["FPMul"] == 0.0

    def test_l2_banks_share_traffic(self):
        acts = normalise_event_counts({"L2": 250.0}, 1000)
        assert acts["L2"] == acts["L2_left"] == acts["L2_right"]
        assert acts["L2"] == pytest.approx(0.5)

    def test_covers_every_floorplan_block(self, floorplan):
        acts = normalise_event_counts({}, 100)
        assert set(acts) == set(floorplan.block_names)
        assert set(PEAK_EVENTS_PER_CYCLE) == set(floorplan.block_names)

    def test_rejects_zero_cycles(self):
        with pytest.raises(WorkloadError):
            normalise_event_counts({}, 0)


class TestActivityModel:
    @pytest.fixture(scope="class")
    def model(self):
        base = {
            "Icache": 0.6, "IntReg": 0.8, "IntExec": 0.7, "L2": 0.2,
        }
        return ActivityModel(base, speculation_waste=0.25)

    def test_nominal_rates_reproduce_base(self, model):
        acts = model.activities(1.0, 1.0)
        assert acts == pytest.approx(model.base_activities)

    def test_fetch_gating_cuts_frontend_first(self, model):
        acts = model.activities(0.67, 1.0)
        base = model.base_activities
        # Front-end scales with fetch; back-end only loses wrong-path
        # work; commit-tied blocks are untouched.
        assert acts["Icache"] == pytest.approx(base["Icache"] * 0.67)
        assert acts["L2"] == pytest.approx(base["L2"])
        assert base["IntReg"] * 0.9 < acts["IntReg"] < base["IntReg"]

    def test_speculation_waste_formula(self, model):
        acts = model.activities(0.5, 1.0)
        expected_issue_factor = (1.0 + 0.25 * 0.5) / 1.25
        assert acts["IntReg"] == pytest.approx(0.8 * expected_issue_factor)

    def test_commit_rate_scales_backend(self, model):
        acts = model.activities(1.0, 0.5)
        expected_issue_factor = (0.5 + 0.25) / 1.25
        assert acts["IntExec"] == pytest.approx(0.7 * expected_issue_factor)
        assert acts["L2"] == pytest.approx(0.2 * 0.5)

    def test_zero_rates_zero_everything(self, model):
        acts = model.activities(0.0, 0.0)
        assert all(v == 0.0 for v in acts.values())

    def test_rejects_negative_rates(self, model):
        with pytest.raises(WorkloadError):
            model.activities(-0.1, 1.0)

    def test_rejects_bad_base_activity(self):
        with pytest.raises(WorkloadError):
            ActivityModel({"IntReg": 1.5}, 0.2)

    def test_rejects_negative_waste(self):
        with pytest.raises(WorkloadError):
            ActivityModel({"IntReg": 0.5}, -0.1)


@given(
    fetch=st.floats(0.0, 1.0),
    commit=st.floats(0.0, 1.0),
    waste=st.floats(0.0, 0.5),
)
def test_property_activities_stay_in_unit_interval(fetch, commit, waste):
    model = ActivityModel({"Icache": 0.9, "IntReg": 0.95, "L2": 0.4}, waste)
    acts = model.activities(fetch, commit)
    for value in acts.values():
        assert 0.0 <= value <= 1.0
