"""Process technology parameters.

The paper scales the Alpha 21264 power data to a 0.13 um process at
Vdd = 1.3 V and 3 GHz; these are the corresponding technology constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerModelError
from repro.units import GHZ


@dataclass(frozen=True)
class Technology:
    """A CMOS process corner for the power and V/f models.

    Parameters
    ----------
    node_nm:
        Feature size in nanometres (informational).
    vdd_nominal:
        Nominal supply voltage in volts.
    vth:
        Threshold voltage in volts, used by the alpha-power delay law.
    frequency_nominal:
        Clock frequency at nominal voltage, in hertz.
    alpha:
        Velocity-saturation exponent of the alpha-power law (about 1.3 for
        a 130 nm process).
    """

    node_nm: float = 130.0
    vdd_nominal: float = 1.3
    vth: float = 0.35
    frequency_nominal: float = 3.0 * GHZ
    alpha: float = 1.3

    def __post_init__(self) -> None:
        if self.vdd_nominal <= 0.0:
            raise PowerModelError("nominal Vdd must be > 0")
        if not 0.0 < self.vth < self.vdd_nominal:
            raise PowerModelError("Vth must lie strictly between 0 and nominal Vdd")
        if self.frequency_nominal <= 0.0:
            raise PowerModelError("nominal frequency must be > 0")
        if self.alpha < 1.0:
            raise PowerModelError("alpha-power exponent must be >= 1")

    def relative_voltage(self, voltage: float) -> float:
        """``voltage / vdd_nominal`` with range checking."""
        if voltage <= self.vth:
            raise PowerModelError(
                f"voltage {voltage} V is at or below Vth = {self.vth} V"
            )
        if voltage > self.vdd_nominal * (1.0 + 1e-9):
            raise PowerModelError(
                f"voltage {voltage} V exceeds nominal {self.vdd_nominal} V"
            )
        return voltage / self.vdd_nominal


def default_technology() -> Technology:
    """The paper's 130 nm / 1.3 V / 3 GHz operating point."""
    return Technology()
