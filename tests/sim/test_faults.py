"""Deterministic fault-injection plans."""

import time

import pytest

from repro.errors import InjectedFaultError, SimulationError
from repro.sensors.faults import SensorFault
from repro.sim.faults import (
    CORRUPT_INF,
    CORRUPT_NAN,
    FaultPlan,
    fire_prerun_faults,
    in_worker_process,
)


class TestFaultPlan:
    def test_defaults_are_harmless(self):
        plan = FaultPlan()
        assert not plan.has_transient_faults
        assert plan.targets(0) and plan.targets(123)

    def test_empty_seeds_target_every_run(self):
        plan = FaultPlan(crash_worker=True)
        assert plan.targets(0) and plan.targets(7)

    def test_seed_targeting(self):
        plan = FaultPlan(seeds=(2, 5), crash_worker=True)
        assert plan.targets(2) and plan.targets(5)
        assert not plan.targets(0) and not plan.targets(3)

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            FaultPlan(delay_s=-0.1)

    def test_rejects_unknown_corruption(self):
        with pytest.raises(SimulationError):
            FaultPlan(corruption="zero")

    def test_rejects_negative_corruption_step(self):
        with pytest.raises(SimulationError):
            FaultPlan(corrupt_power_at_step=-1)

    def test_poison_values(self):
        import math

        assert math.isnan(FaultPlan(corruption=CORRUPT_NAN).poison)
        assert math.isinf(FaultPlan(corruption=CORRUPT_INF).poison)

    def test_transient_detection(self):
        assert FaultPlan(crash_worker=True).has_transient_faults
        assert FaultPlan(delay_s=0.5).has_transient_faults
        assert FaultPlan(corrupt_power_at_step=3).has_transient_faults
        sensor_only = FaultPlan(
            sensor_faults=(SensorFault.dropout("IntReg"),)
        )
        assert not sensor_only.has_transient_faults

    def test_transient_cleared_drops_pure_harness_plans(self):
        plan = FaultPlan(crash_worker=True, corrupt_power_at_step=1)
        assert plan.transient_cleared() is None

    def test_transient_cleared_keeps_sensor_faults(self):
        fault = SensorFault.stuck("IntReg", 40.0)
        plan = FaultPlan(
            seeds=(3,), crash_worker=True, sensor_faults=(fault,)
        )
        cleared = plan.transient_cleared()
        assert cleared is not None
        assert not cleared.has_transient_faults
        assert cleared.sensor_faults == (fault,)
        assert cleared.seeds == (3,)  # targeting survives


class TestFirePrerunFaults:
    def test_none_plan_is_noop(self):
        fire_prerun_faults(None, 0)

    def test_untargeted_seed_is_noop(self):
        fire_prerun_faults(FaultPlan(seeds=(9,), crash_worker=True), 0)

    def test_crash_raises_serially(self):
        # The test process is not a pool worker, so the crash fault must
        # raise instead of killing the interpreter.
        assert not in_worker_process()
        with pytest.raises(InjectedFaultError):
            fire_prerun_faults(FaultPlan(crash_worker=True), 0)

    def test_delay_sleeps(self):
        start = time.monotonic()
        fire_prerun_faults(FaultPlan(delay_s=0.05), 0)
        assert time.monotonic() - start >= 0.04
