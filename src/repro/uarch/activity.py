"""Per-block switching-activity accounting.

Two consumers:

* the detailed core reports raw event counts, which
  :func:`normalise_event_counts` converts to [0, 1] activities using the
  per-block peak event rates below;
* the interval engine computes activities analytically from a phase's base
  activity vector and the current DTM actuation, via :class:`ActivityModel`.

The interval model distinguishes three per-cycle rate factors that DTM
techniques move independently:

* ``F`` -- the front-end (fetch/rename) rate, reduced directly by fetch
  gating;
* ``C`` -- the commit rate (per-cycle IPC relative to nominal), reduced
  when gating exhausts ILP or when frequency scaling changes the
  cycles-per-instruction balance;
* ``I`` -- the issue rate, a blend of committed work and speculative
  wrong-path work: ``I = (C + w F) / (1 + w)`` where ``w`` is the phase's
  speculation-waste factor.  Mild fetch gating trims wrong-path issue
  without touching commit rate -- that is where "free" cooling comes from.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import WorkloadError

PEAK_EVENTS_PER_CYCLE: Mapping[str, float] = {
    "Icache": 1.0,
    "Bpred": 1.6,
    "ITB": 1.0,
    "IntMap": 4.0,
    "FPMap": 2.0,
    "IntQ": 4.0,
    "FPQ": 2.0,
    "IntReg": 12.0,
    "FPReg": 6.0,
    "IntExec": 4.0,
    "FPAdd": 1.0,
    "FPMul": 1.0,
    "LdStQ": 4.0,
    "Dcache": 2.0,
    "DTB": 2.0,
    "L2": 0.5,
    "L2_left": 0.5,
    "L2_right": 0.5,
}
"""Event rate (events/cycle) that corresponds to activity = 1.0."""

_RATE_CLASS: Mapping[str, str] = {
    # Which of the three rate factors drives each block.
    "Icache": "F",
    "Bpred": "F",
    "ITB": "F",
    "IntMap": "F",
    "FPMap": "F",
    "IntQ": "I",
    "FPQ": "I",
    "IntReg": "I",
    "FPReg": "I",
    "IntExec": "I",
    "FPAdd": "I",
    "FPMul": "I",
    "LdStQ": "I",
    "Dcache": "I",
    "DTB": "I",
    "L2": "C",
    "L2_left": "C",
    "L2_right": "C",
}


def normalise_event_counts(
    events: Mapping[str, float], cycles: int
) -> Dict[str, float]:
    """Convert raw event counts over ``cycles`` to [0, 1] activities.

    Blocks with no events (e.g. FP units in an integer run) report 0.0;
    the L2 banks share the L2 traffic.
    """
    if cycles <= 0:
        raise WorkloadError("cycles must be > 0")
    activities: Dict[str, float] = {}
    l2_rate = events.get("L2", 0.0) / cycles
    for block, peak in PEAK_EVENTS_PER_CYCLE.items():
        if block in ("L2", "L2_left", "L2_right"):
            rate = l2_rate
        else:
            rate = events.get(block, 0.0) / cycles
        activities[block] = min(1.0, rate / peak)
    return activities


class ActivityModel:
    """Scales a phase's base activity vector by the current DTM actuation.

    Parameters
    ----------
    base_activities:
        Per-block activity in [0, 1] at nominal operation (no DTM), as
        calibrated for the workload phase.
    speculation_waste:
        Wrong-path issue work as a fraction of useful work at nominal
        operation (``w`` in the module docstring).
    """

    def __init__(
        self, base_activities: Mapping[str, float], speculation_waste: float
    ):
        for block, value in base_activities.items():
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(
                    f"base activity for {block!r} is {value}, outside [0, 1]"
                )
        if speculation_waste < 0.0:
            raise WorkloadError("speculation waste must be >= 0")
        self._base = dict(base_activities)
        self._waste = speculation_waste
        # (fetch_rate_rel, commit_rate_rel) -> activity dict.  The interval
        # engine calls with the same handful of rate pairs for thousands of
        # consecutive thermal steps, so memoising removes a per-block
        # Python loop from the simulation hot path.
        self._cache: Dict[tuple, Dict[str, float]] = {}

    @property
    def base_activities(self) -> Dict[str, float]:
        """The nominal activity vector (copy)."""
        return dict(self._base)

    @property
    def speculation_waste(self) -> float:
        """Wrong-path work fraction at nominal operation."""
        return self._waste

    def activities(
        self, fetch_rate_rel: float, commit_rate_rel: float
    ) -> Dict[str, float]:
        """Per-block activities for the given relative rates.

        Parameters
        ----------
        fetch_rate_rel:
            Front-end rate relative to nominal (``1 - gating_fraction``
            under fetch gating).
        commit_rate_rel:
            Per-cycle IPC relative to the phase's nominal IPC.

        Returns
        -------
        Dict[str, float]
            Per-block activities.  The mapping is cached and shared
            between calls with the same rates -- treat it as read-only.
        """
        key = (fetch_rate_rel, commit_rate_rel)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if fetch_rate_rel < 0.0 or commit_rate_rel < 0.0:
            raise WorkloadError("relative rates must be >= 0")
        factor_f = fetch_rate_rel
        factor_c = commit_rate_rel
        factor_i = (commit_rate_rel + self._waste * fetch_rate_rel) / (
            1.0 + self._waste
        )
        factors = {"F": factor_f, "I": factor_i, "C": factor_c}
        result: Dict[str, float] = {}
        for block, base in self._base.items():
            rate_class = _RATE_CLASS.get(block, "C")
            result[block] = min(1.0, base * factors[rate_class])
        if len(self._cache) >= 1024:
            self._cache.clear()
        self._cache[key] = result
        return result
