"""The nine hottest SPEC CPU2000 benchmarks, as synthetic stand-ins.

Each benchmark is described by per-phase intensity knobs calibrated so that

* the integer register file is the hottest block for every benchmark (as
  the paper reports),
* every benchmark sits above the 81.8 C trigger most of the time under the
  paper's low-cost package, with a spread of severities from mild thermal
  stress (mesa, eon) to severe (art, crafty, gcc), and
* IPC, memory-boundedness and branchiness follow the published character
  of each program (gzip/bzip2/crafty: high-ILP integer; gcc: irregular,
  bigger code footprint; vortex: pointer-chasing memory traffic; art:
  memory-bound floating point; mesa/eon: well-behaved mixed code).

The numbers are calibration targets, not measurements of the real
binaries; EXPERIMENTS.md records how the resulting thermal behaviour
compares with the paper's.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.uarch.isa import OpClass
from repro.uarch.trace import TraceParameters
from repro.workloads.phases import Phase
from repro.workloads.profiles import make_activity_profile
from repro.workloads.workload import Workload

SPEC_BENCHMARK_NAMES = (
    "mesa",
    "perlbmk",
    "gzip",
    "bzip2",
    "eon",
    "crafty",
    "vortex",
    "gcc",
    "art",
)
"""The paper's benchmark set, hottest-first ordering not implied."""

# Per-phase tuple:
# (name, M instructions, ipc, mem_cpi_frac, fetch_supply, waste,
#  int, fp, mem, frontend, l2)
_PhaseSpec = Tuple[str, float, float, float, float, float,
                   float, float, float, float, float]

_BENCHMARKS: Dict[str, Dict] = {
    "mesa": {
        "description": "OpenGL software rasteriser: mixed int/FP, mild heat",
        "activity_scale": 0.803,
        "phases": [
            ("geometry", 3.0, 2.0, 0.12, 3.1, 0.14, 0.72, 0.45, 0.50, 0.62, 0.18),
            ("raster", 4.0, 2.1, 0.10, 3.26, 0.12, 0.78, 0.38, 0.55, 0.66, 0.15),
            ("texture", 2.0, 1.8, 0.18, 3.0, 0.14, 0.68, 0.42, 0.60, 0.58, 0.25),
        ],
        "trace": {"working_set_kib": 96, "sequential": 0.75, "dep_mean": 9.0,
                  "predictability": 0.95, "code_kib": 40, "fp_weight": 0.20},
    },
    "perlbmk": {
        "description": "Perl interpreter: branchy integer code",
        "activity_scale": 0.819,
        "phases": [
            ("interp", 3.5, 1.8, 0.15, 2.9, 0.30, 0.76, 0.04, 0.55, 0.70, 0.20),
            ("regex", 2.5, 2.0, 0.10, 3.1, 0.26, 0.82, 0.03, 0.50, 0.74, 0.15),
            ("gc", 1.5, 1.5, 0.25, 2.8, 0.24, 0.66, 0.03, 0.62, 0.60, 0.30),
        ],
        "trace": {"working_set_kib": 128, "sequential": 0.65, "dep_mean": 7.0,
                  "predictability": 0.90, "code_kib": 56, "fp_weight": 0.02},
    },
    "gzip": {
        "description": "LZ77 compression: high-ILP integer streaming",
        "activity_scale": 0.77,
        "phases": [
            ("deflate", 4.0, 2.1, 0.14, 3.26, 0.20, 0.88, 0.02, 0.62, 0.72, 0.22),
            ("huffman", 2.5, 2.3, 0.08, 3.56, 0.18, 0.92, 0.02, 0.52, 0.76, 0.14),
            ("window", 2.0, 1.8, 0.22, 3.0, 0.20, 0.80, 0.02, 0.68, 0.66, 0.30),
        ],
        "trace": {"working_set_kib": 160, "sequential": 0.80, "dep_mean": 9.0,
                  "predictability": 0.93, "code_kib": 32, "fp_weight": 0.01},
    },
    "bzip2": {
        "description": "Burrows-Wheeler compression: integer, sort-heavy",
        "activity_scale": 0.774,
        "phases": [
            ("sort", 3.5, 1.9, 0.18, 3.0, 0.22, 0.84, 0.02, 0.66, 0.68, 0.26),
            ("mtf", 3.0, 2.2, 0.10, 3.41, 0.18, 0.90, 0.02, 0.55, 0.74, 0.18),
            ("entropy", 2.0, 2.0, 0.12, 3.1, 0.20, 0.84, 0.02, 0.50, 0.70, 0.16),
        ],
        "trace": {"working_set_kib": 192, "sequential": 0.72, "dep_mean": 8.0,
                  "predictability": 0.92, "code_kib": 36, "fp_weight": 0.01},
    },
    "eon": {
        "description": "Probabilistic ray tracer: mixed int/FP, mild heat",
        "activity_scale": 0.816,
        "phases": [
            ("trace", 3.0, 2.0, 0.10, 3.1, 0.18, 0.72, 0.48, 0.50, 0.64, 0.16),
            ("shade", 3.0, 2.1, 0.08, 3.26, 0.16, 0.76, 0.52, 0.46, 0.66, 0.12),
        ],
        "trace": {"working_set_kib": 80, "sequential": 0.75, "dep_mean": 9.0,
                  "predictability": 0.94, "code_kib": 48, "fp_weight": 0.25},
    },
    "crafty": {
        "description": "Chess engine: severe integer heat, heavy ILP",
        "activity_scale": 0.816,
        "phases": [
            ("search", 4.5, 2.2, 0.06, 3.41, 0.40, 0.96, 0.02, 0.52, 0.80, 0.12),
            ("evaluate", 3.0, 2.3, 0.05, 3.56, 0.36, 0.98, 0.02, 0.48, 0.82, 0.10),
            ("hash", 1.5, 1.9, 0.15, 3.0, 0.36, 0.88, 0.02, 0.60, 0.72, 0.22),
        ],
        "trace": {"working_set_kib": 64, "sequential": 0.70, "dep_mean": 10.0,
                  "predictability": 0.91, "code_kib": 44, "fp_weight": 0.01},
    },
    "vortex": {
        "description": "Object database: pointer-chasing integer",
        "activity_scale": 0.747,
        "phases": [
            ("lookup", 3.0, 1.6, 0.28, 2.9, 0.22, 0.80, 0.02, 0.72, 0.66, 0.36),
            ("insert", 2.5, 1.7, 0.24, 3.0, 0.22, 0.84, 0.02, 0.68, 0.70, 0.32),
            ("validate", 2.0, 1.9, 0.16, 3.1, 0.20, 0.86, 0.02, 0.58, 0.72, 0.24),
        ],
        "trace": {"working_set_kib": 256, "sequential": 0.60, "dep_mean": 7.0,
                  "predictability": 0.92, "code_kib": 64, "fp_weight": 0.01},
    },
    "gcc": {
        "description": "Compiler: irregular integer, severe heat bursts",
        "activity_scale": 0.79,
        "phases": [
            ("parse", 2.5, 1.6, 0.20, 2.8, 0.30, 0.84, 0.02, 0.62, 0.74, 0.28),
            ("optimise", 3.5, 1.9, 0.12, 3.0, 0.28, 0.94, 0.02, 0.56, 0.80, 0.20),
            ("regalloc", 2.0, 2.0, 0.10, 3.1, 0.26, 0.96, 0.02, 0.52, 0.80, 0.16),
            ("emit", 1.5, 1.5, 0.24, 2.8, 0.24, 0.78, 0.02, 0.66, 0.68, 0.30),
        ],
        "trace": {"working_set_kib": 224, "sequential": 0.62, "dep_mean": 7.0,
                  "predictability": 0.88, "code_kib": 96, "fp_weight": 0.01},
    },
    "art": {
        "description": "Neural-network image recognition: memory-bound FP, "
                       "least responsive to fetch gating",
        "activity_scale": 0.69,
        "phases": [
            ("f1_scan", 3.0, 1.1, 0.45, 2.8, 0.10, 0.86, 0.58, 0.78, 0.62, 0.55),
            ("match", 4.0, 1.3, 0.38, 2.9, 0.10, 0.92, 0.62, 0.74, 0.66, 0.48),
            ("adapt", 2.0, 1.0, 0.50, 2.8, 0.10, 0.82, 0.55, 0.80, 0.58, 0.60),
        ],
        "trace": {"working_set_kib": 512, "sequential": 0.85, "dep_mean": 11.0,
                  "predictability": 0.97, "code_kib": 24, "fp_weight": 0.30},
    },
}


def _trace_parameters(trace: Dict, mem_intensity: float) -> TraceParameters:
    """Build the detailed-core trace statistics for one phase."""
    fp_weight = trace["fp_weight"]
    load_weight = 0.16 + 0.16 * mem_intensity
    store_weight = 0.08 + 0.08 * mem_intensity
    branch_weight = 0.15
    alu_weight = max(
        0.05, 1.0 - fp_weight - load_weight - store_weight - branch_weight - 0.02
    )
    return TraceParameters(
        op_mix={
            OpClass.IALU: alu_weight,
            OpClass.IMUL: 0.02,
            OpClass.FADD: fp_weight * 0.6,
            OpClass.FMUL: fp_weight * 0.4,
            OpClass.LOAD: load_weight,
            OpClass.STORE: store_weight,
            OpClass.BRANCH: branch_weight,
        },
        dep_distance_mean=trace["dep_mean"],
        working_set_bytes=trace["working_set_kib"] * 1024,
        sequential_fraction=trace["sequential"],
        code_footprint_bytes=trace["code_kib"] * 1024,
        branch_predictability=trace["predictability"],
    )


def build_benchmark(name: str) -> Workload:
    """Build one of the nine benchmarks by name."""
    try:
        spec = _BENCHMARKS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; choose from {SPEC_BENCHMARK_NAMES}"
        ) from None
    # Calibration scale: chosen (see DESIGN.md, calibration targets) so the
    # benchmark's no-DTM steady-state hotspot lands at its target severity
    # under the paper's low-cost package.
    scale = spec["activity_scale"]
    phases: List[Phase] = []
    for (phase_name, mega_instr, ipc, mem_frac, supply, waste,
         int_i, fp_i, mem_i, fe_i, l2_i) in spec["phases"]:
        phases.append(
            Phase(
                name=phase_name,
                instructions=int(mega_instr * 1e6),
                base_ipc=ipc,
                memory_cpi_fraction=mem_frac,
                fetch_supply_ipc=supply,
                speculation_waste=waste,
                base_activities=make_activity_profile(
                    scale * int_i, scale * fp_i, scale * mem_i,
                    scale * fe_i, scale * l2_i,
                ),
                trace_parameters=_trace_parameters(spec["trace"], mem_i),
            )
        )
    return Workload(name=name, phases=phases, description=spec["description"])


def build_spec_suite(names: Sequence[str] = SPEC_BENCHMARK_NAMES) -> List[Workload]:
    """Build the full nine-benchmark suite (or a subset)."""
    return [build_benchmark(name) for name in names]
