"""Experiment runners, one per figure/table of the paper's evaluation.

Every function takes the instruction budget (and where relevant the DVS
mode) so the same code serves quick tests and the full benchmark harness.
All return plain data structures; the benchmarks render them with
:func:`repro.analysis.tables.render_table`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.core.crossover import (
    PAPER_DUTY_CYCLES,
    CrossoverResult,
    sweep_duty_cycles,
)
from repro.core.evaluation import (
    DEFAULT_INSTRUCTIONS,
    SuiteEvaluation,
    evaluate_policy,
    evaluate_techniques,
    run_baselines,
)
from repro.dtm.dvs import CONTINUOUS_LEVEL_COUNT, DvsConfig, DvsPolicy
from repro.dtm.fetch_gating import (
    FixedFetchGatingPolicy,
    duty_cycle_to_gating_fraction,
)
from repro.errors import ReproError


# --- Figure 3a -----------------------------------------------------------------

def fig3a_pihyb_duty_sweep(
    dvs_mode: str = "stall",
    duty_cycles: Sequence[float] = PAPER_DUTY_CYCLES,
    instructions: int = DEFAULT_INSTRUCTIONS,
    processes: Optional[int] = None,
    lockstep: bool = False,
) -> CrossoverResult:
    """PI-Hyb slowdown as a function of the maximum fetch-gating duty
    cycle (Figure 3a)."""
    baselines = run_baselines(
        instructions=instructions, processes=processes, lockstep=lockstep
    )
    return sweep_duty_cycles(
        duty_cycles=duty_cycles,
        dvs_mode=dvs_mode,
        baselines=baselines,
        processes=processes,
    )


# --- Figure 3b -----------------------------------------------------------------

@dataclass
class Fig3bResult:
    """Stand-alone fetch gating versus the binary DVS reference line."""

    fg_mean_slowdowns: Dict[float, float]
    fg_violations: Dict[float, int]
    dvs_mean_slowdown: float
    dvs_violations: int


def fig3b_fg_vs_dvs(
    duty_cycles: Sequence[float] = PAPER_DUTY_CYCLES,
    dvs_mode: str = "stall",
    instructions: int = DEFAULT_INSTRUCTIONS,
    processes: Optional[int] = None,
    lockstep: bool = False,
) -> Fig3bResult:
    """Fixed-duty stand-alone FG sweep with the DVS overhead superimposed
    (Figure 3b).

    Most duty cycles do not eliminate violations -- the violation counts
    are part of the result, as in the paper's discussion.

    ``lockstep`` selects the batched lockstep runner for the baselines
    and (via inheritance from the baselines object) every evaluation.
    """
    baselines = run_baselines(
        instructions=instructions, processes=processes, lockstep=lockstep
    )
    fg_means: Dict[float, float] = {}
    fg_violations: Dict[float, int] = {}
    for duty in duty_cycles:
        fraction = duty_cycle_to_gating_fraction(duty)
        evaluation = evaluate_policy(
            partial(FixedFetchGatingPolicy, fraction),
            baselines,
            dvs_mode=dvs_mode,
        )
        fg_means[duty] = evaluation.mean_slowdown
        fg_violations[duty] = evaluation.total_violations
    dvs = evaluate_policy(partial(DvsPolicy), baselines, dvs_mode=dvs_mode)
    return Fig3bResult(
        fg_mean_slowdowns=fg_means,
        fg_violations=fg_violations,
        dvs_mean_slowdown=dvs.mean_slowdown,
        dvs_violations=dvs.total_violations,
    )


# --- Figure 4 ------------------------------------------------------------------

def fig4_technique_comparison(
    dvs_mode: str = "stall",
    instructions: int = DEFAULT_INSTRUCTIONS,
    processes: Optional[int] = None,
    lockstep: bool = False,
) -> Dict[str, SuiteEvaluation]:
    """FG / DVS / PI-Hyb / Hyb across the suite (Figure 4a or 4b by
    ``dvs_mode``)."""
    return evaluate_techniques(
        dvs_mode=dvs_mode,
        instructions=instructions,
        processes=processes,
        lockstep=lockstep,
    )


# --- In-text table T1: DVS step-count sensitivity --------------------------------

def t1_dvs_step_sensitivity(
    step_counts: Sequence[int] = (2, 3, 5, 10, CONTINUOUS_LEVEL_COUNT),
    dvs_modes: Sequence[str] = ("stall", "ideal"),
    instructions: int = DEFAULT_INSTRUCTIONS,
    processes: Optional[int] = None,
    lockstep: bool = False,
) -> Dict[str, Dict[int, float]]:
    """Mean slowdown of DVS per level count and mode.

    The paper finds the level count barely matters: below 0.4 % spread for
    DVS-stall and below 0.01 % for DVS-ideal.
    """
    baselines = run_baselines(
        instructions=instructions, processes=processes, lockstep=lockstep
    )
    results: Dict[str, Dict[int, float]] = {}
    for mode in dvs_modes:
        per_mode: Dict[int, float] = {}
        for count in step_counts:
            config = DvsConfig(level_count=count)
            evaluation = evaluate_policy(
                partial(DvsPolicy, config),
                baselines,
                dvs_mode=mode,
            )
            per_mode[count] = evaluation.mean_slowdown
        results[mode] = per_mode
    return results


# --- In-text table T2: lowest safe voltage ---------------------------------------

@dataclass
class VoltageFloorResult:
    """Violations and slowdown per candidate low-voltage setting."""

    violations: Dict[float, int]
    mean_slowdowns: Dict[float, float]

    @property
    def largest_safe_ratio(self) -> Optional[float]:
        """The largest v_low/v_nominal that eliminates all violations."""
        safe = [ratio for ratio, count in self.violations.items() if count == 0]
        return max(safe) if safe else None


def t2_voltage_floor(
    ratios: Sequence[float] = (0.80, 0.825, 0.85, 0.875, 0.90, 0.925),
    dvs_mode: str = "stall",
    instructions: int = DEFAULT_INSTRUCTIONS,
    processes: Optional[int] = None,
    lockstep: bool = False,
) -> VoltageFloorResult:
    """Binary-DVS low-voltage sweep: the paper reports 85 % of nominal as
    the largest setting that eliminates thermal violations."""
    if not ratios:
        raise ReproError("need at least one voltage ratio")
    baselines = run_baselines(
        instructions=instructions, processes=processes, lockstep=lockstep
    )
    violations: Dict[float, int] = {}
    slowdowns: Dict[float, float] = {}
    for ratio in ratios:
        config = DvsConfig(v_low_ratio=ratio)
        evaluation = evaluate_policy(
            partial(DvsPolicy, config),
            baselines,
            dvs_mode=dvs_mode,
        )
        violations[ratio] = evaluation.total_violations
        slowdowns[ratio] = evaluation.mean_slowdown
    return VoltageFloorResult(violations=violations, mean_slowdowns=slowdowns)


# --- In-text table T4: benchmark characterisation --------------------------------

@dataclass
class BenchmarkCharacter:
    """Unmanaged thermal character of one benchmark."""

    benchmark: str
    hottest_block: str
    max_temp_c: float
    fraction_above_trigger: float
    mean_power_w: float
    mean_ipc: float


def t4_benchmark_characterisation(
    instructions: int = DEFAULT_INSTRUCTIONS,
    processes: Optional[int] = None,
    lockstep: bool = False,
) -> List[BenchmarkCharacter]:
    """No-DTM thermal characterisation of the nine benchmarks (paper,
    Section 3: all operate above the trigger most of the time, integer
    register file hottest)."""
    baselines = run_baselines(
        instructions=instructions, processes=processes, lockstep=lockstep
    )
    rows: List[BenchmarkCharacter] = []
    for workload in baselines.suite:
        run = baselines.baseline[workload.name]
        rows.append(
            BenchmarkCharacter(
                benchmark=workload.name,
                hottest_block=run.hottest_block,
                max_temp_c=run.max_true_temp_c,
                fraction_above_trigger=run.fraction_above_trigger,
                mean_power_w=run.mean_power_w,
                mean_ipc=workload.mean_ipc,
            )
        )
    return rows
