"""The batch sweep runner."""

import warnings
from functools import partial

import pytest

from repro.dtm import FetchGatingPolicy
from repro.errors import SimulationError
from repro.sim import EngineConfig, RunSpec, run_many, run_one
from repro.sim.batch import (
    _WARMUP_CACHE,
    reset_stats,
    stats,
    steady_state_for,
)
from repro.workloads import build_benchmark

FAST_N = 1_500_000

RESULT_FIELDS = (
    "benchmark",
    "policy",
    "instructions",
    "elapsed_s",
    "cycles",
    "violations",
    "max_true_temp_c",
    "hottest_block",
    "time_above_trigger_s",
    "dvs_switches",
    "stall_time_s",
    "mean_power_w",
)


def _specs():
    return [
        RunSpec(
            workload=name,
            policy=policy,
            instructions=FAST_N,
            settle_time_s=1.0e-4,
            seed=seed,
        )
        for seed, (name, policy) in enumerate(
            [
                ("gzip", "none"),
                ("gcc", "FG"),
                ("mesa", "DVS"),
                ("gzip", partial(FetchGatingPolicy)),
            ]
        )
    ]


def _as_tuples(results):
    return [
        tuple(getattr(r, field) for field in RESULT_FIELDS) for r in results
    ]


class TestLockstepDefault:
    """Resolution of run_many's lockstep execution mode."""

    def _clean(self, n=2):
        return [
            RunSpec(
                workload="gzip",
                policy="FG",
                instructions=FAST_N,
                seed=s,
            )
            for s in range(n)
        ]

    def test_auto_on_for_homogeneous_multi_run_sweeps(self):
        from repro.sim.batch import _resolve_lockstep

        assert _resolve_lockstep(self._clean(2), None) is True

    def test_auto_off_for_single_run(self):
        from repro.sim.batch import _resolve_lockstep

        assert _resolve_lockstep(self._clean(1), None) is False

    def test_auto_off_for_specs_needing_per_run_supervision(self):
        from repro.sim.faults import FaultPlan
        from repro.sim.batch import _resolve_lockstep

        faulty = self._clean(1) + [
            RunSpec(
                workload="gzip",
                policy="FG",
                instructions=FAST_N,
                seed=9,
                engine_config=EngineConfig(
                    fault_plan=FaultPlan(crash_worker=True)
                ),
            )
        ]
        assert _resolve_lockstep(faulty, None) is False
        guarded = self._clean(1) + [
            RunSpec(
                workload="gzip",
                policy="FG",
                instructions=FAST_N,
                seed=9,
                engine_config=EngineConfig(raise_on_violation=True),
            )
        ]
        assert _resolve_lockstep(guarded, None) is False
        traced = self._clean(1) + [
            RunSpec(
                workload="gzip",
                policy="FG",
                instructions=FAST_N,
                seed=9,
                engine_config=EngineConfig(record_trace=True),
            )
        ]
        assert _resolve_lockstep(traced, None) is False
        heterogeneous = self._clean(1) + [object()]
        assert _resolve_lockstep(heterogeneous, None) is False

    def test_env_override(self, monkeypatch):
        from repro.sim.batch import SWEEP_LOCKSTEP_ENV, _resolve_lockstep

        monkeypatch.setenv(SWEEP_LOCKSTEP_ENV, "off")
        assert _resolve_lockstep(self._clean(2), None) is False
        monkeypatch.setenv(SWEEP_LOCKSTEP_ENV, "1")
        assert _resolve_lockstep(self._clean(1), None) is True
        monkeypatch.setenv(SWEEP_LOCKSTEP_ENV, "sideways")
        with pytest.raises(SimulationError, match="REPRO_SWEEP_LOCKSTEP"):
            _resolve_lockstep(self._clean(2), None)

    def test_explicit_argument_beats_env(self, monkeypatch):
        from repro.sim.batch import SWEEP_LOCKSTEP_ENV, _resolve_lockstep

        monkeypatch.setenv(SWEEP_LOCKSTEP_ENV, "on")
        assert _resolve_lockstep(self._clean(2), False) is False
        monkeypatch.setenv(SWEEP_LOCKSTEP_ENV, "off")
        assert _resolve_lockstep(self._clean(2), True) is True


class TestRunMany:
    # These tests pin the per-run scheduling invariance of the classic
    # serial/pool paths, so they opt out of the lockstep sweep default
    # (lockstep matches per-run only to BLAS summation order, and its
    # grouping varies with chunking).
    def test_parallel_matches_serial_exactly(self):
        serial = run_many(_specs(), processes=1, lockstep=False)
        parallel = run_many(_specs(), processes=4, lockstep=False)
        assert _as_tuples(serial) == _as_tuples(parallel)

    def test_results_preserve_spec_order(self):
        results = run_many(_specs(), processes=4)
        assert [r.benchmark for r in results] == ["gzip", "gcc", "mesa", "gzip"]
        assert [r.policy for r in results] == ["none", "FG", "DVS", "FG"]

    def test_deterministic_across_repeats(self):
        first = run_many(_specs(), processes=2, lockstep=False)
        second = run_many(_specs(), processes=3, lockstep=False)
        assert _as_tuples(first) == _as_tuples(second)

    def test_empty_batch(self):
        assert run_many([], processes=4) == []

    def test_unpicklable_policy_falls_back_to_serial(self):
        spec = RunSpec(
            workload="gzip",
            policy=lambda: FetchGatingPolicy(),
            instructions=FAST_N,
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = run_many([spec], processes=2)
        assert any("picklable" in str(w.message) for w in caught)
        assert results[0].policy == "FG"

    def test_stats_accumulate(self):
        reset_stats()
        results = run_many(_specs()[:2], processes=1)
        snapshot = stats()
        assert snapshot.runs == 2
        expected_steps = sum(
            r.cycles / EngineConfig().thermal_step_cycles for r in results
        )
        assert snapshot.thermal_steps == pytest.approx(expected_steps)
        assert snapshot.wall_s > 0.0
        assert snapshot.steps_per_second > 0.0


class TestRunSpec:
    def test_rejects_bad_budget(self):
        with pytest.raises(SimulationError):
            RunSpec(workload="gzip", instructions=0)

    def test_rejects_negative_settle(self):
        with pytest.raises(SimulationError):
            RunSpec(workload="gzip", settle_time_s=-1.0)

    def test_workload_object_and_name_agree(self):
        workload = build_benchmark("gzip")
        by_name = run_one(
            RunSpec(workload="gzip", policy="none", instructions=FAST_N)
        )
        by_object = run_one(
            RunSpec(workload=workload, policy="none", instructions=FAST_N)
        )
        assert _as_tuples([by_name]) == _as_tuples([by_object])

    def test_dvs_mode_shorthand(self):
        spec = RunSpec(workload="gzip", dvs_mode="ideal")
        assert spec.config.dvs_mode == "ideal"
        explicit = RunSpec(
            workload="gzip",
            dvs_mode="ideal",
            engine_config=EngineConfig(dvs_mode="stall"),
        )
        assert explicit.config.dvs_mode == "stall"


class TestWarmupCache:
    def test_steady_state_cached_per_workload(self):
        _WARMUP_CACHE.clear()
        first = steady_state_for("gzip")
        assert "gzip" in _WARMUP_CACHE
        second = steady_state_for("gzip")
        assert first is not second  # callers get copies
        assert (first == second).all()

    def test_explicit_initial_bypasses_cache(self):
        init = steady_state_for("gzip")
        _WARMUP_CACHE.clear()
        run_one(
            RunSpec(
                workload="gzip",
                policy="none",
                instructions=FAST_N,
                initial=init,
            )
        )
        assert "gzip" not in _WARMUP_CACHE
