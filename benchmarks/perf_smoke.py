"""Throughput regression gate against the committed baseline.

Runs one bench (default ``fig3b``) through the harness and compares its
thermal-step throughput with the same bench's entry in the committed
``BENCH_results.json``.  Exits non-zero when throughput drops more than
``--max-drop`` (default 30 %) below the baseline -- the CI perf-smoke
job runs this on every pull request (skippable with the
``skip-perf-smoke`` label for changes where a throughput delta is
expected and the baseline will be regenerated).

Throughput is per-run steps/second, so it is only weakly sensitive to
the instruction budget; CI uses a reduced budget and the slack in
``--max-drop`` absorbs the residual difference plus runner noise.

With ``--kernel-identity`` the bench is run twice -- once with the
fused step kernel forced on (``REPRO_STEP_KERNEL=numba`` when numba is
importable, else ``numpy``) and once with it ``off`` -- and the two
result tables must be bit-identical; the fused run is the one gated
against the baseline.  When numba is absent the fused leg degrades to
the numpy backend with a printed note rather than failing, so the check
is meaningful on minimal installs too.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py
    PYTHONPATH=src python benchmarks/perf_smoke.py --bench fig4a --max-drop 0.5
    PYTHONPATH=src python benchmarks/perf_smoke.py --kernel-identity
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

sys.path.insert(0, str(Path(__file__).parent))

from run_all import BENCHES, DEFAULT_JSON_PATH, _run_bench


def _table_body(record: dict) -> str:
    """The bench's result table minus its wall-clock throughput line.

    Every bench appends a ``[throughput: ...]`` report to its table;
    that line is timing, not simulation output, so the bit-identity
    check must ignore it.
    """
    return "\n".join(
        line for line in record["table"].splitlines()
        if not line.startswith("[throughput:")
    )


def _run_with_kernel(bench: str, mode: str) -> dict:
    """Run one bench with ``REPRO_STEP_KERNEL`` pinned to ``mode``."""
    from repro.sim.config import STEP_KERNEL_ENV

    previous = os.environ.get(STEP_KERNEL_ENV)
    os.environ[STEP_KERNEL_ENV] = mode
    try:
        return _run_bench(bench)
    finally:
        if previous is None:
            del os.environ[STEP_KERNEL_ENV]
        else:
            os.environ[STEP_KERNEL_ENV] = previous


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench", default="fig3b", choices=sorted(BENCHES),
        help="bench to gate on (default %(default)s)",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_JSON_PATH), metavar="PATH",
        help="committed results file (default %(default)s)",
    )
    parser.add_argument(
        "--max-drop", type=float, default=0.30, metavar="FRACTION",
        help="largest tolerated relative throughput drop "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--kernel-identity", action="store_true",
        help="also run the bench with the fused step kernel off and "
             "require a bit-identical result table (gates on the "
             "fused run)",
    )
    options = parser.parse_args(argv)

    baseline_path = Path(options.baseline)
    if not baseline_path.is_file():
        print(f"perf-smoke: no baseline at {baseline_path}; nothing to "
              f"gate against", file=sys.stderr)
        return 0
    baseline = json.loads(baseline_path.read_text())
    records = {r["bench"]: r for r in baseline.get("benches", [])}
    base = records.get(options.bench)
    if base is None:
        print(f"perf-smoke: baseline has no entry for {options.bench!r}; "
              f"nothing to gate against", file=sys.stderr)
        return 0
    base_sps = float(base["steps_per_second"])

    if options.kernel_identity:
        from repro.sim.kernel import numba_available

        if numba_available():
            backend = "numba"
        else:
            backend = "numpy"
            print(
                "perf-smoke: numba not installed; fused-kernel leg "
                "uses the numpy backend"
            )
        record = _run_with_kernel(options.bench, backend)
        plain = _run_with_kernel(options.bench, "off")
        if _table_body(record) != _table_body(plain):
            print(
                f"perf-smoke: FAIL -- {options.bench} result table "
                f"with step_kernel={backend!r} differs from the "
                f"kernel-off run",
                file=sys.stderr,
            )
            return 1
        fused_sps = float(record["steps_per_second"])
        plain_sps = float(plain["steps_per_second"])
        speedup = fused_sps / plain_sps if plain_sps > 0 else float("inf")
        print(
            f"\n[perf-smoke: kernel identity OK -- {options.bench} table "
            f"bit-identical with step_kernel={backend!r} and 'off'; "
            f"fused {fused_sps:,.0f} vs per-step {plain_sps:,.0f} "
            f"steps/s ({speedup:.2f}x)]"
        )
    else:
        record = _run_bench(options.bench)
    sps = float(record["steps_per_second"])
    floor = base_sps * (1.0 - options.max_drop)
    ratio = sps / base_sps if base_sps > 0 else float("inf")
    print(
        f"\n[perf-smoke: {options.bench} at {sps:,.0f} steps/s vs "
        f"baseline {base_sps:,.0f} ({ratio:.2f}x); floor "
        f"{floor:,.0f} at max drop {options.max_drop:.0%}]"
    )
    if sps < floor:
        print(
            f"perf-smoke: FAIL -- {options.bench} throughput dropped "
            f"{1.0 - ratio:.0%}, more than the tolerated "
            f"{options.max_drop:.0%}",
            file=sys.stderr,
        )
        return 1
    print("perf-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
