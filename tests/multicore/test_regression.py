"""Dual-core regression pack.

Pins the correctness properties of the multicore path: hop-stall
accounting (the seed bug), swap determinism under fixed seeds,
violation counting at the emergency threshold, instruction
conservation across swaps, and fault/guard behavior on the ported
stack.
"""

import pytest

from repro.dtm.base import DtmCommand, DtmPolicy
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import NumericalError, ThermalViolationError
from repro.multicore import (
    CoreHopper,
    DualCoreRunSpec,
    HoppingConfig,
    MultiCoreEngine,
)
from repro.sim.config import EngineConfig
from repro.sim.faults import FaultPlan
from repro.workloads import build_benchmark

DURATION = 2.0e-3
SETTLE = 0.5e-3


class ConstantPolicy(DtmPolicy):
    """Holds one command forever: the accounting oracle.

    With a constant gating fraction g and a constant voltage, every
    correctly-accounted interval contributes exactly g to the mean
    gating fraction and (when the voltage is low) its full length to
    ``dvs_low_time_s`` -- so both statistics are known in closed form
    regardless of how many hop stalls the run contains.
    """

    def __init__(self, voltage: float, gating: float = 0.0):
        self._voltage = voltage
        self._gating = gating

    @property
    def name(self) -> str:
        return f"const(g={self._gating},v={self._voltage})"

    def update(self, readings, time_s, dt_s):
        return DtmCommand(
            gating_fraction=self._gating, voltage=self._voltage
        )

    def reset(self) -> None:
        pass


@pytest.fixture(scope="module")
def pair():
    return [build_benchmark("crafty"), build_benchmark("mesa")]


def _eager_hopper():
    """A hopper that swaps at every opportunity: trigger far below the
    operating point, no neighbour margin, short refractory period."""
    thresholds = ThermalThresholds(
        emergency_c=200.0, practical_limit_c=150.0, trigger_c=40.0
    )
    return CoreHopper(
        HoppingConfig(neighbour_margin_c=0.0, min_interval_s=1.0e-4),
        thresholds=thresholds,
    )


class TestHopStallAccounting:
    """Seed bug: a swap advanced ``time_s`` by the hop stall but skipped
    the energy / dvs-low / gating accumulators for that interval, while
    ``elapsed`` included it -- biasing every time-averaged statistic low
    on hop-heavy runs."""

    def test_gating_fraction_survives_hop_stalls(self, pair):
        engine = MultiCoreEngine(
            pair,
            policies=[
                ConstantPolicy(1.3, gating=0.5),
                ConstantPolicy(1.3, gating=0.5),
            ],
            hopper=_eager_hopper(),
        )
        init = engine.compute_initial_temperatures()
        result = engine.run(DURATION, initial=init, settle_time_s=SETTLE)
        assert result.swaps > 3  # the scenario must actually hop
        for core in result.cores:
            assert core.mean_gating_fraction == pytest.approx(0.5, abs=1e-9)

    def test_dvs_low_time_covers_hop_stalls(self, pair):
        low_v = 1.3 * 0.9
        engine = MultiCoreEngine(
            pair,
            policies=[ConstantPolicy(low_v), ConstantPolicy(low_v)],
            hopper=_eager_hopper(),
        )
        init = engine.compute_initial_temperatures()
        result = engine.run(DURATION, initial=init, settle_time_s=SETTLE)
        assert result.swaps > 3
        # The chip runs below nominal for the entire measured window,
        # hop stalls included.
        assert result.dvs_low_time_s == pytest.approx(
            result.duration_s, rel=1e-9
        )

    def test_stall_time_is_accounted_and_bounded(self, pair):
        engine = MultiCoreEngine(pair, hopper=_eager_hopper())
        init = engine.compute_initial_temperatures()
        result = engine.run(DURATION, initial=init, settle_time_s=SETTLE)
        assert result.swaps > 0
        assert result.stall_time_s > 0.0
        assert result.stall_time_s < result.duration_s


def _canon(result):
    return result.to_json_dict()


class TestSwapDeterminism:
    def test_identical_runs_are_bit_identical(self, pair):
        def run_once():
            engine = MultiCoreEngine(pair, hopper=_eager_hopper(), seed=7)
            init = engine.compute_initial_temperatures()
            return engine.run(DURATION, initial=init, settle_time_s=SETTLE)

        first = run_once()
        second = run_once()
        assert first.swaps > 0
        assert _canon(first) == _canon(second)

    def test_reset_replays_swaps_exactly(self, pair):
        engine = MultiCoreEngine(pair, hopper=_eager_hopper(), seed=7)
        init = engine.compute_initial_temperatures()
        first = engine.run(DURATION, initial=init.copy(), settle_time_s=SETTLE)
        engine.reset()
        second = engine.run(DURATION, initial=init.copy(), settle_time_s=SETTLE)
        assert first.swaps > 0
        assert _canon(first) == _canon(second)


class TestViolationCounting:
    def test_emergency_below_operating_point_counts_every_step(self, pair):
        # An emergency threshold pinned below the die's operating point
        # must flag every measured step.
        thresholds = ThermalThresholds(
            emergency_c=40.0, practical_limit_c=35.0, trigger_c=30.0
        )
        engine = MultiCoreEngine(pair, thresholds=thresholds)
        init = engine.compute_initial_temperatures()
        result = engine.run(DURATION, initial=init, settle_time_s=SETTLE)
        assert result.violations > 0
        assert not result.violation_free
        assert result.max_true_temp_c > 40.0

    def test_emergency_above_operating_point_counts_none(self, pair):
        thresholds = ThermalThresholds(
            emergency_c=500.0, practical_limit_c=400.0, trigger_c=300.0
        )
        engine = MultiCoreEngine(pair, thresholds=thresholds)
        init = engine.compute_initial_temperatures()
        result = engine.run(DURATION, initial=init, settle_time_s=SETTLE)
        assert result.violations == 0
        assert result.violation_free

    def test_raise_on_violation_aborts_the_run(self, pair):
        thresholds = ThermalThresholds(
            emergency_c=40.0, practical_limit_c=35.0, trigger_c=30.0
        )
        engine = MultiCoreEngine(
            pair,
            thresholds=thresholds,
            config=EngineConfig(raise_on_violation=True),
        )
        init = engine.compute_initial_temperatures()
        with pytest.raises(ThermalViolationError):
            engine.run(DURATION, initial=init, settle_time_s=SETTLE)


class TestInstructionConservation:
    def test_each_workload_appears_once_despite_swaps(self, pair):
        engine = MultiCoreEngine(pair, hopper=_eager_hopper())
        init = engine.compute_initial_temperatures()
        result = engine.run(DURATION, initial=init, settle_time_s=SETTLE)
        assert result.swaps > 0
        names = sorted(core.workload for core in result.cores)
        assert names == sorted(w.name for w in pair)

    def test_total_is_the_sum_of_per_core_work(self, pair):
        engine = MultiCoreEngine(pair, hopper=_eager_hopper())
        init = engine.compute_initial_temperatures()
        result = engine.run(DURATION, initial=init, settle_time_s=SETTLE)
        assert result.total_instructions == pytest.approx(
            sum(core.instructions for core in result.cores)
        )
        assert all(core.instructions > 0.0 for core in result.cores)

    def test_swaps_do_not_create_work(self, pair):
        # A hop-heavy run must commit no more work than an undisturbed
        # one: swaps only cost (stall) time.
        init = MultiCoreEngine(pair).compute_initial_temperatures()
        still = MultiCoreEngine(pair).run(
            DURATION, initial=init.copy(), settle_time_s=SETTLE
        )
        hoppy = MultiCoreEngine(pair, hopper=_eager_hopper()).run(
            DURATION, initial=init.copy(), settle_time_s=SETTLE
        )
        assert hoppy.swaps > 0
        assert hoppy.total_instructions < still.total_instructions


class TestFaultInjection:
    def test_corrupt_power_trips_numerical_guards(self, pair):
        config = EngineConfig(
            fault_plan=FaultPlan(corrupt_power_at_step=5)
        )
        engine = MultiCoreEngine(pair, config=config)
        init = MultiCoreEngine(pair).compute_initial_temperatures()
        with pytest.raises(NumericalError):
            engine.run(DURATION, initial=init, settle_time_s=SETTLE)

    def test_plan_targeting_another_seed_is_inert(self, pair):
        config = EngineConfig(
            fault_plan=FaultPlan(seeds=(99,), corrupt_power_at_step=5)
        )
        init = MultiCoreEngine(pair).compute_initial_temperatures()
        faulted = MultiCoreEngine(pair, config=config, seed=0).run(
            DURATION, initial=init.copy(), settle_time_s=SETTLE
        )
        clean = MultiCoreEngine(pair, seed=0).run(
            DURATION, initial=init.copy(), settle_time_s=SETTLE
        )
        assert _canon(faulted) == _canon(clean)

    def test_sensor_faults_degrade_targeted_runs(self, pair):
        from repro.sensors.faults import SensorFault

        config = EngineConfig(
            fault_plan=FaultPlan(
                sensor_faults=(SensorFault.stuck("IntReg#0", 40.0),)
            )
        )
        engine = MultiCoreEngine(pair, config=config, seed=0)
        assert not engine._sensors.vector_eligible
        init = engine.compute_initial_temperatures()
        result = engine.run(DURATION, initial=init, settle_time_s=SETTLE)
        assert result.duration_s > 0.0


class TestSweepIntegration:
    """Acceptance: dual-core runs flow through ``run_many`` with
    supervision (retries) and land in the sweep report."""

    def test_retry_heals_transient_corruption(self):
        faulty = DualCoreRunSpec(
            workloads=("crafty", "mesa"),
            duration_s=1.0e-3,
            engine_config=EngineConfig(
                fault_plan=FaultPlan(corrupt_power_at_step=5)
            ),
        )
        clean = DualCoreRunSpec(
            workloads=("crafty", "mesa"), duration_s=1.0e-3
        )
        from repro.sim.batch import run_many

        healed = run_many([faulty], retries=1, backoff_s=0.0)
        reference = run_many([clean])
        assert _canon(healed[0]) == _canon(reference[0])

    def test_dual_core_sweep_produces_a_report(self, tmp_path, monkeypatch):
        import repro.obs as obs
        from repro.obs import metrics as obs_metrics
        from repro.sim.batch import last_sweep_report, run_many

        monkeypatch.setenv(obs_metrics.OBS_DIR_ENV, str(tmp_path))
        obs.reset_for_testing()
        previous = obs.set_enabled(True)
        try:
            specs = [
                DualCoreRunSpec(
                    workloads=("crafty", "mesa"),
                    duration_s=0.5e-3,
                    seed=seed,
                )
                for seed in range(2)
            ]
            results = run_many(specs, retries=1)
            assert all(r.total_instructions > 0 for r in results)
            report = last_sweep_report()
            assert report is not None
            assert report.meta["n_specs"] == 2
            assert report.counters["engine.runs"] == 2.0
            assert report.counters["multicore.swaps"] >= 0.0
            assert len({run["run_id"] for run in report.runs}) == 2
        finally:
            obs.set_enabled(previous)
            obs.reset_for_testing()
