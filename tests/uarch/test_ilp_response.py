"""ILP response curves."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.uarch import (
    AnalyticIlpResponse,
    IlpResponse,
    IlpResponsePoint,
    characterise_ilp_response,
)
from repro.uarch.trace import TraceParameters


class TestIlpResponsePoints:
    def test_rejects_bad_fraction(self):
        with pytest.raises(WorkloadError):
            IlpResponsePoint(1.0, 0.5)

    def test_rejects_non_positive_ipc(self):
        with pytest.raises(WorkloadError):
            IlpResponsePoint(0.5, 0.0)


class TestInterpolation:
    @pytest.fixture(scope="class")
    def response(self):
        return IlpResponse(
            [
                IlpResponsePoint(0.0, 2.0),
                IlpResponsePoint(0.4, 1.9),
                IlpResponsePoint(0.6, 1.2),
            ]
        )

    def test_normalised_to_unity_at_zero(self, response):
        assert response.ipc_rel(0.0) == pytest.approx(1.0)

    def test_linear_interpolation_between_points(self, response):
        assert response.ipc_rel(0.2) == pytest.approx((2.0 + 1.9) / 2 / 2.0)

    def test_exact_at_measured_points(self, response):
        assert response.ipc_rel(0.4) == pytest.approx(0.95)
        assert response.ipc_rel(0.6) == pytest.approx(0.6)

    def test_extrapolation_falls_toward_zero(self, response):
        beyond = response.ipc_rel(0.9)
        assert 0.0 < beyond < response.ipc_rel(0.6)

    def test_requires_zero_point(self):
        with pytest.raises(WorkloadError):
            IlpResponse(
                [IlpResponsePoint(0.1, 1.0), IlpResponsePoint(0.5, 0.8)]
            )

    def test_rejects_duplicates(self):
        with pytest.raises(WorkloadError):
            IlpResponse(
                [
                    IlpResponsePoint(0.0, 1.0),
                    IlpResponsePoint(0.0, 0.9),
                ]
            )

    def test_rejects_single_point(self):
        with pytest.raises(WorkloadError):
            IlpResponse([IlpResponsePoint(0.0, 1.0)])

    def test_rejects_out_of_range_query(self, response):
        with pytest.raises(WorkloadError):
            response.ipc_rel(1.0)


class TestAnalyticResponse:
    def test_flat_while_supply_exceeds_demand(self):
        response = AnalyticIlpResponse(base_ipc=2.0, fetch_supply_ipc=3.2)
        assert response.ipc_rel(0.05) > 0.995

    def test_knee_near_supply_equals_demand(self):
        # Supply 3.0, demand 2.0: the knee is at g = 1/3.
        response = AnalyticIlpResponse(base_ipc=2.0, fetch_supply_ipc=3.0)
        before = 1.0 - response.ipc_rel(0.25)
        after = 1.0 - response.ipc_rel(0.45)
        assert before < 0.06
        assert after > 0.12

    def test_linear_regime_beyond_the_knee(self):
        # Deep gating: IPC tracks remaining fetch bandwidth, so slowdown
        # is linear in duty cycle -- the paper's Figure 3b observation.
        response = AnalyticIlpResponse(base_ipc=2.0, fetch_supply_ipc=3.0)
        r1 = response.ipc_rel(0.6)
        r2 = response.ipc_rel(0.8)
        assert r2 / r1 == pytest.approx((1 - 0.8) / (1 - 0.6), rel=0.05)

    def test_rejects_supply_below_demand(self):
        with pytest.raises(WorkloadError):
            AnalyticIlpResponse(base_ipc=2.0, fetch_supply_ipc=1.5)

    def test_sharpness_controls_corner(self):
        blunt = AnalyticIlpResponse(2.0, 3.0, sharpness=4.0)
        sharp = AnalyticIlpResponse(2.0, 3.0, sharpness=24.0)
        # At the knee the sharper curve is closer to the ideal min().
        assert sharp.ipc_rel(1.0 / 3.0) > blunt.ipc_rel(1.0 / 3.0)

    @settings(max_examples=25, deadline=None)
    @given(g1=st.floats(0.0, 0.9), g2=st.floats(0.0, 0.9))
    def test_property_monotone_decreasing(self, g1, g2):
        response = AnalyticIlpResponse(base_ipc=2.0, fetch_supply_ipc=3.1)
        lo, hi = sorted((g1, g2))
        assert response.ipc_rel(lo) >= response.ipc_rel(hi) - 1e-12


class TestCharacterisation:
    @pytest.fixture(scope="class")
    def measured(self):
        params = TraceParameters(
            working_set_bytes=64 * 1024,
            sequential_fraction=0.8,
            dep_distance_mean=10.0,
            branch_predictability=0.95,
        )
        return characterise_ilp_response(
            params,
            gating_fractions=[0.0, 0.2, 1.0 / 3.0, 0.5, 2.0 / 3.0],
            cycles_per_point=12_000,
            warmup_cycles=4_000,
        )

    def test_measured_curve_is_mostly_monotone(self, measured):
        values = [p.ipc_rel for p in measured.points]
        for earlier, later in zip(values, values[2:]):
            assert later <= earlier + 0.05

    def test_mild_gating_hidden_on_real_machine(self, measured):
        assert measured.ipc_rel(0.2) > 0.9

    def test_deep_gating_hurts_on_real_machine(self, measured):
        assert measured.ipc_rel(0.65) < 0.85

    def test_analytic_model_tracks_measurement(self, measured):
        # The interval engine's closed form must stay within a few
        # percent of the cycle-level machine across the sweep.
        base_ipc = 1.8
        analytic = AnalyticIlpResponse(
            base_ipc=base_ipc, fetch_supply_ipc=1.7 * base_ipc, sharpness=8.0
        )
        for g in (0.2, 1.0 / 3.0, 0.5):
            assert analytic.ipc_rel(g) == pytest.approx(
                measured.ipc_rel(g), abs=0.12
            )

    def test_requires_zero_fraction(self):
        with pytest.raises(WorkloadError):
            characterise_ilp_response(
                TraceParameters(), gating_fractions=[0.1], cycles_per_point=2_000
            )

    def test_rejects_tiny_budget(self):
        with pytest.raises(WorkloadError):
            characterise_ilp_response(
                TraceParameters(), gating_fractions=[0.0], cycles_per_point=10
            )
