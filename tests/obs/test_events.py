"""Structured event logging and its schema validator."""

import json
import os

from repro.obs import events
from repro.obs.events import (
    emit,
    event_context,
    validate_events_file,
    validate_record,
)


def _read_events(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestEmit:
    def test_disabled_emit_writes_nothing(self, obs_dir):
        assert emit("quiet.event", detail=1) is None
        assert not list(obs_dir.glob("events-*.jsonl"))

    def test_emit_carries_required_fields(self, obs_on):
        record = emit("engine.test", detail=7)
        assert record["event"] == "engine.test"
        assert record["pid"] == os.getpid()
        assert record["detail"] == 7
        (on_disk,) = _read_events(events.events_path())
        assert on_disk == json.loads(json.dumps(record))

    def test_event_context_scopes_fields(self, obs_on):
        with event_context(run_id="r1"):
            emit("inner.event")
            with event_context(run_id="r2"):
                emit("nested.event")
            emit("restored.event")
        emit("outside.event")
        records = {r["event"]: r for r in _read_events(events.events_path())}
        assert records["inner.event"]["run_id"] == "r1"
        assert records["nested.event"]["run_id"] == "r2"
        assert records["restored.event"]["run_id"] == "r1"
        assert "run_id" not in records["outside.event"]

    def test_events_append_across_emits(self, obs_on):
        emit("first.event")
        emit("second.event")
        assert len(_read_events(events.events_path())) == 2


class TestSchema:
    def test_valid_record_has_no_errors(self, obs_on):
        record = emit("sweep.retry", attempt=1, benchmark="gzip")
        assert validate_record(record) == []

    def test_missing_required_fields_reported(self):
        errors = validate_record({"event": "x.y"})
        assert any("ts" in e for e in errors)
        assert any("pid" in e for e in errors)

    def test_bad_event_name_rejected(self):
        record = {"event": "Bad Name!", "ts": 1.0, "pid": 1}
        assert any("bad event name" in e for e in validate_record(record))

    def test_non_scalar_value_rejected(self):
        record = {"event": "a.b", "ts": 1.0, "pid": 1, "blob": [1, 2]}
        assert any("JSON scalar" in e for e in validate_record(record))

    def test_non_object_rejected(self):
        assert validate_record([1, 2]) == ["record is not a JSON object"]

    def test_validate_file_counts_and_flags(self, obs_on, tmp_path):
        emit("ok.event")
        emit("ok.other")
        path = events.events_path()
        count, errors = validate_events_file(path)
        assert (count, errors) == (2, [])

        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"event": "a.b", "ts": 1.0, "pid": 1}\n{"tru')
        count, errors = validate_events_file(torn)
        assert count == 1
        assert len(errors) == 1 and "unparsable" in errors[0]
