"""Block geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FloorplanError
from repro.floorplan import Block


def make(name="b", x=0.0, y=0.0, w=1.0, h=1.0):
    return Block(name=name, x=x, y=y, width=w, height=h)


class TestConstruction:
    def test_rejects_empty_name(self):
        with pytest.raises(FloorplanError):
            make(name="")

    @pytest.mark.parametrize("w,h", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_rejects_non_positive_extent(self, w, h):
        with pytest.raises(FloorplanError):
            make(w=w, h=h)

    def test_rejects_negative_origin(self):
        with pytest.raises(FloorplanError):
            make(x=-0.1)

    def test_derived_geometry(self):
        b = make(x=1.0, y=2.0, w=3.0, h=4.0)
        assert b.right == pytest.approx(4.0)
        assert b.top == pytest.approx(6.0)
        assert b.area == pytest.approx(12.0)
        assert b.center == (pytest.approx(2.5), pytest.approx(4.0))


class TestOverlap:
    def test_disjoint_blocks_do_not_overlap(self):
        assert not make(x=0).overlaps(make(name="c", x=5.0))

    def test_identical_blocks_overlap(self):
        assert make().overlaps(make(name="c"))

    def test_partial_overlap(self):
        assert make(w=2.0).overlaps(make(name="c", x=1.0, w=2.0))

    def test_shared_edge_is_not_overlap(self):
        assert not make(w=1.0).overlaps(make(name="c", x=1.0))

    def test_shared_corner_is_not_overlap(self):
        assert not make().overlaps(make(name="c", x=1.0, y=1.0))

    def test_overlap_is_symmetric(self):
        a, b = make(w=2.0), make(name="c", x=1.0)
        assert a.overlaps(b) == b.overlaps(a)


class TestSharedEdge:
    def test_right_neighbour_full_edge(self):
        a = make(h=2.0)
        b = make(name="c", x=1.0, h=2.0)
        assert a.shared_edge_length(b) == pytest.approx(2.0)

    def test_top_neighbour_partial_edge(self):
        a = make(w=2.0)
        b = make(name="c", x=1.0, y=1.0, w=2.0)
        assert a.shared_edge_length(b) == pytest.approx(1.0)

    def test_disjoint_blocks_share_nothing(self):
        assert make().shared_edge_length(make(name="c", x=3.0)) == 0.0

    def test_corner_touch_shares_nothing(self):
        assert make().shared_edge_length(make(name="c", x=1.0, y=1.0)) == 0.0

    def test_aligned_but_separated_shares_nothing(self):
        # Same y-range but a gap in x.
        assert make().shared_edge_length(make(name="c", x=1.5)) == 0.0

    def test_symmetry(self):
        a = make(h=2.0)
        b = make(name="c", x=1.0, y=0.5, h=2.0)
        assert a.shared_edge_length(b) == pytest.approx(b.shared_edge_length(a))


class TestCenterDistance:
    def test_horizontal_neighbours(self):
        a, b = make(), make(name="c", x=1.0)
        assert a.center_distance(b) == pytest.approx(1.0)

    def test_diagonal(self):
        a, b = make(), make(name="c", x=3.0, y=4.0)
        assert a.center_distance(b) == pytest.approx(5.0)


@given(
    x=st.floats(0.0, 10.0),
    y=st.floats(0.0, 10.0),
    w=st.floats(0.1, 5.0),
    h=st.floats(0.1, 5.0),
)
def test_property_area_positive_and_consistent(x, y, w, h):
    b = Block(name="p", x=x, y=y, width=w, height=h)
    assert b.area > 0.0
    assert b.right >= b.x
    assert b.top >= b.y
    cx, cy = b.center
    assert b.x <= cx <= b.right
    assert b.y <= cy <= b.top


@given(
    dx=st.floats(0.0, 3.0),
    w=st.floats(0.5, 2.0),
)
def test_property_overlap_iff_within_extent(dx, w):
    a = Block(name="a", x=0.0, y=0.0, width=w, height=1.0)
    b = Block(name="b", x=dx, y=0.0, width=1.0, height=1.0)
    expected = dx < w - 1e-9
    assert a.overlaps(b) == expected
