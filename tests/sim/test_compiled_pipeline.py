"""Compiled step pipeline versus the interpreted reference path.

``EngineConfig.compiled_trace`` selects the precompiled workload-trace
fast path (``"on"``, the default), the interpreted phase walker
(``"off"``), or the self-checking ``"verify"`` mode that re-derives
every fast-path activity vector through the interpreted model.  The
compiled path is bit-identical by construction -- same IEEE doubles in
the same order -- so these tests assert *exact* equality of every run
statistic: across the whole SPEC suite, under both thermal steppers,
composed with fault plans, and for the recorded trace itself.
"""

from dataclasses import asdict

import pytest

from repro.core.policies import make_policy
from repro.sensors.faults import SensorFault
from repro.sim import EngineConfig, SimulationEngine
from repro.sim.engine import TraceBuffer
from repro.sim.faults import FaultPlan
from repro.workloads import build_benchmark
from repro.workloads.spec import SPEC_BENCHMARK_NAMES

FAST_N = 1_000_000


def _result(workload, *, policy="Hyb", seed=5, **config_kwargs):
    engine = SimulationEngine(
        workload,
        policy=make_policy(policy),
        config=EngineConfig(**config_kwargs),
        seed=seed,
    )
    init = engine.compute_initial_temperatures()
    return engine.run(FAST_N, initial=init, settle_time_s=2.0e-4)


def _pair(workload, **kwargs):
    on = _result(workload, compiled_trace="on", **kwargs)
    off = _result(workload, compiled_trace="off", **kwargs)
    return on, off


def _assert_identical(compiled, interpreted):
    assert asdict(compiled) == asdict(interpreted)


class TestSuiteEquivalence:
    @pytest.mark.parametrize("name", SPEC_BENCHMARK_NAMES)
    def test_bit_identical_across_suite(self, name):
        _assert_identical(*_pair(build_benchmark(name)))


class TestStepperEquivalence:
    @pytest.mark.parametrize("stepper", ["be", "expm"])
    def test_bit_identical_per_stepper(self, gzip_workload, stepper):
        _assert_identical(
            *_pair(gzip_workload, policy="DVS", thermal_stepper=stepper)
        )


class TestVerifyMode:
    def test_verify_matches_on(self, mesa_workload):
        on = _result(mesa_workload, compiled_trace="on")
        verified = _result(mesa_workload, compiled_trace="verify")
        _assert_identical(on, verified)


class TestFaultComposition:
    def test_sensor_fault_plan_is_path_invariant(self, gzip_workload):
        plan = FaultPlan(sensor_faults=(SensorFault.dropout("FPMul"),))
        on, off = _pair(gzip_workload, fault_plan=plan)
        _assert_identical(on, off)

    def test_fault_plan_differs_from_clean_run(self, gzip_workload):
        # Guard against the composition test passing vacuously: the
        # injected dropout must actually reach the sensor array.
        plan = FaultPlan(
            sensor_faults=(SensorFault.stuck("IntReg", 40.0),)
        )
        clean = _result(gzip_workload)
        faulted = _result(gzip_workload, fault_plan=plan)
        assert asdict(clean) != asdict(faulted)


class TestTrace:
    def test_recorded_trace_is_path_invariant(self, gzip_workload):
        on, off = _pair(gzip_workload, record_trace=True)
        assert on.trace and off.trace
        assert [asdict(p) for p in on.trace] == [
            asdict(p) for p in off.trace
        ]

    def test_no_trace_buffers_allocated_when_tracing_off(
        self, gzip_workload
    ):
        created_before = TraceBuffer.created
        result = _result(gzip_workload, record_trace=False)
        assert result.trace is None
        assert TraceBuffer.created == created_before

    def test_trace_buffer_grows_past_one_chunk(self):
        buffer = TraceBuffer(("IntReg",))
        for i in range(TraceBuffer.CHUNK + 10):
            buffer.append(i * 1e-5, 0, 80.0, 0.0, 1.0, 1.0, 1000.0)
        assert len(buffer) == TraceBuffer.CHUNK + 10
        points = buffer.points()
        assert len(points) == TraceBuffer.CHUNK + 10
        assert points[-1].time_s == (TraceBuffer.CHUNK + 9) * 1e-5
