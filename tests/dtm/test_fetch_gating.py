"""Fetch-gating policies."""

import pytest

from repro.dtm import FetchGatingConfig, FetchGatingPolicy, ThermalThresholds
from repro.dtm.fetch_gating import (
    FixedFetchGatingPolicy,
    duty_cycle_to_gating_fraction,
    gating_fraction_to_duty_cycle,
)
from repro.errors import DtmConfigError

TRIGGER = ThermalThresholds().trigger_c


def readings(temp):
    return {"IntReg": temp}


class TestDutyCycleConversion:
    def test_paper_convention(self):
        # Duty cycle 3 = skip fetch once every three cycles.
        assert duty_cycle_to_gating_fraction(3.0) == pytest.approx(1.0 / 3.0)

    def test_1_5_duty_means_two_thirds_gated(self):
        assert duty_cycle_to_gating_fraction(1.5) == pytest.approx(2.0 / 3.0)

    def test_fractional_duty_below_one_rejected_when_fully_gated(self):
        # The paper's 0.33 notation (gate two of three) corresponds to a
        # gating fraction of 3 -- not representable, so it is expressed as
        # duty 1.5 here; anything at or below duty 1 gates every cycle.
        with pytest.raises(DtmConfigError):
            duty_cycle_to_gating_fraction(0.9)

    def test_round_trip(self):
        for duty in (20.0, 5.0, 3.0, 1.5):
            fraction = duty_cycle_to_gating_fraction(duty)
            assert gating_fraction_to_duty_cycle(fraction) == pytest.approx(duty)

    def test_rejects_always_gated(self):
        with pytest.raises(DtmConfigError):
            duty_cycle_to_gating_fraction(1.0)

    def test_rejects_non_positive(self):
        with pytest.raises(DtmConfigError):
            duty_cycle_to_gating_fraction(0.0)
        with pytest.raises(DtmConfigError):
            gating_fraction_to_duty_cycle(1.0)


class TestIntegralControlled:
    @pytest.fixture()
    def policy(self):
        return FetchGatingPolicy()

    def test_no_gating_when_cool(self, policy):
        cmd = policy.update(readings(75.0), 0.0, 1e-4)
        assert cmd.gating_fraction == 0.0
        assert cmd.voltage == pytest.approx(1.3)

    def test_gating_ramps_up_under_heat(self, policy):
        fractions = [
            policy.update(readings(TRIGGER + 1.0), i * 1e-4, 1e-4).gating_fraction
            for i in range(10)
        ]
        assert fractions[0] < fractions[-1]
        assert fractions[-1] > 0.0

    def test_saturates_at_configured_maximum(self, policy):
        for i in range(500):
            cmd = policy.update(readings(TRIGGER + 5.0), i * 1e-4, 1e-4)
        assert cmd.gating_fraction == pytest.approx(2.0 / 3.0)

    def test_unwinds_when_cool(self, policy):
        for i in range(100):
            policy.update(readings(TRIGGER + 2.0), i * 1e-4, 1e-4)
        peak = policy.gating_fraction
        for i in range(100, 300):
            policy.update(readings(TRIGGER - 2.0), i * 1e-4, 1e-4)
        assert policy.gating_fraction < peak

    def test_never_touches_voltage_or_clock(self, policy):
        cmd = policy.update(readings(TRIGGER + 5.0), 0.0, 1e-4)
        assert cmd.voltage == pytest.approx(1.3)
        assert cmd.clock_enabled_fraction == 1.0

    def test_reset(self, policy):
        policy.update(readings(TRIGGER + 5.0), 0.0, 1e-4)
        policy.reset()
        assert policy.gating_fraction == 0.0

    def test_config_validation(self):
        with pytest.raises(DtmConfigError):
            FetchGatingConfig(ki=0.0)
        with pytest.raises(DtmConfigError):
            FetchGatingConfig(max_gating_fraction=1.0)


class TestFixedDuty:
    def test_engages_above_trigger(self):
        policy = FixedFetchGatingPolicy(1.0 / 3.0)
        cmd = policy.update(readings(TRIGGER + 0.2), 0.0, 1e-4)
        assert cmd.gating_fraction == pytest.approx(1.0 / 3.0)

    def test_idle_below_trigger(self):
        policy = FixedFetchGatingPolicy(1.0 / 3.0)
        cmd = policy.update(readings(TRIGGER - 1.0), 0.0, 1e-4)
        assert cmd.gating_fraction == 0.0

    def test_release_is_filtered(self):
        policy = FixedFetchGatingPolicy(1.0 / 3.0)
        policy.update(readings(TRIGGER + 2.0), 0.0, 1e-4)
        cmd = policy.update(readings(TRIGGER - 0.5), 1e-4, 1e-4)
        assert cmd.gating_fraction > 0.0  # still engaged
        for i in range(40):
            cmd = policy.update(readings(TRIGGER - 2.0), (i + 2) * 1e-4, 1e-4)
        assert cmd.gating_fraction == 0.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(DtmConfigError):
            FixedFetchGatingPolicy(0.0)
        with pytest.raises(DtmConfigError):
            FixedFetchGatingPolicy(1.0)

    def test_reset(self):
        policy = FixedFetchGatingPolicy(0.5)
        policy.update(readings(TRIGGER + 2.0), 0.0, 1e-4)
        policy.reset()
        assert not policy.engaged
