"""Ablation A9 (paper future work): dual-core thermal management.

"Thermal management on multi-threaded and multi-core systems remains
poorly understood."  This bench runs a hot/mild workload pair on the
thermally coupled dual-core die under four managers -- nothing, per-core
Hyb, core hopping alone, and hopping plus Hyb -- and reports chip
throughput, peak temperature and protection.  Core hopping exploits the
resource a single-core chip does not have: a second, cooler copy of the
hotspot structure, one thread-migration away.
"""

from _helpers import save_table

from repro.analysis import render_table
from repro.dtm import HybPolicy
from repro.multicore import CoreHopper, MultiCoreEngine
from repro.workloads import build_benchmark

DURATION_S = 4.0e-3
SETTLE_S = 1.5e-3

PAIRS = (
    ("crafty", "mesa"),
    ("crafty", "gcc"),
    ("gzip", "eon"),
)


def _run() -> str:
    rows = []
    for hot_name, other_name in PAIRS:
        workloads = [build_benchmark(hot_name), build_benchmark(other_name)]
        engine = MultiCoreEngine(workloads)
        init = engine.compute_initial_temperatures()
        configs = {
            "none": MultiCoreEngine(workloads),
            "Hyb/core": MultiCoreEngine(
                workloads, policies=[HybPolicy(), HybPolicy()]
            ),
            "hopping": MultiCoreEngine(workloads, hopper=CoreHopper()),
            "hop+Hyb": MultiCoreEngine(
                workloads,
                policies=[HybPolicy(), HybPolicy()],
                hopper=CoreHopper(),
            ),
        }
        baseline_ips = None
        for label, configured in configs.items():
            result = configured.run(
                DURATION_S, initial=init.copy(), settle_time_s=SETTLE_S
            )
            if baseline_ips is None:
                baseline_ips = result.throughput_ips
            rows.append(
                [
                    f"{hot_name}+{other_name}",
                    label,
                    result.throughput_ips / baseline_ips,
                    result.max_true_temp_c,
                    result.violations,
                    result.swaps,
                ]
            )
    return render_table(
        ["pair", "manager", "rel throughput", "max C", "viol", "swaps"],
        rows,
        title="A9: dual-core thermal management "
              "(shared die + package, one V/f domain)",
    )


def test_a9_multicore(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("a9_multicore", table)
