"""Structured JSONL event logging with run/sweep context.

Every event is one JSON object on one line of a per-process file
(``<obs_dir>/events-<pid>.jsonl``), so pool workers never interleave
partial lines and a crashed process loses at most the line it was
writing.  Each record carries:

* ``event`` -- dotted lowercase event name (``"sweep.pool_rebuild"``);
* ``ts`` -- wall-clock UNIX timestamp;
* ``pid`` -- the emitting process;
* any ambient context pushed with :func:`event_context` (e.g. the
  ``run_id`` of the run currently executing);
* the caller's keyword fields.

The emitting side is fork-aware: a worker inheriting the parent's open
handle re-opens its own file on first emit (handles are keyed by pid
and target path).  :func:`validate_record` /
:func:`validate_events_file` implement the event schema the CI smoke
job checks emitted logs against.
"""

from __future__ import annotations

import json
import numbers
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs import flightrec, metrics

REQUIRED_FIELDS = ("event", "ts", "pid")
"""Fields present on every event record."""

_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789_.")

_CONTEXT: Dict[str, object] = {}

_HANDLE = None
_HANDLE_KEY: Optional[Tuple[int, str]] = None


def events_path() -> Path:
    """This process's event-log file path."""
    return metrics.obs_dir() / f"events-{os.getpid()}.jsonl"


def _sink():
    """The (lazily opened, fork-aware) event-log handle."""
    global _HANDLE, _HANDLE_KEY
    path = events_path()
    key = (os.getpid(), str(path))
    if _HANDLE is None or _HANDLE_KEY != key:
        if _HANDLE is not None and _HANDLE_KEY is not None and (
            _HANDLE_KEY[0] == os.getpid()
        ):
            try:
                _HANDLE.close()
            except Exception:  # pragma: no cover - defensive
                pass
        path.parent.mkdir(parents=True, exist_ok=True)
        _HANDLE = open(path, "a", encoding="utf-8")
        _HANDLE_KEY = key
    return _HANDLE


def emit(event: str, **fields) -> Optional[Dict[str, object]]:
    """Write one structured event; returns the record, or ``None`` when
    observability is disabled (in which case nothing is allocated)."""
    if not metrics.enabled():
        return None
    record: Dict[str, object] = {
        "event": event,
        "ts": time.time(),
        "pid": os.getpid(),
    }
    if _CONTEXT:
        record.update(_CONTEXT)
    if fields:
        record.update(fields)
    handle = _sink()
    handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
    handle.flush()
    # Mirror into the crash flight recorder's ring: one append, no
    # copy, no re-serialisation.  Call sites that emit must therefore
    # never also call flightrec.note for the same event.
    flightrec.note_record(record)
    return record


@contextmanager
def event_context(**fields):
    """Attach ``fields`` to every event emitted inside the block."""
    saved = {key: _CONTEXT.get(key, _MISSING) for key in fields}
    _CONTEXT.update(fields)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is _MISSING:
                _CONTEXT.pop(key, None)
            else:
                _CONTEXT[key] = value


_MISSING = object()


def push_context(**fields) -> Dict[str, object]:
    """Set ambient context fields; returns the saved previous values
    for :func:`pop_context`."""
    saved = {key: _CONTEXT.get(key, _MISSING) for key in fields}
    _CONTEXT.update(fields)
    return saved


def pop_context(saved: Dict[str, object]) -> None:
    """Restore context saved by :func:`push_context`."""
    for key, value in saved.items():
        if value is _MISSING:
            _CONTEXT.pop(key, None)
        else:
            _CONTEXT[key] = value


def reset() -> None:
    """Close the handle and clear ambient context (test isolation)."""
    global _HANDLE, _HANDLE_KEY
    if _HANDLE is not None:
        try:
            _HANDLE.close()
        except Exception:  # pragma: no cover - defensive
            pass
    _HANDLE = None
    _HANDLE_KEY = None
    _CONTEXT.clear()


# --- schema -----------------------------------------------------------------


def _valid_name(name: object) -> bool:
    return (
        isinstance(name, str)
        and bool(name)
        and name[0].isalpha()
        and set(name) <= _NAME_CHARS
        and not name.startswith(".")
        and not name.endswith(".")
    )


def validate_record(record: object) -> List[str]:
    """Schema errors of one event record (empty list = valid).

    The schema is structural, not a name whitelist -- new subsystems
    may add event types freely:

    * the record is a JSON object with every required field;
    * ``event`` is a dotted lowercase identifier;
    * ``ts`` is a number, ``pid`` a positive integer;
    * keys are identifiers and values are JSON scalars (events are flat
      -- aggregates belong in spill records and reports, not events).
    """
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    errors: List[str] = []
    for field in REQUIRED_FIELDS:
        if field not in record:
            errors.append(f"missing required field {field!r}")
    name = record.get("event")
    if "event" in record and not _valid_name(name):
        errors.append(f"bad event name {name!r}")
    ts = record.get("ts")
    if "ts" in record and not isinstance(ts, numbers.Real):
        errors.append(f"ts is not a number: {ts!r}")
    pid = record.get("pid")
    if "pid" in record and not (isinstance(pid, int) and pid > 0):
        errors.append(f"pid is not a positive integer: {pid!r}")
    for key, value in record.items():
        if not isinstance(key, str) or not key.replace("_", "").isalnum():
            errors.append(f"bad field name {key!r}")
        if not isinstance(value, (str, int, float, bool, type(None))):
            errors.append(f"field {key!r} is not a JSON scalar: {value!r}")
    return errors


def validate_events_file(path) -> Tuple[int, List[str]]:
    """Validate one JSONL event log.

    Returns ``(record_count, errors)`` where each error names its line.
    An unparsable line is an error (event logs are flushed per record,
    so torn lines indicate a crashed writer, which is worth surfacing).
    """
    count = 0
    errors: List[str] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{path}:{lineno}: unparsable line ({exc})")
                continue
            count += 1
            for problem in validate_record(record):
                errors.append(f"{path}:{lineno}: {problem}")
    return count, errors
