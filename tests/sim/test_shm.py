"""Zero-copy shared-memory sweep dispatch.

The pool path of :func:`repro.sim.batch.run_many` ships each run as a
``(descriptor, index)`` pair against one shared-memory segment built
once per generation (workloads, policies, configs and warmup vectors
deduplicated), and workers write their numeric results into a shared
table, returning tiny stubs.  Every test here asserts the invariant the
design rests on: results are *identical* to the classic pickle path and
to serial execution.
"""

from dataclasses import asdict, replace

import numpy as np
import pytest

from repro.sim import EngineConfig, RunSpec, run_many
from repro.sim import shm
from repro.sim.batch import run_one, steady_state_for
from repro.sim.results import RunResult
from repro.sim.shm import (
    RESULT_FIELDS,
    SHM_SWEEPS_ENV,
    ShmDescriptor,
    ShmResultStub,
    create_context,
    run_one_shm,
    shm_sweeps_enabled,
)

FAST_N = 1_000_000


def _spec(name="gzip", policy="FG", seed=0, *, with_initial=True, **cfg):
    return RunSpec(
        workload=name,
        policy=policy,
        instructions=FAST_N,
        settle_time_s=1.0e-4,
        seed=seed,
        engine_config=EngineConfig(**cfg) if cfg else None,
        initial=steady_state_for(name) if with_initial else None,
    )


@pytest.fixture(autouse=True)
def _drop_worker_attachments():
    """In-process calls to :func:`run_one_shm` populate the worker-side
    attachment cache; drop it so later tests never touch a mapping whose
    segment has been unlinked."""
    yield
    for entry in list(shm._ATTACHED.values()):
        try:
            entry[0].close()
        except Exception:
            pass
    shm._ATTACHED.clear()


class TestEnabledSwitch:
    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv(SHM_SWEEPS_ENV, raising=False)
        assert shm_sweeps_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "false", "OFF", " 0 "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(SHM_SWEEPS_ENV, value)
        assert not shm_sweeps_enabled()

    def test_create_context_respects_disable(self, monkeypatch):
        monkeypatch.setenv(SHM_SWEEPS_ENV, "0")
        assert create_context([_spec()]) is None

    def test_create_context_requires_warmup_vectors(self):
        # Specs without an initial vector cannot be rebuilt in a worker
        # from the shared segment; the caller keeps the pickle path.
        assert create_context([_spec(with_initial=False)]) is None


class TestDescriptorLayout:
    def test_offsets_aligned_and_sized(self):
        d = ShmDescriptor(
            name="x", payload_size=13, n_initials=2, n_nodes=7, n_specs=3
        )
        assert d.initials_offset % 8 == 0
        assert d.initials_offset >= d.payload_size
        assert d.results_offset == d.initials_offset + 2 * 7 * 8
        assert d.total_size == d.results_offset + 3 * len(RESULT_FIELDS) * 8


class TestInProcessRoundTrip:
    def test_stub_resolves_to_the_serial_result(self):
        specs = [_spec(seed=1), _spec("mesa", "DVS", seed=2)]
        context = create_context(specs)
        assert context is not None
        try:
            for index, spec in enumerate(specs):
                raw = run_one_shm(context.descriptor, index)
                assert isinstance(raw, ShmResultStub)
                resolved = context.resolve(raw)
                assert asdict(resolved) == asdict(run_one(spec))
        finally:
            context.close()

    def test_traced_run_returns_the_full_result(self):
        spec = _spec(record_trace=True)
        context = create_context([spec])
        assert context is not None
        try:
            raw = run_one_shm(context.descriptor, 0)
            assert isinstance(raw, RunResult)
            assert raw.trace
            assert context.resolve(raw) is raw
            reference = run_one(spec)
            assert asdict(raw) == asdict(reference)
        finally:
            context.close()

    def test_close_is_idempotent(self):
        context = create_context([_spec()])
        assert context is not None
        context.close()
        context.close()


class _RecordingPool:
    def __init__(self):
        self.calls = []

    def submit(self, fn, *args):
        self.calls.append((fn, args))
        return None


class TestSubmitIdentityGate:
    def test_registered_spec_ships_as_descriptor_index(self):
        specs = [_spec()]
        context = create_context(specs)
        assert context is not None
        try:
            pool = _RecordingPool()
            context.submit(pool, 0, specs[0])
            fn, args = pool.calls[0]
            assert fn is run_one_shm
            assert args == (context.descriptor, 0)
        finally:
            context.close()

    def test_mutated_spec_falls_back_to_pickle(self):
        specs = [_spec()]
        context = create_context(specs)
        assert context is not None
        try:
            pool = _RecordingPool()
            retry = replace(specs[0])  # equal by value, different object
            context.submit(pool, 0, retry)
            fn, args = pool.calls[0]
            assert fn is run_one
            assert args == (retry,)
        finally:
            context.close()


class TestRunManyIntegration:
    def _specs(self):
        return [
            RunSpec(
                workload=name,
                policy=policy,
                instructions=FAST_N,
                settle_time_s=1.0e-4,
                seed=seed,
            )
            for seed, (name, policy) in enumerate(
                [("gzip", "FG"), ("gcc", "Hyb"), ("mesa", "DVS")]
            )
        ]

    def test_pool_matches_serial_with_and_without_shm(self, monkeypatch):
        # The shared-memory dispatch lives on the classic per-run pool
        # path; opt out of the lockstep sweep default to exercise it.
        serial = run_many(self._specs(), lockstep=False)
        monkeypatch.setenv(SHM_SWEEPS_ENV, "1")
        pooled_shm = run_many(self._specs(), processes=2, lockstep=False)
        monkeypatch.setenv(SHM_SWEEPS_ENV, "0")
        pooled_pickle = run_many(self._specs(), processes=2, lockstep=False)
        reference = [asdict(r) for r in serial]
        assert [asdict(r) for r in pooled_shm] == reference
        assert [asdict(r) for r in pooled_pickle] == reference
