"""Run result container."""

import pytest

from repro.errors import SimulationError
from repro.sim import RunResult


def make_result(**overrides):
    defaults = dict(
        benchmark="gzip",
        policy="DVS",
        dvs_mode="stall",
        instructions=1e7,
        elapsed_s=4e-3,
        cycles=11_000_000,
        violations=0,
        max_true_temp_c=84.2,
        hottest_block="IntReg",
        time_above_trigger_s=3e-3,
        dvs_switches=6,
        dvs_low_time_s=2e-3,
        stall_time_s=60e-6,
        mean_gating_fraction=0.0,
        mean_power_w=25.0,
    )
    defaults.update(overrides)
    return RunResult(**defaults)


def test_ips():
    result = make_result()
    assert result.ips == pytest.approx(1e7 / 4e-3)


def test_fraction_above_trigger():
    assert make_result().fraction_above_trigger == pytest.approx(0.75)


def test_violation_free():
    assert make_result().violation_free
    assert not make_result(violations=3).violation_free


def test_summary_fields():
    summary = make_result().summary()
    assert summary["elapsed_ms"] == pytest.approx(4.0)
    assert summary["dvs_low_frac"] == pytest.approx(0.5)
    assert summary["stall_ms"] == pytest.approx(0.06)


def test_rejects_empty_run():
    with pytest.raises(SimulationError):
        make_result(instructions=0.0)
    with pytest.raises(SimulationError):
        make_result(elapsed_s=0.0)
