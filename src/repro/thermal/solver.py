"""Steady-state and transient solvers for thermal RC networks.

The governing equation (temperatures in Celsius, ambient folded into the
source term) is::

    C dT/dt = P + g_amb * T_amb - L T

Steady state is one linear solve.  Transients use backward Euler::

    (C/dt + L) T_{k+1} = (C/dt) T_k + P + g_amb * T_amb

which is unconditionally stable, so DTM experiments can take one step per
10 000-cycle power sample regardless of the fastest RC product in the
network.  The step matrix is LU-factorised once per distinct dt and cached,
because DVS changes the cycle time and therefore the step length.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy.linalg import lu_factor
from scipy.linalg.lapack import get_lapack_funcs

from repro.errors import ThermalModelError
from repro.thermal.rc_model import ThermalNetwork


def _ambient_source(network: ThermalNetwork) -> np.ndarray:
    return network.ambient_conductance * network.ambient_c


def steady_state(network: ThermalNetwork, power: np.ndarray) -> np.ndarray:
    """Solve ``L T = P + g_amb * T_amb`` for the steady temperatures.

    Parameters
    ----------
    network:
        The assembled RC network.
    power:
        (n,) injected power vector (see
        :meth:`~repro.thermal.rc_model.ThermalNetwork.power_vector`).

    Returns
    -------
    numpy.ndarray
        (n,) temperatures in Celsius.
    """
    if power.shape != (network.size,):
        raise ThermalModelError(
            f"power vector has shape {power.shape}, expected ({network.size},)"
        )
    rhs = power + _ambient_source(network)
    try:
        return np.linalg.solve(network.conductance, rhs)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise ThermalModelError(f"steady-state solve failed: {exc}") from exc


class TransientSolver:
    """Backward-Euler integrator over a thermal RC network.

    The solver owns the current temperature vector; callers advance it with
    :meth:`step` once per power sample.  Factorisations of ``C/dt + L`` are
    cached per dt (rounded to femtosecond granularity) since a DTM run uses
    only a handful of distinct frequencies.
    """

    def __init__(self, network: ThermalNetwork, initial: np.ndarray):
        if initial.shape != (network.size,):
            raise ThermalModelError(
                f"initial temperatures have shape {initial.shape}, "
                f"expected ({network.size},)"
            )
        self._network = network
        self._temps = np.array(initial, dtype=float, copy=True)
        self._ambient_source = _ambient_source(network)
        self._factor_cache: Dict[int, tuple] = {}
        self._rhs = np.empty(network.size)
        self._time_s = 0.0

    @property
    def network(self) -> ThermalNetwork:
        """The underlying RC network."""
        return self._network

    @property
    def temperatures(self) -> np.ndarray:
        """Current node temperatures in Celsius (copy)."""
        return self._temps.copy()

    @property
    def time_s(self) -> float:
        """Simulated time elapsed since construction, in seconds."""
        return self._time_s

    def _factorisation(self, dt: float):
        key = int(round(dt * 1e15))
        cached = self._factor_cache.get(key)
        if cached is None:
            c_over_dt = self._network.capacitance / dt
            matrix = np.diag(c_over_dt) + self._network.conductance
            lu, piv = lu_factor(matrix)
            # Bind the LAPACK triangular solve directly: it is what
            # lu_solve calls after several layers of validation, which
            # dominate the cost of solving a ~17-node system once per
            # thermal step.
            getrs, = get_lapack_funcs(("getrs",), (lu,))
            self._factor_cache[key] = (lu, piv, c_over_dt, getrs)
        return self._factor_cache[key]

    def step(self, power: np.ndarray, dt: float, copy: bool = True) -> np.ndarray:
        """Advance the network by ``dt`` seconds with constant injected
        ``power`` over the step.

        Returns the new temperature vector -- a copy by default.  With
        ``copy=False`` the solver's own state array is returned; it is
        overwritten by the next :meth:`step`, so read what you need from
        it before advancing again (the engine's inner loop gathers the
        block temperatures immediately)."""
        if dt <= 0.0:
            raise ThermalModelError(f"time step must be > 0, got {dt}")
        if power.shape != (self._network.size,):
            raise ThermalModelError(
                f"power vector has shape {power.shape}, "
                f"expected ({self._network.size},)"
            )
        lu, piv, c_over_dt, getrs = self._factorisation(dt)
        # Assemble the right-hand side in a reused buffer and let LAPACK
        # solve in place on it; the buffer then *becomes* the state
        # vector (next step's multiply is elementwise, so reading the
        # old state out of the same array it writes is safe).
        rhs = self._rhs
        np.multiply(c_over_dt, self._temps, out=rhs)
        rhs += power
        rhs += self._ambient_source
        solution, info = getrs(lu, piv, rhs, overwrite_b=1)
        if info != 0:  # pragma: no cover - defensive
            raise ThermalModelError(f"transient solve failed (info={info})")
        self._temps = solution
        self._rhs = solution
        self._time_s += dt
        return self._temps.copy() if copy else self._temps

    def reset(self, temperatures: np.ndarray) -> None:
        """Overwrite the state with ``temperatures`` and zero the clock."""
        if temperatures.shape != (self._network.size,):
            raise ThermalModelError(
                f"temperatures have shape {temperatures.shape}, "
                f"expected ({self._network.size},)"
            )
        self._temps = np.array(temperatures, dtype=float, copy=True)
        self._time_s = 0.0
