"""Dual-core co-simulation engine.

Each core runs its own workload through its own interval performance
model and its own DTM policy; both cores share one thermal RC network (so
a hot neighbour raises your temperature through the silicon and the
package), one sensor array, and -- as on 2004-era dual-core parts -- one
voltage/frequency domain: the chip runs at the *lower* of the two cores'
requested voltages.

An optional :class:`~repro.multicore.hopping.CoreHopper` sits above the
per-core policies and may swap the workload assignment (core hopping);
a swap stalls both cores for the hop time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dtm.base import DtmPolicy
from repro.dtm.none import NoDtmPolicy
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import SimulationError
from repro.multicore.floorplan import (
    CORE_INSTANCES,
    build_dual_core_floorplan,
    core_block,
    dual_core_power_specs,
)
from repro.multicore.hopping import CoreHopper
from repro.floorplan.alpha21364 import CORE_BLOCKS
from repro.power.model import PowerModel
from repro.sensors.array import SensorArray
from repro.sim.config import EngineConfig
from repro.sim.warmup import average_activities
from repro.thermal.hotspot import HotSpotModel
from repro.thermal.package import ThermalPackage
from repro.thermal.solver import make_transient_solver
from repro.uarch.interval import DtmActuation, IntervalPerformanceModel
from repro.workloads.workload import Workload

DUAL_CORE_PACKAGE = ThermalPackage(convection_resistance=0.46)
"""Default package for the dual-core die: twice the silicon demands a
better heat sink (0.46 K/W instead of the single-core 1.0 K/W)."""

HOP_STALL_S = 10.0e-6
"""Both cores stall this long when the hopper swaps workloads (context
transfer through the shared L2)."""

_L2_BANKS = ("L2", "L2_left", "L2_mid", "L2_right")


@dataclass
class CoreResult:
    """Per-core outcome of a dual-core run."""

    core: int
    workload: str
    instructions: float
    mean_gating_fraction: float


@dataclass
class MultiCoreResult:
    """Outcome of one dual-core run."""

    duration_s: float
    cores: List[CoreResult]
    violations: int
    max_true_temp_c: float
    hottest_block: str
    swaps: int
    dvs_low_time_s: float
    mean_power_w: float

    @property
    def total_instructions(self) -> float:
        """Chip-wide committed instructions."""
        return sum(core.instructions for core in self.cores)

    @property
    def throughput_ips(self) -> float:
        """Chip-wide instructions per second."""
        return self.total_instructions / self.duration_s

    @property
    def violation_free(self) -> bool:
        """True when the emergency threshold never tripped."""
        return self.violations == 0


class MultiCoreEngine:
    """Runs two workloads on the thermally coupled dual-core die."""

    def __init__(
        self,
        workloads: Sequence[Workload],
        policies: Optional[Sequence[DtmPolicy]] = None,
        hopper: Optional[CoreHopper] = None,
        package: Optional[ThermalPackage] = None,
        thresholds: Optional[ThermalThresholds] = None,
        config: Optional[EngineConfig] = None,
        seed: int = 0,
    ):
        if len(workloads) != len(CORE_INSTANCES):
            raise SimulationError(
                f"need exactly {len(CORE_INSTANCES)} workloads"
            )
        self._workloads = list(workloads)
        self._floorplan = build_dual_core_floorplan()
        self._hotspot = HotSpotModel(
            self._floorplan,
            package if package is not None else DUAL_CORE_PACKAGE,
        )
        self._power = PowerModel(self._floorplan, specs=dual_core_power_specs())
        self._sensors = SensorArray(self._floorplan, seed=seed)
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        self._config = config if config is not None else EngineConfig()
        if policies is None:
            policies = [
                NoDtmPolicy(self._power.technology.vdd_nominal)
                for _ in CORE_INSTANCES
            ]
        if len(policies) != len(CORE_INSTANCES):
            raise SimulationError("need one policy per core")
        self._policies = list(policies)
        self._hopper = hopper
        self._tech = self._power.technology
        self._vf = self._power.vf_curve

    @property
    def hotspot(self) -> HotSpotModel:
        """The shared thermal model."""
        return self._hotspot

    @property
    def floorplan(self):
        """The dual-core floorplan."""
        return self._floorplan

    # --- helpers -----------------------------------------------------------------

    def _core_readings(self, readings: Dict[str, float], core: int) -> Dict[str, float]:
        suffix = f"#{core}"
        return {
            name: value
            for name, value in readings.items()
            if name.endswith(suffix)
        }

    def compute_initial_temperatures(self) -> np.ndarray:
        """Steady state with both workloads running unmanaged."""
        activities = self._chip_activities(
            [average_activities(w) for w in self._workloads]
        )
        temps = {name: 85.0 for name in self._floorplan.block_names}
        vector = None
        for _ in range(40):
            powers = self._power.block_powers(
                activities,
                self._tech.vdd_nominal,
                self._tech.frequency_nominal,
                temps,
            )
            vector = self._hotspot.steady_state_vector(powers)
            mapping = self._hotspot.network.temperatures_as_mapping(vector)
            temps = {n: mapping[n] for n in self._floorplan.block_names}
        return vector

    def _chip_activities(
        self, per_core: Sequence[Dict[str, float]]
    ) -> Dict[str, float]:
        """Map two base-named activity dicts onto the dual-core blocks."""
        chip: Dict[str, float] = {}
        for core, acts in zip(CORE_INSTANCES, per_core):
            for base in CORE_BLOCKS:
                chip[core_block(base, core)] = acts.get(base, 0.0)
        # The shared L2 banks see both cores' traffic.
        l2_demand = min(
            1.0, sum(acts.get("L2", 0.0) for acts in per_core)
        )
        for bank in _L2_BANKS:
            chip[bank] = l2_demand
        return chip

    # --- main loop ---------------------------------------------------------------

    def run(
        self,
        duration_s: float,
        initial: Optional[np.ndarray] = None,
        settle_time_s: float = 0.0,
    ) -> MultiCoreResult:
        """Simulate for ``duration_s`` of measured wall-clock time."""
        if duration_s <= 0.0:
            raise SimulationError("duration must be > 0")
        if initial is None:
            initial = self.compute_initial_temperatures()
        network = self._hotspot.network
        solver = make_transient_solver(
            network,
            np.array(initial, dtype=float),
            self._config.thermal_stepper,
        )
        block_names = list(network.block_names)
        index = {name: network.index_of(name) for name in block_names}

        perf = [
            IntervalPerformanceModel(w.phases, loop=True)
            for w in self._workloads
        ]
        assignment = list(CORE_INSTANCES)  # workload index running on core i
        for policy in self._policies:
            policy.reset()
        if self._hopper is not None:
            self._hopper.reset()

        nominal_v = self._tech.vdd_nominal
        commands = [None, None]
        voltage = nominal_v
        frequency = self._tech.frequency_nominal

        time_s = 0.0
        measuring = settle_time_s == 0.0
        measure_start = 0.0
        instructions = [0.0, 0.0]
        gating_weighted = [0.0, 0.0]
        violations = 0
        swaps = 0
        low_time = 0.0
        energy = 0.0
        max_temp = -1e9
        hottest = block_names[0]
        step_cycles = self._config.thermal_step_cycles

        def temps_mapping() -> Dict[str, float]:
            current = solver.temperatures
            return {name: current[index[name]] for name in block_names}

        while (time_s - measure_start if measuring else 0.0) < duration_s:
            temps = temps_mapping()

            if self._sensors.due(time_s):
                readings = self._sensors.sample(temps, time_s)
                period = self._sensors.sampling_period_s
                for core in CORE_INSTANCES:
                    commands[core] = self._policies[core].update(
                        self._core_readings(readings, core), time_s, period
                    )
                if self._hopper is not None:
                    swap = self._hopper.update(
                        readings, assignment, time_s, period
                    )
                    if swap:
                        assignment.reverse()
                        if measuring:
                            swaps += 1
                        power = self._idle_power(temps)
                        solver.step(network.power_vector(power), HOP_STALL_S)
                        time_s += HOP_STALL_S
                        temps = temps_mapping()
                requested = min(c.voltage for c in commands)
                if abs(requested - voltage) > 1e-12:
                    voltage = requested
                    frequency = self._vf.frequency(voltage)

            # Sensors are due at t = 0, so commands are always set by the
            # first loop iteration.
            f_rel = frequency / self._tech.frequency_nominal
            dt = step_cycles / frequency
            per_core_acts = []
            for core in CORE_INSTANCES:
                command = commands[core]
                actuation = DtmActuation(
                    gating_fraction=command.gating_fraction,
                    relative_frequency=f_rel,
                    clock_enabled_fraction=command.clock_enabled_fraction,
                )
                sample = perf[assignment[core]].advance(step_cycles, actuation)
                per_core_acts.append(sample.activities)
                if measuring:
                    instructions[assignment[core]] += sample.instructions
                    gating_weighted[core] += command.gating_fraction * dt

            powers = self._power.block_powers(
                self._chip_activities(per_core_acts), voltage, frequency, temps
            )
            solver.step(network.power_vector(powers), dt)

            new_temps = solver.temperatures
            step_hot = max(block_names, key=lambda n: new_temps[index[n]])
            step_max = new_temps[index[step_hot]]
            if measuring:
                if step_max > max_temp:
                    max_temp, hottest = step_max, step_hot
                if step_max > self._thresholds.emergency_c:
                    violations += 1
                if voltage < nominal_v - 1e-12:
                    low_time += dt
                energy += sum(powers.values()) * dt
            time_s += dt
            if not measuring and time_s >= settle_time_s:
                measuring = True
                measure_start = time_s

        elapsed = time_s - measure_start
        cores = [
            CoreResult(
                core=core,
                workload=self._workloads[assignment[core]].name,
                instructions=instructions[assignment[core]],
                mean_gating_fraction=gating_weighted[core] / elapsed,
            )
            for core in CORE_INSTANCES
        ]
        return MultiCoreResult(
            duration_s=elapsed,
            cores=cores,
            violations=violations,
            max_true_temp_c=max_temp,
            hottest_block=hottest,
            swaps=swaps,
            dvs_low_time_s=low_time,
            mean_power_w=energy / elapsed,
        )

    def _idle_power(self, temps: Dict[str, float]) -> Dict[str, float]:
        zeros = {name: 0.0 for name in self._floorplan.block_names}
        return self._power.block_powers(
            zeros, self._tech.vdd_nominal, self._tech.frequency_nominal, temps
        )
