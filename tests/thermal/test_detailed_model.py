"""Detailed (peripheral-node) package model."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.floorplan import Block, Floorplan
from repro.thermal import (
    HotSpotModel,
    ThermalPackage,
    build_detailed_thermal_network,
    steady_state,
)
from repro.thermal.rc_model import (
    SINK_NODE,
    SINK_PERIPHERY_NODES,
    SPREADER_NODE,
    SPREADER_PERIPHERY_NODES,
)


@pytest.fixture(scope="module")
def models(floorplan):
    return (
        HotSpotModel(floorplan, detail="block"),
        HotSpotModel(floorplan, detail="full"),
    )


class TestStructure:
    def test_node_count(self, floorplan):
        network = build_detailed_thermal_network(floorplan, ThermalPackage())
        assert network.size == len(floorplan) + 10

    def test_block_names_exclude_package_nodes(self, floorplan):
        network = build_detailed_thermal_network(floorplan, ThermalPackage())
        assert set(network.block_names) == set(floorplan.block_names)

    def test_symmetric_conductance(self, floorplan):
        network = build_detailed_thermal_network(floorplan, ThermalPackage())
        assert np.allclose(network.conductance, network.conductance.T)

    def test_convection_shared_over_five_sink_nodes(self, floorplan):
        network = build_detailed_thermal_network(floorplan, ThermalPackage())
        carriers = [
            i for i, g in enumerate(network.ambient_conductance) if g > 0.0
        ]
        names = {network.node_names[i] for i in carriers}
        assert names == {SINK_NODE, *SINK_PERIPHERY_NODES}
        total = network.ambient_conductance.sum()
        assert total == pytest.approx(1.0)  # 1 / (1.0 K/W)

    def test_periphery_capacitances_positive(self, floorplan):
        network = build_detailed_thermal_network(floorplan, ThermalPackage())
        for name in SPREADER_PERIPHERY_NODES + SINK_PERIPHERY_NODES:
            assert network.capacitance[network.index_of(name)] > 0.0


class TestAgreementWithBlockModel:
    def test_hotspot_within_tenths_of_kelvin(self, models, floorplan):
        simple, full = models
        powers = {name: 1.5 for name in floorplan.block_names}
        t_simple = simple.steady_state(powers)["IntReg"]
        t_full = full.steady_state(powers)["IntReg"]
        assert abs(t_simple - t_full) < 0.5

    def test_block_ordering_preserved(self, models, floorplan):
        simple, full = models
        powers = {name: 1.5 for name in floorplan.block_names}
        ts = simple.steady_state(powers)
        tf = full.steady_state(powers)
        order_simple = sorted(floorplan.block_names, key=ts.get)
        order_full = sorted(floorplan.block_names, key=tf.get)
        # The three hottest blocks are the same in both models.
        assert order_simple[-3:] == order_full[-3:]

    def test_total_power_still_sets_mean_sink_rise(self, floorplan):
        # Energy conservation: all heat leaves through convection, so the
        # ambient-weighted mean sink temperature satisfies the global
        # balance P_total = sum(g_i (T_i - T_amb)).
        network = build_detailed_thermal_network(floorplan, ThermalPackage())
        power = network.power_vector(
            {name: 2.0 for name in floorplan.block_names}
        )
        temps = steady_state(network, power)
        outflow = float(
            np.sum(network.ambient_conductance * (temps - network.ambient_c))
        )
        assert outflow == pytest.approx(2.0 * len(floorplan), rel=1e-9)

    def test_periphery_cooler_than_centre(self, models, floorplan):
        _, full = models
        powers = {name: 1.5 for name in floorplan.block_names}
        temps = full.steady_state(powers)
        for name in SPREADER_PERIPHERY_NODES:
            assert temps[name] < temps[SPREADER_NODE]


class TestFacade:
    def test_rejects_unknown_detail(self, floorplan):
        with pytest.raises(ThermalModelError):
            HotSpotModel(floorplan, detail="ultra")

    def test_transient_runs_on_full_model(self, models, floorplan):
        _, full = models
        solver = full.make_transient()
        power = full.network.power_vector(
            {name: 1.5 for name in floorplan.block_names}
        )
        for _ in range(50):
            temps = solver.step(power, 1e-5)
        assert np.all(np.isfinite(temps))

    def test_block_names_reject_package_prefix(self):
        with pytest.raises(Exception):
            Floorplan([Block("__bad__", 0, 0, 1e-3, 1e-3)])
