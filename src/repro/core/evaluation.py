"""Suite-level evaluation harness.

Runs techniques over the nine-benchmark suite with the paper's protocol:
steady-state initialisation, a settling lead-in with the policy active,
then a fixed instruction budget measured against the no-DTM baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.metrics import mean_slowdown, slowdown_factor
from repro.core.policies import make_policy
from repro.dtm.base import DtmPolicy
from repro.errors import SimulationError
from repro.sim.config import EngineConfig
from repro.sim.engine import SimulationEngine
from repro.sim.results import RunResult
from repro.workloads.spec import build_spec_suite
from repro.workloads.workload import Workload

DEFAULT_INSTRUCTIONS = 20_000_000
"""Default per-benchmark instruction budget (a representative sample, as
the paper's SimPoint windows are; ~7 ms of 3 GHz execution)."""

DEFAULT_SETTLE_TIME_S = 2.0e-3
"""Default settling lead-in before measurement starts."""


@dataclass
class BenchmarkEvaluation:
    """One technique's result on one benchmark."""

    benchmark: str
    policy: str
    run: RunResult
    baseline: RunResult

    @property
    def slowdown(self) -> float:
        """Slowdown factor versus the unmanaged baseline."""
        return slowdown_factor(self.run, self.baseline)


@dataclass
class SuiteEvaluation:
    """One technique's results across the whole suite."""

    policy: str
    dvs_mode: str
    per_benchmark: List[BenchmarkEvaluation] = field(default_factory=list)

    @property
    def slowdowns(self) -> Dict[str, float]:
        """Per-benchmark slowdown factors."""
        return {e.benchmark: e.slowdown for e in self.per_benchmark}

    @property
    def mean_slowdown(self) -> float:
        """Mean slowdown across the suite (the paper's reported figure)."""
        return mean_slowdown([e.slowdown for e in self.per_benchmark])

    @property
    def total_violations(self) -> int:
        """Thermal violations across the suite (must be zero for a valid
        DTM configuration)."""
        return sum(e.run.violations for e in self.per_benchmark)


class _Baselines:
    """Cached no-DTM baselines and initial conditions per benchmark."""

    def __init__(
        self,
        suite: Sequence[Workload],
        instructions: int,
        settle_time_s: float,
        seed: int,
    ):
        self.suite = list(suite)
        self.instructions = instructions
        self.settle_time_s = settle_time_s
        self.seed = seed
        self.initial: Dict[str, np.ndarray] = {}
        self.baseline: Dict[str, RunResult] = {}
        for workload in self.suite:
            engine = SimulationEngine(
                workload, policy=make_policy("none"), seed=seed
            )
            init = engine.compute_initial_temperatures()
            self.initial[workload.name] = init
            self.baseline[workload.name] = engine.run(
                instructions, initial=init.copy(), settle_time_s=settle_time_s
            )


def run_baselines(
    suite: Optional[Sequence[Workload]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    settle_time_s: float = DEFAULT_SETTLE_TIME_S,
    seed: int = 0,
) -> _Baselines:
    """Compute (and cache in the returned object) the no-DTM baselines.

    Reuse one baselines object across many :func:`evaluate_policy` calls:
    the baseline runs and steady-state solves dominate harness cost.
    """
    if suite is None:
        suite = build_spec_suite()
    return _Baselines(suite, instructions, settle_time_s, seed)


def evaluate_policy(
    policy_factory: Callable[[], DtmPolicy],
    baselines: _Baselines,
    dvs_mode: str = "stall",
    engine_config: Optional[EngineConfig] = None,
) -> SuiteEvaluation:
    """Run one technique across the suite.

    Parameters
    ----------
    policy_factory:
        Zero-argument callable returning a *fresh* policy (controller
        state must not leak across benchmarks).
    baselines:
        Output of :func:`run_baselines`.
    dvs_mode:
        ``"stall"`` or ``"ideal"`` (ignored if ``engine_config`` given).
    engine_config:
        Full engine configuration override.
    """
    config = (
        engine_config
        if engine_config is not None
        else EngineConfig(dvs_mode=dvs_mode)
    )
    policy_name = None
    evaluation = SuiteEvaluation(policy="", dvs_mode=config.dvs_mode)
    for workload in baselines.suite:
        policy = policy_factory()
        if policy_name is None:
            policy_name = policy.name
            evaluation.policy = policy_name
        elif policy.name != policy_name:
            raise SimulationError(
                "policy_factory must build the same technique every call"
            )
        engine = SimulationEngine(
            workload, policy=policy, config=config, seed=baselines.seed
        )
        run = engine.run(
            baselines.instructions,
            initial=baselines.initial[workload.name].copy(),
            settle_time_s=baselines.settle_time_s,
        )
        evaluation.per_benchmark.append(
            BenchmarkEvaluation(
                benchmark=workload.name,
                policy=policy.name,
                run=run,
                baseline=baselines.baseline[workload.name],
            )
        )
    return evaluation


def evaluate_techniques(
    names: Sequence[str] = ("FG", "DVS", "PI-Hyb", "Hyb"),
    dvs_mode: str = "stall",
    baselines: Optional[_Baselines] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    settle_time_s: float = DEFAULT_SETTLE_TIME_S,
) -> Dict[str, SuiteEvaluation]:
    """The Figure 4 experiment: all techniques over the full suite."""
    if baselines is None:
        baselines = run_baselines(
            instructions=instructions, settle_time_s=settle_time_s
        )
    return {
        name: evaluate_policy(
            lambda name=name: make_policy(name), baselines, dvs_mode=dvs_mode
        )
        for name in names
    }
