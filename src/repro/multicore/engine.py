"""Dual-core co-simulation engine.

Each core runs its own workload through its own interval performance
model and its own DTM policy; both cores share one thermal RC network (so
a hot neighbour raises your temperature through the silicon and the
package), one sensor array, and -- as on 2004-era dual-core parts -- one
voltage/frequency domain: the chip runs at the *lower* of the two cores'
requested voltages.

An optional :class:`~repro.multicore.hopping.CoreHopper` sits above the
per-core policies and may swap the workload assignment (core hopping);
a swap stalls both cores for the hop time, which is accounted exactly
like execution time -- energy at the idle operating point, DVS-low and
gating time under the commands in force, violation checks included.

The engine implements the :class:`~repro.sim.contract.SimEngine`
contract and composes with the same stack layers as the single-core
engine: compiled workload traces (``REPRO_COMPILED_TRACE``), the expm
stepper with NaN/divergence guards and backward-Euler fallback,
deterministic fault injection via
:attr:`~repro.sim.config.EngineConfig.fault_plan`, and
:mod:`repro.obs` metrics/events.  Constant-power fast-forward is not
used here: with two independently phased workloads plus a hopper, the
chip power vector essentially never holds still long enough for a span
to pay (see docs/ENGINES.md).
"""

from __future__ import annotations

import logging
import warnings
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dtm.base import DtmPolicy
from repro.dtm.none import NoDtmPolicy
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import SimulationError, ThermalViolationError
from repro.multicore.floorplan import (
    CORE_INSTANCES,
    build_dual_core_floorplan,
    core_block,
    dual_core_power_specs,
)
from repro.multicore.hopping import CoreHopper
from repro.floorplan.alpha21364 import CORE_BLOCKS
from repro.obs import events as obs_events
from repro.obs import heartbeat as obs_heartbeat
from repro.obs import metrics as obs_metrics
from repro.obs import runctx as obs_runctx
from repro.power.model import PowerModel
from repro.sensors.array import SensorArray
from repro.sim.config import (
    COMPILED_TRACE_OFF,
    COMPILED_TRACE_VERIFY,
    POWER_PATH_VECTOR,
    EngineConfig,
)
from repro.sim.contract import SimEngine
from repro.sim.warmup import average_activities, leakage_fixed_point
from repro.thermal.hotspot import HotSpotModel
from repro.thermal.package import ThermalPackage
from repro.thermal.solver import make_transient_solver
from repro.uarch.interval import DtmActuation, IntervalPerformanceModel
from repro.workloads.compiler import CompiledIntervalModel, compile_workload
from repro.workloads.workload import Workload

_LOGGER = logging.getLogger("repro.multicore")

DUAL_CORE_PACKAGE = ThermalPackage(convection_resistance=0.46)
"""Default package for the dual-core die: twice the silicon demands a
better heat sink (0.46 K/W instead of the single-core 1.0 K/W)."""

HOP_STALL_S = 10.0e-6
"""Both cores stall this long when the hopper swaps workloads (context
transfer through the shared L2)."""

_L2_BANKS = ("L2", "L2_left", "L2_mid", "L2_right")

# Per-workload activity vectors are emitted in this order: the per-core
# blocks, then the workload's shared-L2 demand as the final entry.
_WORKLOAD_BLOCK_ORDER = tuple(CORE_BLOCKS) + ("L2",)


@dataclass
class CoreResult:
    """Per-core outcome of a dual-core run."""

    core: int
    workload: str
    instructions: float
    mean_gating_fraction: float

    def to_json_dict(self) -> Dict[str, object]:
        """All fields as a JSON-serialisable mapping."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class MultiCoreResult:
    """Outcome of one dual-core run."""

    duration_s: float
    cores: List[CoreResult]
    violations: int
    max_true_temp_c: float
    hottest_block: str
    swaps: int
    dvs_low_time_s: float
    mean_power_w: float
    # Total hop-stall time inside the measured window (defaulted so
    # journals written before this field existed still load).
    stall_time_s: float = 0.0

    journal_kind = "multicore"
    """Journal dispatch tag (see :meth:`~repro.sim.supervisor.
    SweepJournal.record` / :func:`~repro.sim.supervisor.load_journal`)."""

    @property
    def total_instructions(self) -> float:
        """Chip-wide committed instructions."""
        return sum(core.instructions for core in self.cores)

    @property
    def throughput_ips(self) -> float:
        """Chip-wide instructions per second."""
        return self.total_instructions / self.duration_s

    @property
    def violation_free(self) -> bool:
        """True when the emergency threshold never tripped."""
        return self.violations == 0

    def to_json_dict(self) -> Dict[str, object]:
        """All fields as a JSON-serialisable mapping (for the sweep
        journal)."""
        out = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "cores"
        }
        out["cores"] = [core.to_json_dict() for core in self.cores]
        return out

    @staticmethod
    def from_json_dict(data: Dict[str, object]) -> "MultiCoreResult":
        """Rebuild a result from :meth:`to_json_dict` output.

        Unknown keys are ignored so a journal written by a newer
        version still loads; missing keys raise ``TypeError`` as a
        corrupt-journal signal.
        """
        known = {f.name for f in fields(MultiCoreResult) if f.name != "cores"}
        core_known = {f.name for f in fields(CoreResult)}
        cores = [
            CoreResult(**{k: v for k, v in entry.items() if k in core_known})
            for entry in data["cores"]
        ]
        return MultiCoreResult(
            cores=cores,
            **{k: v for k, v in data.items() if k in known},
        )


class MultiCoreEngine(SimEngine):
    """Runs two workloads on the thermally coupled dual-core die.

    Implements the :class:`~repro.sim.contract.SimEngine` contract:
    :meth:`iter_run` yields ``(solver, power, dt, count)`` thermal-step
    requests serviced by the shared driver, so the dual-core loop
    composes with the same fault/guard/observability stack as the
    single-core engine.  The inner loop is array-native like the
    single-core one: per-workload activity vectors (compiled from the
    phase schedule when ``REPRO_COMPILED_TRACE`` is on) are scattered
    into chip block order, power is evaluated with
    :meth:`~repro.power.model.PowerModel.block_powers_vector`, and the
    ``power_path="mapping"`` regression mode replays the original
    per-block dict pipeline.
    """

    def __init__(
        self,
        workloads: Sequence[Workload],
        policies: Optional[Sequence[DtmPolicy]] = None,
        hopper: Optional[CoreHopper] = None,
        package: Optional[ThermalPackage] = None,
        thresholds: Optional[ThermalThresholds] = None,
        config: Optional[EngineConfig] = None,
        seed: int = 0,
        hop_stall_s: float = HOP_STALL_S,
    ):
        if len(workloads) != len(CORE_INSTANCES):
            raise SimulationError(
                f"need exactly {len(CORE_INSTANCES)} workloads"
            )
        if hop_stall_s < 0.0:
            raise SimulationError("hop stall must be >= 0")
        self._workloads = list(workloads)
        self._floorplan = build_dual_core_floorplan()
        self._hotspot = HotSpotModel(
            self._floorplan,
            package if package is not None else DUAL_CORE_PACKAGE,
        )
        self._power = PowerModel(self._floorplan, specs=dual_core_power_specs())
        self._config = config if config is not None else EngineConfig()
        self._seed = seed
        self._hop_stall_s = hop_stall_s
        # A fault plan's sensor degradation applies to targeted runs,
        # mirroring the single-core engine.
        plan = self._config.fault_plan
        sensor_faults = (
            plan.sensor_faults
            if plan is not None and plan.targets(seed)
            else ()
        )
        self._sensors = SensorArray(
            self._floorplan, seed=seed, faults=sensor_faults or None
        )
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        if policies is None:
            policies = [
                NoDtmPolicy(self._power.technology.vdd_nominal)
                for _ in CORE_INSTANCES
            ]
        if len(policies) != len(CORE_INSTANCES):
            raise SimulationError("need one policy per core")
        self._policies = list(policies)
        self._hopper = hopper
        self._tech = self._power.technology
        self._vf = self._power.vf_curve
        network = self._hotspot.network
        if self._power.block_names != network.block_names:
            raise SimulationError(
                "power model and thermal network disagree on the block set"
            )
        # Name -> index translation, computed exactly once per engine.
        self._block_names = network.block_names
        self._block_pos: Dict[str, int] = {
            name: i for i, name in enumerate(self._block_names)
        }
        self._node_idx = network.block_node_indices
        # Chip-vector positions of each core's blocks (in
        # _WORKLOAD_BLOCK_ORDER's per-core prefix) and of the shared L2
        # banks, for scattering per-workload activity vectors.
        self._core_pos = [
            np.array(
                [self._block_pos[core_block(b, core)] for b in CORE_BLOCKS],
                dtype=np.intp,
            )
            for core in CORE_INSTANCES
        ]
        self._l2_pos = np.array(
            [self._block_pos[bank] for bank in _L2_BANKS], dtype=np.intp
        )

    @property
    def hotspot(self) -> HotSpotModel:
        """The shared thermal model."""
        return self._hotspot

    @property
    def floorplan(self):
        """The dual-core floorplan."""
        return self._floorplan

    @property
    def config(self) -> EngineConfig:
        """Engine configuration."""
        return self._config

    def reset(self) -> None:
        """Restore run-to-run mutable state to construction values.

        Solvers and performance models are rebuilt inside every
        :meth:`iter_run`; policies, the hopper and the sensor array's
        noise streams persist, so all three are rewound here to make a
        repeated run bit-identical.
        """
        for policy in self._policies:
            policy.reset()
        if self._hopper is not None:
            self._hopper.reset()
        self._sensors.reset()

    # --- helpers -----------------------------------------------------------------

    def _core_readings(self, readings: Dict[str, float], core: int) -> Dict[str, float]:
        suffix = f"#{core}"
        return {
            name: value
            for name, value in readings.items()
            if name.endswith(suffix)
        }

    def compute_initial_temperatures(self) -> np.ndarray:
        """Steady state with both workloads running unmanaged.

        Converges the leakage/temperature fixed point to tolerance
        (shared with the single-core warmup path); a non-converged
        state -- likely thermal runaway -- is used anyway but loudly:
        a warning, a structured event and an engine event all fire.
        """
        activities = self._chip_activities(
            [average_activities(w) for w in self._workloads]
        )
        vector, converged, iterations = leakage_fixed_point(
            lambda temps: self._power.block_powers(
                activities,
                self._tech.vdd_nominal,
                self._tech.frequency_nominal,
                temps,
            ),
            self._hotspot,
        )
        if not converged:
            message = (
                f"dual-core leakage/temperature fixed point did not "
                f"converge in {iterations} iterations; the initial "
                f"condition may be inaccurate (thermal runaway?)"
            )
            _LOGGER.warning(message)
            warnings.warn(message, RuntimeWarning, stacklevel=2)
            obs_events.emit(
                "multicore.warmup_nonconverged",
                iterations=iterations,
                workloads="+".join(w.name for w in self._workloads),
            )
            self._emit("warmup.nonconverged", 0.0, iterations=iterations)
        return vector

    def _chip_activities(
        self, per_core: Sequence[Dict[str, float]]
    ) -> Dict[str, float]:
        """Map two base-named activity dicts onto the dual-core blocks."""
        chip: Dict[str, float] = {}
        for core, acts in zip(CORE_INSTANCES, per_core):
            for base in CORE_BLOCKS:
                chip[core_block(base, core)] = acts.get(base, 0.0)
        # The shared L2 banks see both cores' traffic.
        l2_demand = min(
            1.0, sum(acts.get("L2", 0.0) for acts in per_core)
        )
        for bank in _L2_BANKS:
            chip[bank] = l2_demand
        return chip

    # --- main loop ---------------------------------------------------------------

    def run(
        self,
        duration_s: float,
        initial: Optional[np.ndarray] = None,
        settle_time_s: float = 0.0,
    ) -> MultiCoreResult:
        """Simulate for ``duration_s`` of measured wall-clock time."""
        return super().run(duration_s, initial, settle_time_s)

    def iter_run(
        self,
        duration_s: float,
        initial: Optional[np.ndarray] = None,
        settle_time_s: float = 0.0,
    ):
        """Generator form of :meth:`run` under the engine contract.

        Yields ``(solver, power, dt, count)`` thermal-step requests and
        expects the stepped node-temperature vector back; the
        :class:`MultiCoreResult` is the generator's return value.
        """
        if duration_s <= 0.0:
            raise SimulationError("duration must be > 0")
        if settle_time_s < 0.0:
            raise SimulationError("settle time must be >= 0")
        if initial is None:
            initial = self.compute_initial_temperatures()
        network = self._hotspot.network
        solver = make_transient_solver(
            network,
            np.array(initial, dtype=float, copy=True),
            self._config.thermal_stepper,
        )
        block_names = self._block_names
        n_blocks = len(block_names)
        node_idx = self._node_idx
        core_pos = self._core_pos
        l2_pos = self._l2_pos
        l2_slot = len(CORE_BLOCKS)  # L2 demand index in a workload vector

        use_vector = self._config.power_path == POWER_PATH_VECTOR
        trace_mode = self._config.resolved_compiled_trace()
        compiled = use_vector and trace_mode != COMPILED_TRACE_OFF
        verify_compiled = trace_mode == COMPILED_TRACE_VERIFY
        if compiled:
            perf: List[IntervalPerformanceModel] = [
                CompiledIntervalModel(
                    compile_workload(w, _WORKLOAD_BLOCK_ORDER),
                    loop=True,
                    verify=verify_compiled,
                )
                for w in self._workloads
            ]
        else:
            perf = [
                IntervalPerformanceModel(w.phases, loop=True)
                for w in self._workloads
            ]

        assignment = list(CORE_INSTANCES)  # workload index running on core i
        for policy in self._policies:
            policy.reset()
        if self._hopper is not None:
            self._hopper.reset()
        self._emit(
            "run.start",
            0.0,
            duration_s=duration_s,
            settle_time_s=settle_time_s,
        )

        nominal_v = self._tech.vdd_nominal
        commands = [None, None]
        voltage = nominal_v
        frequency = self._tech.frequency_nominal

        time_s = 0.0
        measuring = settle_time_s == 0.0
        measure_start = 0.0
        instructions = [0.0, 0.0]
        gating_weighted = [0.0, 0.0]
        violations = 0
        swaps = 0
        low_time = 0.0
        stall_s = 0.0
        energy = 0.0
        max_temp = -1e9
        hottest = block_names[0]
        sensor_samples = 0
        exec_steps = 0
        step_cycles = self._config.thermal_step_cycles
        hop_stall = self._hop_stall_s
        raise_on_violation = self._config.raise_on_violation
        emergency_c = self._thresholds.emergency_c

        # Hoisted bound methods (same rationale as the single-core loop).
        sensors_due = self._sensors.due
        sensors_sample = self._sensors.sample
        sampling_period_s = self._sensors.sampling_period_s
        vf_frequency = self._vf.frequency
        f_nominal = self._tech.frequency_nominal
        power_vector_fn = self._power.block_powers_vector
        vector_sensors = (
            use_vector
            and self._sensors.vector_eligible
            and tuple(self._sensors.block_names) == tuple(block_names)
        )
        sensors_sample_vector = (
            self._sensors.sample_vector if vector_sensors else None
        )

        # Deterministic solver-corruption fault, counting execution
        # steps only (stall substeps excluded), like the single-core
        # engine and the fault-plan documentation.
        plan = self._config.fault_plan
        if (
            plan is not None
            and plan.targets(self._seed)
            and plan.corrupt_power_at_step is not None
        ):
            fault_corrupt_step: Optional[int] = plan.corrupt_power_at_step
            fault_poison = plan.poison
        else:
            fault_corrupt_step = None
            fault_poison = 0.0

        # Reused buffers: block temperatures gathered per step with
        # np.take(..., out=), chip activity and node power vectors
        # overwritten in place.
        block_temps = np.empty(n_blocks)
        solver.temperatures.take(node_idx, out=block_temps)
        chip_acts = np.zeros(n_blocks)
        zero_acts = np.zeros(n_blocks)
        power_buffer = np.zeros(network.size)
        # Interpreted-trace vector mode: per-workload id-keyed cache of
        # {block: activity} dict -> _WORKLOAD_BLOCK_ORDER vector (the
        # interval model memoizes its dicts, so hits dominate).
        act_caches: List[Dict[int, tuple]] = [{} for _ in CORE_INSTANCES]
        # Per-core actuation reuse while the command and frequency hold.
        actuations: List[Optional[DtmActuation]] = [None, None]
        actuation_cmds = [None, None]
        actuation_f_rel = -1.0

        def block_temps_mapping() -> Dict[str, float]:
            return {
                name: float(block_temps[i])
                for i, name in enumerate(block_names)
            }

        def account_thermal(dt_acct: float, power_sum_w: float) -> None:
            """Measured-window statistics shared by execution steps and
            hop-stall substeps (which the accounting previously skipped
            entirely -- energy, DVS-low time, gating time and even
            emergency checks were all silently missing for the stall
            interval while ``elapsed`` included it)."""
            nonlocal max_temp, hottest, violations, low_time, energy
            step_max = float(block_temps.max())
            if step_max > max_temp:
                max_temp = step_max
                hottest = block_names[int(np.argmax(block_temps))]
            if step_max > emergency_c:
                violations += 1
                if raise_on_violation:
                    raise ThermalViolationError(
                        step_max,
                        emergency_c,
                        time_s,
                        block_names[int(np.argmax(block_temps))],
                    )
            if voltage < nominal_v - 1e-12:
                low_time += dt_acct
            energy += power_sum_w * dt_acct

        def idle_step_power():
            """Node power vector (and block total) with zero switching
            activity at the current operating point."""
            if use_vector:
                blocks_w = power_vector_fn(
                    zero_acts, voltage, frequency, block_temps, check=False
                )
                power_buffer[node_idx] = blocks_w
                return power_buffer, float(blocks_w.sum())
            zeros = {name: 0.0 for name in block_names}
            powers = self._power.block_powers(
                zeros, voltage, frequency, block_temps_mapping()
            )
            return network.power_vector(powers), float(sum(powers.values()))

        def hop_stall_substep(dt_sub: float):
            """Advance the thermal state through a hop stall at idle
            power, with full accounting: the interval is inside the
            measured window, so it contributes energy, DVS-low time and
            per-core gating time under the commands in force, and its
            temperatures are checked like any other step's."""
            nonlocal time_s, stall_s
            power, power_sum = idle_step_power()
            stepped = yield (solver, power, dt_sub, 1)
            stepped.take(node_idx, out=block_temps)
            time_s += dt_sub
            if measuring:
                stall_s += dt_sub
                account_thermal(dt_sub, power_sum)
                for core in CORE_INSTANCES:
                    gating_weighted[core] += (
                        commands[core].gating_fraction * dt_sub
                    )

        def acts_vector(core: int, sample) -> np.ndarray:
            """The step's activity vector in _WORKLOAD_BLOCK_ORDER."""
            if compiled:
                return sample.acts
            acts_map = sample.activities
            cache = act_caches[assignment[core]]
            entry = cache.get(id(acts_map))
            if entry is not None and entry[0] is acts_map:
                return entry[1]
            vec = np.zeros(l2_slot + 1)
            for b, base in enumerate(_WORKLOAD_BLOCK_ORDER):
                vec[b] = acts_map.get(base, 0.0)
            if len(cache) >= 2048:
                cache.clear()
            cache[id(acts_map)] = (acts_map, vec)
            return vec

        # Progress heartbeat: captured once per run; heartbeat-off cost
        # is one ``is not None`` compare per sensor sample.  This engine
        # measures progress in simulated seconds, not instructions.
        hb_pub = obs_heartbeat.active()
        hb_publish = hb_pub.publish if hb_pub is not None else None

        while (time_s - measure_start if measuring else 0.0) < duration_s:
            # --- sensing, policy, hopping ----------------------------------
            if sensors_due(time_s):
                sensor_samples += 1
                if hb_publish is not None:
                    cmd0, cmd1 = commands
                    hb_publish(
                        time_s - measure_start if measuring else 0.0,
                        time_s,
                        exec_steps,
                        max_temp,
                        voltage < nominal_v - 1e-12
                        or (cmd0 is not None and cmd0.gating_fraction > 0.0)
                        or (cmd1 is not None and cmd1.gating_fraction > 0.0),
                    )
                if sensors_sample_vector is not None:
                    readings = sensors_sample_vector(block_temps, time_s)
                else:
                    readings = sensors_sample(block_temps_mapping(), time_s)
                for core in CORE_INSTANCES:
                    commands[core] = self._policies[core].update(
                        self._core_readings(readings, core),
                        time_s,
                        sampling_period_s,
                    )
                if self._hopper is not None:
                    swap = self._hopper.update(
                        readings, assignment, time_s, sampling_period_s
                    )
                    if swap:
                        assignment.reverse()
                        if measuring:
                            swaps += 1
                        self._emit(
                            "multicore.swap",
                            time_s,
                            assignment=tuple(assignment),
                        )
                        if hop_stall > 0.0:
                            yield from hop_stall_substep(hop_stall)
                requested = min(c.voltage for c in commands)
                if abs(requested - voltage) > 1e-12:
                    voltage = requested
                    frequency = vf_frequency(voltage)

            # Sensors are due at t = 0, so commands are always set by the
            # first loop iteration.
            f_rel = frequency / f_nominal
            if f_rel != actuation_f_rel:
                actuation_cmds = [None, None]
                actuation_f_rel = f_rel
            dt = step_cycles / frequency
            step_instr = [0.0, 0.0]
            if use_vector:
                # Scatter both cores' activity vectors into chip block
                # order; the shared L2 banks see the sum of both cores'
                # L2 demand (min-clamped to 1), exactly like the
                # mapping path's dict assembly.
                l2_demand = 0.0
                for core in CORE_INSTANCES:
                    command = commands[core]
                    if command is not actuation_cmds[core]:
                        actuations[core] = DtmActuation(
                            gating_fraction=command.gating_fraction,
                            relative_frequency=f_rel,
                            clock_enabled_fraction=(
                                command.clock_enabled_fraction
                            ),
                        )
                        actuation_cmds[core] = command
                    sample = perf[assignment[core]].advance(
                        step_cycles, actuations[core]
                    )
                    step_instr[core] = sample.instructions
                    acts = acts_vector(core, sample)
                    chip_acts[core_pos[core]] = acts[:l2_slot]
                    l2_demand += acts[l2_slot]
                chip_acts[l2_pos] = min(1.0, l2_demand)
                blocks_w = power_vector_fn(
                    chip_acts, voltage, frequency, block_temps, check=False
                )
                power_buffer[node_idx] = blocks_w
                step_power = power_buffer
                power_sum = float(blocks_w.sum())
            else:
                per_core_acts = []
                for core in CORE_INSTANCES:
                    command = commands[core]
                    if command is not actuation_cmds[core]:
                        actuations[core] = DtmActuation(
                            gating_fraction=command.gating_fraction,
                            relative_frequency=f_rel,
                            clock_enabled_fraction=(
                                command.clock_enabled_fraction
                            ),
                        )
                        actuation_cmds[core] = command
                    sample = perf[assignment[core]].advance(
                        step_cycles, actuations[core]
                    )
                    step_instr[core] = sample.instructions
                    per_core_acts.append(sample.activities)
                powers = self._power.block_powers(
                    self._chip_activities(per_core_acts),
                    voltage,
                    frequency,
                    block_temps_mapping(),
                )
                step_power = network.power_vector(powers)
                power_sum = float(sum(powers.values()))

            if (
                fault_corrupt_step is not None
                and exec_steps == fault_corrupt_step
            ):
                # Poison a copy: the shared power buffer must stay
                # clean for any later (post-recovery) steps.
                step_power = np.array(step_power, dtype=float, copy=True)
                step_power[0] = fault_poison
            exec_steps += 1

            temps_vec = yield (solver, step_power, dt, 1)
            temps_vec.take(node_idx, out=block_temps)

            # --- accounting ------------------------------------------------
            if measuring:
                for core in CORE_INSTANCES:
                    instructions[assignment[core]] += step_instr[core]
                    gating_weighted[core] += (
                        commands[core].gating_fraction * dt
                    )
                account_thermal(dt, power_sum)
            time_s += dt
            if not measuring and time_s >= settle_time_s:
                measuring = True
                measure_start = time_s

        elapsed = time_s - measure_start
        cores = [
            CoreResult(
                core=core,
                workload=self._workloads[assignment[core]].name,
                instructions=instructions[assignment[core]],
                mean_gating_fraction=gating_weighted[core] / elapsed,
            )
            for core in CORE_INSTANCES
        ]
        if obs_metrics.enabled():
            # One batch publish per run, mirroring the single-core
            # engine's telemetry contract.
            counters = {
                "engine.runs": 1.0,
                "engine.exec_steps": float(exec_steps),
                "engine.sensor_samples": float(sensor_samples),
                "engine.violations": float(violations),
                "multicore.swaps": float(swaps),
            }
            if solver.fallback_active:
                counters["thermal.fallback_runs"] = 1.0
            registry = obs_metrics.REGISTRY
            for name, value in counters.items():
                registry.counter(name).inc(value)
            obs_runctx.add_metrics(counters)
            obs_runctx.add_metric("multicore.stall_s", stall_s)
            obs_events.emit(
                "engine.run_complete",
                benchmark="+".join(w.name for w in self._workloads),
                policy="+".join(p.name for p in self._policies),
                instructions=float(sum(instructions)),
                elapsed_s=elapsed,
                violations=violations,
                swaps=swaps,
                fallback_active=bool(solver.fallback_active),
            )
        self._emit(
            "run.complete",
            time_s,
            violations=violations,
            swaps=swaps,
            fallback_active=bool(solver.fallback_active),
        )
        return MultiCoreResult(
            duration_s=elapsed,
            cores=cores,
            violations=violations,
            max_true_temp_c=max_temp,
            hottest_block=hottest,
            swaps=swaps,
            dvs_low_time_s=low_time,
            mean_power_w=energy / elapsed,
            stall_time_s=stall_s,
        )
