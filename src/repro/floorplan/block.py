"""Rectangular floorplan blocks.

Blocks are axis-aligned rectangles in die coordinates (metres), with the
origin at the lower-left corner of the die.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FloorplanError

_EDGE_TOLERANCE = 1e-9
"""Geometric slack (metres) below which coordinates are considered equal."""


@dataclass(frozen=True)
class Block:
    """One rectangular microarchitectural block on the die.

    Parameters
    ----------
    name:
        Unique block identifier, e.g. ``"IntReg"``.
    x, y:
        Lower-left corner in metres.
    width, height:
        Extents in metres; must be strictly positive.
    """

    name: str
    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if not self.name:
            raise FloorplanError("block name must be non-empty")
        if self.name.startswith("__"):
            raise FloorplanError(
                f"block name {self.name!r} may not start with '__' "
                f"(reserved for thermal package nodes)"
            )
        if self.width <= 0 or self.height <= 0:
            raise FloorplanError(
                f"block {self.name!r} has non-positive extent "
                f"({self.width} x {self.height})"
            )
        if self.x < 0 or self.y < 0:
            raise FloorplanError(
                f"block {self.name!r} has negative origin ({self.x}, {self.y})"
            )

    # --- derived geometry ---------------------------------------------------

    @property
    def right(self) -> float:
        """x coordinate of the right edge (metres)."""
        return self.x + self.width

    @property
    def top(self) -> float:
        """y coordinate of the top edge (metres)."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Block area in m^2."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """(x, y) of the block centre in metres."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    # --- relations to other blocks -------------------------------------------

    def overlaps(self, other: "Block") -> bool:
        """True if the two block interiors intersect (shared edges do not
        count as overlap)."""
        return (
            self.x < other.right - _EDGE_TOLERANCE
            and other.x < self.right - _EDGE_TOLERANCE
            and self.y < other.top - _EDGE_TOLERANCE
            and other.y < self.top - _EDGE_TOLERANCE
        )

    def shared_edge_length(self, other: "Block") -> float:
        """Length of the edge shared with ``other`` (metres).

        Returns 0.0 when the blocks do not abut.  Two blocks abut when one
        block's edge coincides with the other's and their projections onto
        that edge overlap over a positive length.
        """
        # Vertical shared edge (left/right neighbours).
        if (
            abs(self.right - other.x) <= _EDGE_TOLERANCE
            or abs(other.right - self.x) <= _EDGE_TOLERANCE
        ):
            length = min(self.top, other.top) - max(self.y, other.y)
            if length > _EDGE_TOLERANCE:
                return length
        # Horizontal shared edge (top/bottom neighbours).
        if (
            abs(self.top - other.y) <= _EDGE_TOLERANCE
            or abs(other.top - self.y) <= _EDGE_TOLERANCE
        ):
            length = min(self.right, other.right) - max(self.x, other.x)
            if length > _EDGE_TOLERANCE:
                return length
        return 0.0

    def center_distance(self, other: "Block") -> float:
        """Euclidean distance between block centres (metres)."""
        (cx1, cy1), (cx2, cy2) = self.center, other.center
        return ((cx1 - cx2) ** 2 + (cy1 - cy2) ** 2) ** 0.5
