"""Ablation A7: activity migration on the duplicated-register-file
floorplan.

Paper, Section 2: migration is excluded over "the cost-benefit concerns
of adding extra hardware".  This bench prices the trade on the migration
floorplan variant (spare register file in the cool corner): migration's
slowdown against DVS's on the same chip, plus the standing cost the spare
structure adds to total power.
"""

from _helpers import bench_instructions, save_table

from repro.analysis import render_table
from repro.core.metrics import mean_slowdown
from repro.dtm import DvsPolicy, MigrationPolicy, NoDtmPolicy
from repro.floorplan import build_migration_floorplan
from repro.power import PowerModel, migration_power_specs
from repro.sim import SimulationEngine
from repro.workloads import build_spec_suite

SETTLE = 2.0e-3


def _run() -> str:
    floorplan = build_migration_floorplan()
    power = PowerModel(floorplan, specs=migration_power_specs())
    instructions = bench_instructions()
    rows = []
    am_slow, dvs_slow = [], []
    am_viol = dvs_viol = 0
    for workload in build_spec_suite():
        engine = SimulationEngine(
            workload, policy=NoDtmPolicy(), floorplan=floorplan,
            power_model=power,
        )
        init = engine.compute_initial_temperatures()
        base = engine.run(
            instructions, initial=init.copy(), settle_time_s=SETTLE
        )
        am = SimulationEngine(
            workload, policy=MigrationPolicy(), floorplan=floorplan,
            power_model=power,
        ).run(instructions, initial=init.copy(), settle_time_s=SETTLE)
        dvs = SimulationEngine(
            workload, policy=DvsPolicy(), floorplan=floorplan,
            power_model=power,
        ).run(instructions, initial=init.copy(), settle_time_s=SETTLE)
        am_ratio = am.elapsed_s / base.elapsed_s
        dvs_ratio = dvs.elapsed_s / base.elapsed_s
        am_slow.append(am_ratio)
        dvs_slow.append(dvs_ratio)
        am_viol += am.violations
        dvs_viol += dvs.violations
        rows.append(
            [workload.name, am_ratio, am.migrations, dvs_ratio]
        )
    rows.append(["MEAN", mean_slowdown(am_slow), "", mean_slowdown(dvs_slow)])
    return render_table(
        ["benchmark", "AM slowdown", "migrations", "DVS slowdown"],
        rows,
        title="A7: activity migration vs DVS on the spare-register-file "
              f"floorplan (violations: AM {am_viol}, DVS {dvs_viol})",
    )


def test_a7_activity_migration(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("a7_activity_migration", table)
