"""Chaos smoke: injected harness faults must not change sweep results.

The invariant gated here is the whole point of the resilience layer --
every run is seeded from its spec alone, so a run that was crashed,
corrupted, timed out, or resumed from a journal must converge to the
bit-identical result of a fault-free sweep.  A small figure-3b-style
grid (benchmarks x policies) is driven through ``run_many`` with one
worker killed and one solver step poisoned, and the healed outcomes are
compared field-by-field against the clean reference.
"""

import pytest

from repro.sim import (
    EngineConfig,
    FaultPlan,
    RunSpec,
    load_journal,
    run_many,
    spec_digest,
)

FAST_N = 1_500_000
SETTLE = 1.0e-4
GRID = [
    ("gcc", "FG"),
    ("gcc", "DVS"),
    ("gzip", "FG"),
    ("gzip", "DVS"),
]

RESULT_FIELDS = (
    "benchmark",
    "policy",
    "instructions",
    "elapsed_s",
    "cycles",
    "violations",
    "max_true_temp_c",
    "hottest_block",
    "time_above_trigger_s",
    "dvs_switches",
    "stall_time_s",
    "mean_power_w",
)


def _spec(index, plan=None):
    benchmark, policy = GRID[index]
    config = EngineConfig(fault_plan=plan) if plan is not None else None
    return RunSpec(
        workload=benchmark,
        policy=policy,
        instructions=FAST_N,
        settle_time_s=SETTLE,
        seed=index,
        engine_config=config,
    )


def _clean_specs():
    return [_spec(i) for i in range(len(GRID))]


def _chaos_specs():
    # One spec kills its pool worker, another poisons a solver step with
    # NaN power; both are transient harness faults that the supervisor
    # must heal by re-running the spec fault-free.
    plans = {
        1: FaultPlan(crash_worker=True),
        2: FaultPlan(corrupt_power_at_step=5, corruption="nan"),
    }
    return [_spec(i, plans.get(i)) for i in range(len(GRID))]


def _as_tuple(result):
    return tuple(getattr(result, field) for field in RESULT_FIELDS)


@pytest.fixture(scope="module")
def reference():
    """Fault-free sweep, serial run_one semantics for every spec.

    Pinned to the per-run path: healed chaos sweeps execute per spec
    (fault plans opt out of the lockstep sweep default), and the
    bit-identity claim only holds against the same execution mode.
    """
    return [_as_tuple(r) for r in run_many(_clean_specs(), lockstep=False)]


class TestChaosInvariant:
    def test_faulty_pool_sweep_matches_fault_free(self, reference):
        healed = run_many(
            _chaos_specs(),
            processes=2,
            timeout_s=120.0,
            retries=2,
            backoff_s=0.0,
        )
        assert [_as_tuple(r) for r in healed] == reference

    def test_faulty_serial_sweep_matches_fault_free(self, reference):
        healed = run_many(_chaos_specs(), retries=2, backoff_s=0.0)
        assert [_as_tuple(r) for r in healed] == reference

    def test_unaffected_specs_do_not_pay_for_the_faulty_ones(self, reference):
        # Specs without a fault plan digest identically to the clean
        # grid, so a journal written during the chaos sweep doubles as
        # the clean sweep's journal for those entries.
        clean, chaos = _clean_specs(), _chaos_specs()
        for i in (0, 3):
            assert spec_digest(clean[i]) == spec_digest(chaos[i])
        for i in (1, 2):
            assert spec_digest(clean[i]) != spec_digest(chaos[i])


class TestResumeAfterKill:
    def test_resume_reexecutes_only_unfinished_specs(
        self, tmp_path, reference
    ):
        path = tmp_path / "sweep.jsonl"
        specs = _clean_specs()
        # Per-run path throughout: this test counts run_one calls.
        run_many(specs, journal=str(path), lockstep=False)

        # Simulate the sweep process dying after two finishes: keep the
        # journal's first two lines, then resume the same grid.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        finished = {
            entry for entry in load_journal(path)
        }

        import repro.sim.batch as batch

        executed = []
        original = batch.run_one

        def counting_run_one(spec):
            executed.append(spec_digest(spec))
            return original(spec)

        try:
            batch.run_one = counting_run_one
            resumed = run_many(specs, resume=str(path), lockstep=False)
        finally:
            batch.run_one = original

        assert [_as_tuple(r) for r in resumed] == reference
        assert len(executed) == len(specs) - 2
        assert finished.isdisjoint(executed)
        # The resumed finishes were appended: the journal is now whole.
        assert len(load_journal(path)) == len(specs)
