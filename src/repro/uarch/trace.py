"""Synthetic micro-op trace generation.

Traces substitute for the paper's SPEC CPU2000 Alpha binaries (see
DESIGN.md).  A :class:`TraceParameters` bundle describes a program phase
statistically -- op mix, dependency distances, data working set, code
footprint, branch behaviour -- and :class:`TraceGenerator` expands it into a
deterministic, seedable stream of micro-ops.  Cache miss rates and branch
mispredict rates are *not* inputs: they emerge when the stream meets the
structural caches and the gshare predictor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import WorkloadError
from repro.uarch.isa import OpClass

_CACHE_LINE = 64
"""Address granularity for streaming accesses (bytes)."""


@dataclass(frozen=True)
class MicroOp:
    """One dynamic micro-op.

    ``src_distances`` give register dependencies as distances (in dynamic
    micro-ops) back to each producer; the pipeline resolves them against its
    in-flight window.
    """

    seq: int
    op_class: OpClass
    src_distances: Tuple[int, ...]
    pc: int
    address: Optional[int] = None
    taken: bool = False


@dataclass(frozen=True)
class TraceParameters:
    """Statistical description of one program phase.

    Parameters
    ----------
    op_mix:
        Relative weights per :class:`OpClass`; normalised internally.
    dep_distance_mean:
        Mean of the geometric distribution of producer distances; small
        values mean long dependence chains (low ILP), large values mean
        abundant ILP.
    src_count_mean:
        Average number of register sources per op (0..2).
    working_set_bytes:
        Span of data addresses; larger than the D-cache creates misses.
    sequential_fraction:
        Fraction of data accesses that stream sequentially (prefetch
        friendly) rather than striking randomly into the working set.
    code_footprint_bytes:
        Static code span containing the program's loops; larger than the
        I-cache creates instruction misses on loop changes.
    loop_size_bytes:
        Size of one inner loop body; the PC streams through it and wraps.
    loop_iterations_mean:
        Average iterations spent in a loop before jumping to another one.
    branch_predictability:
        In [0.5, 1]: per-site taken bias strength; 1.0 makes every branch
        site fully biased (easy to predict), 0.5 makes outcomes coin flips.
    """

    op_mix: Mapping[OpClass, float] = field(
        default_factory=lambda: {
            OpClass.IALU: 0.45,
            OpClass.IMUL: 0.02,
            OpClass.LOAD: 0.24,
            OpClass.STORE: 0.12,
            OpClass.BRANCH: 0.15,
            OpClass.FADD: 0.01,
            OpClass.FMUL: 0.01,
        }
    )
    dep_distance_mean: float = 6.0
    src_count_mean: float = 1.3
    working_set_bytes: int = 256 * 1024
    sequential_fraction: float = 0.6
    code_footprint_bytes: int = 48 * 1024
    loop_size_bytes: int = 512
    loop_iterations_mean: float = 40.0
    branch_predictability: float = 0.92

    def __post_init__(self) -> None:
        if not self.op_mix:
            raise WorkloadError("op mix must be non-empty")
        if any(weight < 0.0 for weight in self.op_mix.values()):
            raise WorkloadError("op mix weights must be >= 0")
        if sum(self.op_mix.values()) <= 0.0:
            raise WorkloadError("op mix weights must sum to > 0")
        if self.dep_distance_mean < 1.0:
            raise WorkloadError("dep_distance_mean must be >= 1")
        if not 0.0 <= self.src_count_mean <= 2.0:
            raise WorkloadError("src_count_mean must be in [0, 2]")
        if self.working_set_bytes < _CACHE_LINE:
            raise WorkloadError("working set must be at least one cache line")
        if not 0.0 <= self.sequential_fraction <= 1.0:
            raise WorkloadError("sequential_fraction must be in [0, 1]")
        if self.code_footprint_bytes < 64:
            raise WorkloadError("code footprint must be at least 64 bytes")
        if not 64 <= self.loop_size_bytes <= self.code_footprint_bytes:
            raise WorkloadError(
                "loop size must be in [64, code_footprint_bytes]"
            )
        if self.loop_iterations_mean < 1.0:
            raise WorkloadError("loop_iterations_mean must be >= 1")
        if not 0.5 <= self.branch_predictability <= 1.0:
            raise WorkloadError("branch_predictability must be in [0.5, 1]")


class TraceGenerator:
    """Deterministic, seedable stream of :class:`MicroOp`.

    The same ``(parameters, seed)`` pair always produces the same stream,
    which keeps every experiment in the repository reproducible.
    """

    def __init__(self, parameters: TraceParameters, seed: int = 0):
        self._params = parameters
        self._rng = random.Random(seed)
        total = sum(parameters.op_mix.values())
        self._classes = list(parameters.op_mix.keys())
        self._weights = [parameters.op_mix[c] / total for c in self._classes]
        self._seq = 0
        self._loop_base = 0
        self._loop_offset = 0
        self._iterations_left = max(1, round(parameters.loop_iterations_mean))
        self._stream_pointer = 0
        # Per-site taken probabilities, drawn lazily: a site is "biased"
        # toward taken or not-taken with strength set by
        # branch_predictability.
        self._site_bias: Dict[int, float] = {}
        self._geom_p = 1.0 / parameters.dep_distance_mean

    @property
    def parameters(self) -> TraceParameters:
        """The phase statistics the stream is drawn from."""
        return self._params

    @property
    def generated(self) -> int:
        """Number of micro-ops generated so far."""
        return self._seq

    def _site_probability(self, site: int) -> float:
        """Taken probability of the branch site at ``site``.

        Within a loop body most branches are not-taken fall-throughs
        (if-bodies skipped, loop continues); taken branches restart the
        loop.  Bias strength comes from branch_predictability.
        """
        bias = self._site_bias.get(site)
        if bias is None:
            strength = self._params.branch_predictability
            bias = (1.0 - strength) if self._rng.random() < 0.7 else strength
            self._site_bias[site] = bias
        return bias

    def _new_loop(self) -> None:
        footprint = self._params.code_footprint_bytes
        loop = self._params.loop_size_bytes
        bases = max(1, footprint // loop)
        self._loop_base = self._rng.randrange(bases) * loop
        self._loop_offset = 0
        # Geometric-ish iteration count around the mean.
        mean = self._params.loop_iterations_mean
        self._iterations_left = max(1, round(self._rng.expovariate(1.0 / mean)))

    def _draw_sources(self) -> Tuple[int, ...]:
        count_mean = self._params.src_count_mean
        count = int(count_mean)
        if self._rng.random() < count_mean - count:
            count += 1
        distances = []
        for _ in range(count):
            distance = 1
            # Geometric draw via inverse CDF on a uniform.
            while self._rng.random() > self._geom_p and distance < 512:
                distance += 1
            distances.append(distance)
        return tuple(distances)

    def _draw_address(self) -> int:
        params = self._params
        if self._rng.random() < params.sequential_fraction:
            # Stream with an 8-byte stride: consecutive accesses share a
            # cache line, so streaming misses once per line as in real code.
            self._stream_pointer = (
                self._stream_pointer + 8
            ) % params.working_set_bytes
            return self._stream_pointer
        return self._rng.randrange(0, params.working_set_bytes, 4)

    def next_op(self) -> MicroOp:
        """Generate the next micro-op in the stream."""
        params = self._params
        op_class = self._rng.choices(self._classes, weights=self._weights)[0]
        seq = self._seq
        self._seq += 1
        pc = self._loop_base + self._loop_offset

        address = None
        taken = False
        if op_class.is_memory:
            address = self._draw_address()
        elif op_class is OpClass.BRANCH:
            taken = self._rng.random() < self._site_probability(pc)

        # Advance control flow: the PC streams through the loop body; a
        # taken branch or the end of the body restarts the loop (the
        # back edge); exhausting the iteration budget moves to a new loop.
        at_loop_end = self._loop_offset + 4 >= params.loop_size_bytes
        if taken or at_loop_end:
            self._iterations_left -= 1
            if self._iterations_left <= 0:
                self._new_loop()
            else:
                self._loop_offset = 0
            if at_loop_end and op_class is OpClass.BRANCH:
                taken = True  # the back edge itself is a taken branch
        else:
            self._loop_offset += 4

        return MicroOp(
            seq=seq,
            op_class=op_class,
            src_distances=self._draw_sources(),
            pc=pc,
            address=address,
            taken=taken,
        )
