"""Constant-power fast-forward and the exponential stepper in the engine.

Fast-forward replaces runs of constant-power thermal steps with one
closed-form jump, but only after proving (via the solver's span
envelope) that the jump crosses no trigger/emergency threshold.  These
tests pin the two claims that make it safe to leave on by default:

* a run with ``fast_forward=True`` reproduces the explicit-stepping run
  statistic for statistic -- in particular every *discrete* statistic
  (violation count, switch count, hottest block) is bit-identical, so no
  threshold crossing is ever skipped or invented;
* the exponential stepper agrees with the backward-Euler regression
  anchor to the documented tolerance at the paper's operating step.
"""

import pytest

from repro.dtm import DvsPolicy, FetchGatingPolicy, NoDtmPolicy
from repro.sim import EngineConfig, SimulationEngine
from repro.thermal import ExponentialSolver
from repro.workloads import build_benchmark

EXACT_FIELDS = (
    "instructions",
    "cycles",
    "violations",
    "hottest_block",
    "dvs_switches",
    "migrations",
)
# (field, abs tolerance): time-like statistics agree to rounding error;
# temperature and power pick up the stride's proven leakage-drift band
# (EngineConfig.stride_drift_tol_w bounds sub-milliwatt within-span
# drift) and backward Euler's O(dt) discretisation error.
CLOSE_FIELDS = (
    ("elapsed_s", 1e-12),
    ("time_above_trigger_s", 1e-12),
    ("dvs_low_time_s", 1e-12),
    ("stall_time_s", 1e-12),
    ("mean_gating_fraction", 1e-9),
    ("max_true_temp_c", 1e-3),
    ("mean_power_w", 1e-2),
)

POLICIES = [
    ("none", NoDtmPolicy),
    ("FG", FetchGatingPolicy),
    ("DVS", DvsPolicy),
]


@pytest.fixture(scope="module")
def gcc():
    return build_benchmark("gcc")


def _run(workload, policy_factory, **config_kwargs):
    engine = SimulationEngine(
        workload,
        policy=policy_factory(),
        config=EngineConfig(**config_kwargs),
        seed=3,
    )
    init = engine.compute_initial_temperatures()
    return engine.run(3_000_000, initial=init, settle_time_s=2.0e-4)


def _assert_equivalent(result, reference):
    for field in EXACT_FIELDS:
        assert getattr(result, field) == getattr(reference, field), field
    for field, atol in CLOSE_FIELDS:
        assert getattr(result, field) == pytest.approx(
            getattr(reference, field), rel=1e-6, abs=atol
        ), field


class TestFastForwardEquivalence:
    @pytest.mark.parametrize("name,factory", POLICIES)
    def test_matches_explicit_stepping(self, gcc, name, factory):
        jumped = _run(gcc, factory, fast_forward=True)
        explicit = _run(gcc, factory, fast_forward=False)
        _assert_equivalent(jumped, explicit)

    @pytest.mark.parametrize("name,factory", POLICIES)
    def test_never_skips_a_threshold_crossing(self, gcc, name, factory):
        # The regression this guards: a jump sized by the span envelope
        # must account for exactly the violations and above-trigger time
        # that explicit stepping would have observed.  The scenarios are
        # chosen hot (the unmanaged chip sits above the trigger), so the
        # counts are non-trivial.
        jumped = _run(gcc, factory, fast_forward=True)
        explicit = _run(gcc, factory, fast_forward=False)
        assert explicit.violations > 0
        assert jumped.violations == explicit.violations
        assert jumped.time_above_trigger_s == pytest.approx(
            explicit.time_above_trigger_s, rel=1e-9, abs=1e-12
        )

    def test_fast_forward_actually_engages(self, gcc, monkeypatch):
        # Guard against the equivalence tests passing vacuously because
        # the safety gate never lets a jump through.
        calls = []
        original = ExponentialSolver.fast_forward

        def counting(self, power, dt, steps, copy=True):
            calls.append(steps)
            return original(self, power, dt, steps, copy=copy)

        monkeypatch.setattr(ExponentialSolver, "fast_forward", counting)
        _run(gcc, NoDtmPolicy, fast_forward=True)
        assert calls, "no fast-forward jump engaged in a constant-power run"
        assert all(steps >= 2 for steps in calls)

    def test_fast_forward_off_never_jumps(self, gcc, monkeypatch):
        calls = []
        original = ExponentialSolver.fast_forward

        def counting(self, power, dt, steps, copy=True):
            calls.append(steps)
            return original(self, power, dt, steps, copy=copy)

        monkeypatch.setattr(ExponentialSolver, "fast_forward", counting)
        _run(gcc, NoDtmPolicy, fast_forward=False)
        assert not calls


class TestStepperAgreement:
    @pytest.mark.parametrize("name,factory", POLICIES)
    def test_expm_matches_backward_euler_anchor(self, gcc, name, factory):
        # The CI smoke sweep enforces the same bound at full scale: the
        # exact propagator and the backward-Euler anchor see identical
        # discrete behaviour at the paper's 10k-cycle thermal step, and
        # continuous metrics agree to the documented tolerance.
        expm = _run(gcc, factory, thermal_stepper="expm", fast_forward=False)
        euler = _run(gcc, factory, thermal_stepper="be", fast_forward=False)
        _assert_equivalent(expm, euler)

    def test_backward_euler_ignores_fast_forward_knob(self, gcc):
        # fast_forward requires the exponential stepper; with "be" the
        # engine must silently fall back to explicit stepping rather
        # than fail.
        result = _run(
            gcc, NoDtmPolicy, thermal_stepper="be", fast_forward=True
        )
        reference = _run(
            gcc, NoDtmPolicy, thermal_stepper="be", fast_forward=False
        )
        _assert_equivalent(result, reference)
