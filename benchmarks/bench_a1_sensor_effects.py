"""Ablation A1: the cost of realistic thermal sensors.

The paper budgets 3 degrees of design margin for sensor noise and offset
(85 C emergency -> 82 C practical limit).  This ablation measures what
ideal sensing would buy: with error-free sensors the same techniques
regulate closer to the true limit and lose less performance.
"""

from _helpers import bench_instructions, save_table

from repro.analysis import render_table
from repro.core.metrics import mean_slowdown
from repro.dtm import DvsPolicy, HybPolicy, NoDtmPolicy
from repro.sensors import SensorArray, SensorParameters
from repro.sim import SimulationEngine
from repro.workloads import build_spec_suite

SETTLE = 2.0e-3


def _suite_mean(policy_factory, sensor_params) -> tuple:
    instructions = bench_instructions()
    slowdowns = []
    violations = 0
    for workload in build_spec_suite():
        baseline_engine = SimulationEngine(workload, policy=NoDtmPolicy())
        init = baseline_engine.compute_initial_temperatures()
        baseline = baseline_engine.run(
            instructions, initial=init.copy(), settle_time_s=SETTLE
        )
        engine = SimulationEngine(
            workload,
            policy=policy_factory(),
            sensors=SensorArray(
                baseline_engine.hotspot.floorplan,
                parameters=sensor_params,
                seed=0,
            ),
        )
        run = engine.run(
            instructions, initial=init.copy(), settle_time_s=SETTLE
        )
        slowdowns.append(run.elapsed_s / baseline.elapsed_s)
        violations += run.violations
    return mean_slowdown(slowdowns), violations


def _run() -> str:
    realistic = SensorParameters()
    ideal = SensorParameters.ideal()
    rows = []
    for name, factory in (("DVS", DvsPolicy), ("Hyb", HybPolicy)):
        real_mean, real_viol = _suite_mean(factory, realistic)
        ideal_mean, ideal_viol = _suite_mean(factory, ideal)
        rows.append([name, real_mean, real_viol, ideal_mean, ideal_viol])
    return render_table(
        [
            "technique",
            "realistic slowdown",
            "viol",
            "ideal-sensor slowdown",
            "viol",
        ],
        rows,
        title="A1: sensor noise/offset ablation",
    )


def test_a1_sensor_effects(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("a1_sensor_effects", table)
