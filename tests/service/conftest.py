"""Fixtures for the service suite.

Server-behaviour tests run a real :class:`SweepService` on a background
thread (``ServerThread``) over a Unix socket in ``tmp_path``, with the
``runner`` seam swapped in so jobs resolve in microseconds instead of
simulating -- scheduling, dedup, shedding and drain are properties of
the server, not of the engine.  The kill/restart drill in
``test_kill_restart.py`` uses real subprocesses and real runs.
"""

from __future__ import annotations

import pytest

from repro.service.server import ServerThread, ServiceConfig
from repro.sim.results import RunResult


def synthetic_result(benchmark="gzip", policy="FG", seed=0):
    """A plausible completed run, built without simulating."""
    return RunResult(
        benchmark=benchmark,
        policy=policy,
        dvs_mode="stall",
        instructions=1_000_000.0,
        elapsed_s=1e-3 * (1 + seed),
        cycles=1_000_000,
        violations=0,
        max_true_temp_c=80.0,
        hottest_block="IntReg",
        time_above_trigger_s=0.0,
        dvs_switches=0,
        dvs_low_time_s=0.0,
        stall_time_s=0.0,
        mean_gating_fraction=0.0,
        mean_power_w=30.0,
    )


@pytest.fixture
def make_result():
    return synthetic_result


@pytest.fixture
def service_factory(tmp_path):
    """Start ServerThreads on Unix sockets under tmp_path; always drain
    them at teardown so no loop thread outlives the test."""
    started = []
    counter = [0]

    def start(runner, **overrides):
        counter[0] += 1
        kwargs = dict(
            cache_dir=str(tmp_path / f"svc{counter[0]}"),
            socket_path=str(tmp_path / f"svc{counter[0]}.sock"),
            runner=runner,
        )
        kwargs.update(overrides)
        config = ServiceConfig(**kwargs)
        server = ServerThread(config).start()
        started.append(server)
        return server

    yield start
    for server in started:
        server.stop(timeout=30.0)
