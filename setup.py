"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail; this legacy entry point lets
``pip install -e .`` fall back to ``setup.py develop``.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
