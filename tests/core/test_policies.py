"""Policy factory."""

import pytest

from repro.core import POLICY_NAMES, make_policy
from repro.dtm import (
    ClockGatingPolicy,
    DvsConfig,
    DvsPolicy,
    FetchGatingPolicy,
    HybPolicy,
    LocalTogglingPolicy,
    NoDtmPolicy,
    PIHybPolicy,
    PredictiveHybPolicy,
    ThermalThresholds,
)
from repro.errors import DtmConfigError


@pytest.mark.parametrize(
    "name,expected_type",
    [
        ("none", NoDtmPolicy),
        ("FG", FetchGatingPolicy),
        ("CG", ClockGatingPolicy),
        ("LT", LocalTogglingPolicy),
        ("DVS", DvsPolicy),
        ("Hyb", HybPolicy),
        ("PI-Hyb", PIHybPolicy),
        ("Pred-Hyb", PredictiveHybPolicy),
    ],
)
def test_builds_each_technique(name, expected_type):
    assert isinstance(make_policy(name), expected_type)


def test_policy_names_constant_is_complete():
    for name in POLICY_NAMES:
        make_policy(name)


def test_unknown_name_raises():
    with pytest.raises(DtmConfigError):
        make_policy("dvs")  # case sensitive, as printed in the paper


def test_custom_config_accepted():
    policy = make_policy("DVS", config=DvsConfig(level_count=5))
    assert len(policy.voltages) == 5


def test_wrong_config_type_rejected():
    with pytest.raises(DtmConfigError):
        make_policy("Hyb", config=DvsConfig())


def test_none_rejects_config():
    with pytest.raises(DtmConfigError):
        make_policy("none", config=DvsConfig())


def test_thresholds_are_forwarded():
    custom = ThermalThresholds(emergency_c=90.0, practical_limit_c=87.0,
                               trigger_c=86.8)
    policy = make_policy("DVS", thresholds=custom)
    cmd = policy.update({"IntReg": 84.0}, 0.0, 1e-4)
    assert cmd.voltage == pytest.approx(1.3)  # 84 C is cool for these
