"""Stdlib-only HTTP facade over the observability plane.

A thin, read-only ``http.server`` wrapper that the sweep service (and
any embedding process) mounts to expose:

* ``/metrics``  -- Prometheus text (``obs.export.prometheus_text``);
* ``/healthz``  -- liveness: 200 while the process serves requests;
* ``/readyz``   -- readiness: 503 while draining or shedding;
* ``/jobs``     -- JSON list of queued/running/recent jobs;
* ``/jobs/<id>``-- one job's status by digest (404 on miss);
* ``/flight``   -- the flight-recorder ring as JSON lines.

The server is injected with *provider callables* rather than importing
the service, so it stays dependency-free and trivially testable: every
endpoint is a pure function of one provider's return value.  Providers
run on the HTTP thread -- they must be cheap and thread-safe reads
(the service's providers read plain attributes and the heartbeat
snapshot, both safe by construction).

``ThreadingHTTPServer`` with daemon threads keeps slow scrapers from
serialising behind each other while guaranteeing the facade never
blocks interpreter exit.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import export as obs_export
from repro.obs import flightrec

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _default_metrics() -> str:
    return obs_export.prometheus_text()


def _default_health() -> Dict[str, object]:
    return {"ok": True}


def _default_ready() -> Tuple[bool, Dict[str, object]]:
    return True, {}


def _default_jobs() -> List[Dict[str, object]]:
    return []


def _default_job(digest: str) -> Optional[Dict[str, object]]:
    return None


class ObsHttpd:
    """The facade: bind, serve on a daemon thread, stop on demand.

    ``port=0`` binds an ephemeral port; :attr:`address` holds the
    actual ``host:port`` once :meth:`start` returns, which is what
    tests and the CLI print."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        metrics_provider: Callable[[], str] = _default_metrics,
        health_provider: Callable[[], Dict[str, object]] = _default_health,
        ready_provider: Callable[[], Tuple[bool, Dict[str, object]]] = _default_ready,
        jobs_provider: Callable[[], List[Dict[str, object]]] = _default_jobs,
        job_provider: Callable[[str], Optional[Dict[str, object]]] = _default_job,
        flight_provider: Callable[[], List[Dict[str, object]]] = flightrec.snapshot,
    ):
        self._host = host
        self._port = int(port)
        self._providers = {
            "metrics": metrics_provider,
            "health": health_provider,
            "ready": ready_provider,
            "jobs": jobs_provider,
            "job": job_provider,
            "flight": flight_provider,
        }
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.address: Optional[str] = None

    def start(self) -> str:
        """Bind and begin serving; returns the bound ``host:port``."""
        if self._server is not None:
            return self.address  # pragma: no cover - double start
        providers = self._providers

        class _Handler(BaseHTTPRequestHandler):
            # One facade instance per handler class: the closure is the
            # whole dependency injection story.
            def log_message(self, fmt, *args):
                pass  # scrapes every few seconds must not spam stderr

            def do_GET(self):
                try:
                    _route(self, providers)
                except BrokenPipeError:  # pragma: no cover - peer gone
                    pass

            def do_POST(self):
                _reply(self, 405, {"error": "read-only facade"})

            do_PUT = do_DELETE = do_POST

        server = ThreadingHTTPServer((self._host, self._port), _Handler)
        server.daemon_threads = True
        self._server = server
        self.address = f"{server.server_address[0]}:{server.server_address[1]}"
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-obs-httpd",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None


def _reply(handler, code: int, body, content_type: str = "application/json") -> None:
    if not isinstance(body, (bytes, str)):
        body = json.dumps(body, sort_keys=True, default=str)
    if isinstance(body, str):
        body = body.encode("utf-8")
    handler.send_response(code)
    handler.send_header("Content-Type", content_type)
    handler.send_header("Content-Length", str(len(body)))
    handler.end_headers()
    handler.wfile.write(body)


def _route(handler, providers) -> None:
    path = handler.path.split("?", 1)[0].rstrip("/") or "/"
    if path == "/metrics":
        text = providers["metrics"]()
        _reply(handler, 200, text, content_type=PROMETHEUS_CONTENT_TYPE)
    elif path == "/healthz":
        _reply(handler, 200, providers["health"]())
    elif path == "/readyz":
        ready, detail = providers["ready"]()
        body = dict(detail)
        body["ready"] = bool(ready)
        _reply(handler, 200 if ready else 503, body)
    elif path == "/jobs":
        _reply(handler, 200, {"jobs": providers["jobs"]()})
    elif path.startswith("/jobs/"):
        digest = path[len("/jobs/"):]
        entry = providers["job"](digest)
        if entry is None:
            _reply(handler, 404, {"error": f"unknown job {digest!r}"})
        else:
            _reply(handler, 200, entry)
    elif path == "/flight":
        lines = "".join(
            json.dumps(record, sort_keys=True, default=str) + "\n"
            for record in providers["flight"]()
        )
        _reply(handler, 200, lines, content_type="application/x-ndjson")
    else:
        _reply(handler, 404, {"error": f"no route {path!r}"})
