"""Hybrid DTM: the paper's contribution.

Two variants (Section 4.2):

* :class:`PIHybPolicy` ("PI-Hyb") -- feedback-controlled fetch gating whose
  duty cycle is capped at the ILP/DVS crossover point; when the controller
  saturates there and temperature still rises, the policy switches to
  (binary) DVS instead of gating harder.
* :class:`HybPolicy` ("Hyb") -- no feedback control at all: one fixed
  fetch-gating level between the trigger threshold and a second, slightly
  higher threshold, and the low voltage above that.  Just comparators
  against two thresholds -- simpler than any controller, and the paper
  shows it sacrifices nothing.

Note this is a *hybrid*, not a fallback: the switch to DVS happens at the
point where fetch gating stops being the lower-overhead response, well
before its cooling capability is exhausted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.dtm.base import DtmCommand, DtmPolicy
from repro.dtm.controllers import IntegralController, LowPassFilter
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import DtmConfigError

DEFAULT_CROSSOVER_GATING_FRACTION = 1.0 / 3.0
"""The crossover for DVS with switching stalls: duty cycle 3 (skip fetch
once every three cycles)."""

IDEAL_DVS_CROSSOVER_GATING_FRACTION = 1.0 / 20.0
"""The crossover for idealised DVS: only the mildest gating (duty cycle
20) beats a regulator with no switching overhead."""


class HybridState(enum.Enum):
    """Which response a hybrid policy currently applies."""

    NOMINAL = "nominal"
    ILP = "ilp"
    DVS = "dvs"


@dataclass(frozen=True)
class HybConfig:
    """Configuration of the controller-free hybrid (Hyb).

    Parameters
    ----------
    gating_fraction:
        The single fixed fetch-gating level, matched to the crossover
        point.
    second_threshold_offset_c:
        The DVS threshold sits this far above the trigger; between the two
        thresholds the fixed ILP response is applied.
    v_low_ratio:
        Low voltage as a fraction of nominal (binary DVS).
    nominal_voltage:
        Supply voltage when DVS is not engaged.
    release_filter_alpha, release_margin_c:
        Low-pass filter and margin applied to *de-escalation* decisions
        (DVS -> FG -> nominal); escalation is compulsory and immediate.
    """

    gating_fraction: float = DEFAULT_CROSSOVER_GATING_FRACTION
    second_threshold_offset_c: float = 1.4
    v_low_ratio: float = 0.85
    nominal_voltage: float = 1.3
    release_filter_alpha: float = 0.25
    release_margin_c: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 < self.gating_fraction < 1.0:
            raise DtmConfigError("gating fraction must be in (0, 1)")
        if self.second_threshold_offset_c <= 0.0:
            raise DtmConfigError("second threshold offset must be > 0")
        if not 0.0 < self.v_low_ratio < 1.0:
            raise DtmConfigError("v_low_ratio must be in (0, 1)")
        if self.release_margin_c < 0.0:
            raise DtmConfigError("release margin must be >= 0")


class HybPolicy(DtmPolicy):
    """Fixed-level fetch gating plus binary DVS, driven by two comparators.

    Implementation cost in hardware: two threshold comparisons instead of
    binary DVS's one -- still far simpler than feedback control.
    """

    name = "Hyb"
    hottest_only = True

    def __init__(
        self,
        config: Optional[HybConfig] = None,
        thresholds: Optional[ThermalThresholds] = None,
    ):
        self._config = config if config is not None else HybConfig()
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        self._state = HybridState.NOMINAL
        self._filter = LowPassFilter(self._config.release_filter_alpha)

    @property
    def config(self) -> HybConfig:
        """The policy configuration."""
        return self._config

    @property
    def state(self) -> HybridState:
        """Current response state."""
        return self._state

    def _command(self) -> DtmCommand:
        if self._state is HybridState.DVS:
            return DtmCommand(
                gating_fraction=0.0,
                voltage=self._config.v_low_ratio * self._config.nominal_voltage,
            )
        if self._state is HybridState.ILP:
            return DtmCommand(
                gating_fraction=self._config.gating_fraction,
                voltage=self._config.nominal_voltage,
            )
        return DtmCommand(gating_fraction=0.0, voltage=self._config.nominal_voltage)

    def update(
        self, readings: Mapping[str, float], time_s: float, dt_s: float
    ) -> DtmCommand:
        """Two comparators: trigger engages FG, trigger+offset engages
        DVS; de-escalation goes through the low-pass filter."""
        return self.update_hottest(self.hottest(readings), time_s, dt_s)

    def update_hottest(
        self, hottest: float, time_s: float, dt_s: float
    ) -> DtmCommand:
        """Two comparators: trigger engages FG, trigger+offset engages
        DVS; de-escalation goes through the low-pass filter."""
        filtered = self._filter.update(hottest)
        trigger = self._thresholds.trigger_c
        second = trigger + self._config.second_threshold_offset_c
        margin = self._config.release_margin_c

        previous = self._state
        # Compulsory escalation on the raw reading.
        if hottest > second:
            self._state = HybridState.DVS
        elif hottest > trigger and self._state is HybridState.NOMINAL:
            self._state = HybridState.ILP
        # Filtered de-escalation.
        elif self._state is HybridState.DVS and filtered < second - margin:
            self._state = HybridState.ILP
        elif self._state is HybridState.ILP and filtered < trigger - margin:
            self._state = HybridState.NOMINAL
        if self._state is not previous:
            self.note_transition(previous, self._state)
        return self._command()

    def reset(self) -> None:
        """Back to nominal with a cleared filter."""
        self._state = HybridState.NOMINAL
        self._filter.reset()


@dataclass(frozen=True)
class PIHybConfig:
    """Configuration of the feedback-controlled hybrid (PI-Hyb).

    Parameters
    ----------
    max_gating_fraction:
        Cap of the fetch-gating controller -- the crossover point.  Beyond
        it the policy engages DVS rather than gating harder.
    ki:
        Integral gain of the fetch-gating controller.
    engage_margin_c:
        With the controller saturated, the observed temperature must
        exceed the trigger by this much before DVS engages.
    v_low_ratio, nominal_voltage:
        Binary DVS levels.
    release_filter_alpha, release_margin_c:
        De-escalation filter (DVS back to FG).
    """

    max_gating_fraction: float = DEFAULT_CROSSOVER_GATING_FRACTION
    ki: float = 600.0
    engage_margin_c: float = 0.2
    v_low_ratio: float = 0.85
    nominal_voltage: float = 1.3
    release_filter_alpha: float = 0.25
    release_margin_c: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 < self.max_gating_fraction < 1.0:
            raise DtmConfigError("max gating fraction must be in (0, 1)")
        if self.ki <= 0.0:
            raise DtmConfigError("ki must be > 0")
        if self.engage_margin_c < 0.0:
            raise DtmConfigError("engage margin must be >= 0")
        if not 0.0 < self.v_low_ratio < 1.0:
            raise DtmConfigError("v_low_ratio must be in (0, 1)")
        if self.release_margin_c < 0.0:
            raise DtmConfigError("release margin must be >= 0")


class PIHybPolicy(DtmPolicy):
    """Integral-controlled fetch gating up to the crossover, then binary
    DVS."""

    name = "PI-Hyb"
    hottest_only = True

    def __init__(
        self,
        config: Optional[PIHybConfig] = None,
        thresholds: Optional[ThermalThresholds] = None,
    ):
        self._config = config if config is not None else PIHybConfig()
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        self._controller = IntegralController(
            ki=self._config.ki,
            setpoint=self._thresholds.trigger_c,
            output_min=0.0,
            output_max=self._config.max_gating_fraction,
        )
        self._filter = LowPassFilter(self._config.release_filter_alpha)
        self._state = HybridState.ILP  # ILP covers the nominal (duty 0) case

    @property
    def config(self) -> PIHybConfig:
        """The policy configuration."""
        return self._config

    @property
    def state(self) -> HybridState:
        """Current response state (ILP with duty 0 is nominal
        operation)."""
        return self._state

    def update(
        self, readings: Mapping[str, float], time_s: float, dt_s: float
    ) -> DtmCommand:
        """Run the fetch-gating controller; hand over to DVS when it
        saturates at the crossover and heat keeps coming."""
        return self.update_hottest(self.hottest(readings), time_s, dt_s)

    def update_hottest(
        self, hottest: float, time_s: float, dt_s: float
    ) -> DtmCommand:
        """Run the fetch-gating controller; hand over to DVS when it
        saturates at the crossover and heat keeps coming."""
        filtered = self._filter.update(hottest)
        fraction = self._controller.update(hottest, dt_s)
        config = self._config
        trigger = self._thresholds.trigger_c

        saturated = fraction >= config.max_gating_fraction - 1e-9
        previous = self._state
        if self._state is HybridState.ILP:
            if saturated and hottest > trigger + config.engage_margin_c:
                self._state = HybridState.DVS
        else:
            if filtered < trigger - config.release_margin_c:
                self._state = HybridState.ILP
        if self._state is not previous:
            self.note_transition(previous, self._state)

        if self._state is HybridState.DVS:
            return DtmCommand(
                gating_fraction=0.0,
                voltage=config.v_low_ratio * config.nominal_voltage,
            )
        return DtmCommand(
            gating_fraction=fraction, voltage=config.nominal_voltage
        )

    def reset(self) -> None:
        """Back to ungated nominal with cleared controller state."""
        self._controller.reset()
        self._filter.reset()
        self._state = HybridState.ILP
