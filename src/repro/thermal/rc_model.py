"""Construction of the thermal RC network from a floorplan and package.

The network has one node per floorplan block plus two package nodes
(spreader, sink).  It is represented by:

* ``conductance`` -- the symmetric Laplacian-plus-ground matrix L such that
  the heat equation reads ``C dT/dt = P + g_amb * T_amb - L T`` with T in
  degrees Celsius and P the injected power vector;
* ``capacitance`` -- the diagonal of the capacitance matrix (J/K);
* ``ambient_conductance`` -- per-node conductance to the fixed ambient
  (non-zero only at the sink node).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Mapping

import numpy as np

from repro.errors import ThermalModelError
from repro.floorplan.floorplan import Floorplan
from repro.thermal.package import ThermalPackage

SPREADER_NODE = "__spreader__"
SINK_NODE = "__sink__"

SPREADER_PERIPHERY_NODES = (
    "__spreader_n__",
    "__spreader_s__",
    "__spreader_e__",
    "__spreader_w__",
)
SINK_PERIPHERY_NODES = (
    "__sink_n__",
    "__sink_s__",
    "__sink_e__",
    "__sink_w__",
)


@dataclass(frozen=True)
class ThermalNetwork:
    """A fully assembled thermal RC network.

    Attributes
    ----------
    node_names:
        All node names: floorplan blocks in floorplan order, then the
        spreader and sink nodes.
    conductance:
        (n, n) symmetric matrix L described in the module docstring.
    capacitance:
        (n,) vector of node capacitances in J/K.
    ambient_conductance:
        (n,) vector of conductances to ambient in W/K.
    ambient_c:
        Ambient temperature in degrees Celsius.
    """

    node_names: tuple
    conductance: np.ndarray
    capacitance: np.ndarray
    ambient_conductance: np.ndarray
    ambient_c: float

    @property
    def size(self) -> int:
        """Number of nodes in the network."""
        return len(self.node_names)

    @cached_property
    def block_names(self) -> tuple:
        """Names of the die-block nodes (package nodes carry a ``__``
        prefix and are excluded)."""
        return tuple(
            name for name in self.node_names if not name.startswith("__")
        )

    @cached_property
    def _node_index(self) -> Dict[str, int]:
        return {name: i for i, name in enumerate(self.node_names)}

    @cached_property
    def block_node_indices(self) -> np.ndarray:
        """Node indices of the die blocks, in :attr:`block_names` order.

        Cached so hot paths can scatter per-block power into the full
        node-power vector (and gather block temperatures out of the node
        vector) with one fancy-index operation per step.
        """
        index = self._node_index
        return np.array(
            [index[name] for name in self.block_names], dtype=np.intp
        )

    @cached_property
    def _conductance_factor(self) -> tuple:
        """LU factorisation of the conductance matrix, computed once.

        Steady-state solves happen once per transient step in the
        exponential stepper's fast-forward path and ~40 times per
        workload in the leakage/temperature warmup fixed point, always
        against the same matrix; factorising once turns each solve into
        a pair of triangular substitutions.
        """
        from scipy.linalg import lu_factor

        return lu_factor(self.conductance)

    @cached_property
    def conductance_inverse(self) -> np.ndarray:
        """Dense inverse of the conductance matrix.

        The network is small (~17 nodes) and well conditioned (Laplacian
        plus ambient ground), so the explicit inverse is accurate and
        lets the exponential stepper turn the steady-state solve of its
        update into a single matvec.
        """
        from scipy.linalg import lu_solve

        return lu_solve(self._conductance_factor, np.eye(self.size))

    def solve_steady(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``L x = rhs`` against the cached factorisation."""
        from scipy.linalg import lu_solve

        solution = lu_solve(self._conductance_factor, rhs)
        if not np.all(np.isfinite(solution)):  # pragma: no cover - defensive
            raise ThermalModelError("steady-state solve produced non-finite values")
        return solution

    def index_of(self, name: str) -> int:
        """Row/column index of a node."""
        try:
            return self._node_index[name]
        except KeyError:
            raise ThermalModelError(f"no thermal node named {name!r}") from None

    def power_vector(self, block_powers: Mapping[str, float]) -> np.ndarray:
        """Assemble the (n,) injected-power vector from a per-block mapping.

        Every floorplan block must be present; package nodes dissipate no
        power.  Negative powers are rejected.
        """
        vector = np.zeros(self.size)
        blocks = set(self.block_names)
        for name, watts in block_powers.items():
            if name not in blocks:
                raise ThermalModelError(f"power given for unknown block {name!r}")
            if watts < 0.0:
                raise ThermalModelError(f"negative power for block {name!r}")
            vector[self.index_of(name)] = watts
        missing = blocks - set(block_powers)
        if missing:
            raise ThermalModelError(f"power missing for blocks: {sorted(missing)}")
        return vector

    def temperatures_as_mapping(self, temps: np.ndarray) -> Dict[str, float]:
        """Convert a temperature vector back to ``{node: celsius}``."""
        if temps.shape != (self.size,):
            raise ThermalModelError(
                f"temperature vector has shape {temps.shape}, expected ({self.size},)"
            )
        return {name: float(temps[i]) for i, name in enumerate(self.node_names)}


def build_thermal_network(
    floorplan: Floorplan, package: ThermalPackage
) -> ThermalNetwork:
    """Derive the RC network for ``floorplan`` under ``package``.

    Mirrors HotSpot's block-level model: per-block vertical paths to a lumped
    spreader, lateral silicon coupling between abutting blocks, spreader to
    sink conduction, and sink-to-ambient convection.
    """
    blocks = floorplan.blocks
    names: List[str] = [block.name for block in blocks] + [SPREADER_NODE, SINK_NODE]
    n = len(names)
    spreader = n - 2
    sink = n - 1

    conductance = np.zeros((n, n))
    capacitance = np.zeros(n)
    ambient = np.zeros(n)

    def couple(i: int, j: int, resistance: float) -> None:
        if resistance <= 0.0:
            raise ThermalModelError("coupling resistance must be > 0")
        g = 1.0 / resistance
        conductance[i, i] += g
        conductance[j, j] += g
        conductance[i, j] -= g
        conductance[j, i] -= g

    # Vertical paths: block -> spreader.
    for i, block in enumerate(blocks):
        couple(i, spreader, package.block_vertical_resistance(block.area))
        capacitance[i] = package.block_capacitance(block.area)

    # Lateral silicon coupling between abutting blocks.
    for pair in floorplan.adjacencies:
        i = floorplan.index_of(pair.block_a)
        j = floorplan.index_of(pair.block_b)
        couple(
            i,
            j,
            package.lateral_resistance(pair.center_distance, pair.shared_edge_length),
        )

    # Package path: spreader -> sink -> ambient.
    couple(spreader, sink, package.spreader_to_sink_resistance(floorplan.die_area))
    ambient[sink] = 1.0 / package.convection_resistance
    conductance[sink, sink] += ambient[sink]

    capacitance[spreader] = package.spreader_capacitance
    capacitance[sink] = package.sink_capacitance

    return ThermalNetwork(
        node_names=tuple(names),
        conductance=conductance,
        capacitance=capacitance,
        ambient_conductance=ambient,
        ambient_c=package.ambient_c,
    )


def build_detailed_thermal_network(
    floorplan: Floorplan, package: ThermalPackage
) -> ThermalNetwork:
    """The full HotSpot-style package model.

    Like :func:`build_thermal_network` but with the spreader and sink each
    split into a centre node (under the die) plus four peripheral
    trapezoids, as in HotSpot's validated configuration.  The centre
    couples laterally to the periphery, the peripheries couple vertically
    down the stack, and the sink's convection to ambient is shared between
    centre and periphery by footprint area.

    For the paper's experiments the block-level model is sufficient (the
    two agree within tenths of a kelvin at the hotspot -- see the tests);
    the detailed model exists for studies where spreading into the package
    periphery matters (small dies, asymmetric heat sources).
    """
    blocks = floorplan.blocks
    names: List[str] = (
        [block.name for block in blocks]
        + [SPREADER_NODE, SINK_NODE]
        + list(SPREADER_PERIPHERY_NODES)
        + list(SINK_PERIPHERY_NODES)
    )
    n = len(names)
    index = {name: i for i, name in enumerate(names)}
    spreader = index[SPREADER_NODE]
    sink = index[SINK_NODE]

    conductance = np.zeros((n, n))
    capacitance = np.zeros(n)
    ambient = np.zeros(n)

    def couple(i: int, j: int, resistance: float) -> None:
        if resistance <= 0.0:
            raise ThermalModelError("coupling resistance must be > 0")
        g = 1.0 / resistance
        conductance[i, i] += g
        conductance[j, j] += g
        conductance[i, j] -= g
        conductance[j, i] -= g

    # Die: identical to the block-level model.
    for i, block in enumerate(blocks):
        couple(i, spreader, package.block_vertical_resistance(block.area))
        capacitance[i] = package.block_capacitance(block.area)
    for pair in floorplan.adjacencies:
        couple(
            floorplan.index_of(pair.block_a),
            floorplan.index_of(pair.block_b),
            package.lateral_resistance(
                pair.center_distance, pair.shared_edge_length
            ),
        )

    copper = package.package_material
    die_area = floorplan.die_area
    die_side = die_area**0.5

    # Spreader: centre = die footprint; periphery = the rest in 4 parts.
    spreader_periphery_area = max(
        (package.spreader_area - die_area) / 4.0, 1e-12
    )
    # Lateral path centre -> each peripheral trapezoid: roughly a quarter
    # of the annulus width through the spreader cross-section.
    annulus = (package.spreader_side - die_side) / 2.0
    lateral_sp = copper.conduction_resistance(
        max(annulus, 1e-6),
        package.spreader_thickness * die_side,
    )
    for name in SPREADER_PERIPHERY_NODES:
        couple(spreader, index[name], lateral_sp)
        capacitance[index[name]] = copper.capacitance(
            spreader_periphery_area * package.spreader_thickness
        )

    # Sink: centre under the spreader, periphery in 4 parts.
    sink_periphery_area = max(
        (package.sink_area - package.spreader_area) / 4.0, 1e-12
    )
    sink_annulus = (package.sink_side - package.spreader_side) / 2.0
    lateral_sink = copper.conduction_resistance(
        max(sink_annulus, 1e-6),
        package.sink_thickness * package.spreader_side,
    )
    for name in SINK_PERIPHERY_NODES:
        couple(sink, index[name], lateral_sink)
        capacitance[index[name]] = copper.capacitance(
            sink_periphery_area * package.sink_thickness
        )

    # Vertical package path.
    couple(spreader, sink, package.spreader_to_sink_resistance(die_area))
    for sp_name, sink_name in zip(SPREADER_PERIPHERY_NODES, SINK_PERIPHERY_NODES):
        vertical = copper.conduction_resistance(
            package.spreader_thickness / 2.0 + package.sink_thickness / 2.0,
            spreader_periphery_area,
        )
        couple(index[sp_name], index[sink_name], vertical)

    # Convection shared by footprint area.
    total_conductance = 1.0 / package.convection_resistance
    centre_share = package.spreader_area / package.sink_area
    ambient[sink] = total_conductance * centre_share
    conductance[sink, sink] += ambient[sink]
    for name in SINK_PERIPHERY_NODES:
        i = index[name]
        ambient[i] = total_conductance * (1.0 - centre_share) / 4.0
        conductance[i, i] += ambient[i]

    capacitance[spreader] = copper.capacitance(die_area * package.spreader_thickness)
    capacitance[sink] = copper.capacitance(
        package.spreader_area * package.sink_thickness
    )

    return ThermalNetwork(
        node_names=tuple(names),
        conductance=conductance,
        capacitance=capacitance,
        ambient_conductance=ambient,
        ambient_c=package.ambient_c,
    )
