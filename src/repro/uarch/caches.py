"""Set-associative cache hierarchy with LRU replacement.

Real structural caches (not fixed miss probabilities): the trace generator
produces address streams, so per-phase miss rates emerge from working-set
size versus cache capacity, exactly as they would for a real binary.

Latencies follow the paper's 21264-with-big-L2 configuration.  Main-memory
latency is specified in nanoseconds and converted to cycles at the current
clock, which is what makes memory-bound workloads less sensitive to DVS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import SimulationError


@dataclass(frozen=True)
class CacheLevelParameters:
    """Geometry and hit latency of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise SimulationError(f"cache {self.name!r}: sizes must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise SimulationError(
                f"cache {self.name!r}: size must be a multiple of "
                f"line_bytes * associativity"
            )
        if self.hit_latency < 1:
            raise SimulationError(f"cache {self.name!r}: hit latency must be >= 1")

    @property
    def set_count(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.line_bytes * self.associativity)


class SetAssociativeCache:
    """A single LRU set-associative cache level."""

    def __init__(self, params: CacheLevelParameters):
        self._params = params
        self._sets: List[Dict[int, None]] = [dict() for _ in range(params.set_count)]
        self._accesses = 0
        self._misses = 0

    @property
    def params(self) -> CacheLevelParameters:
        """The level's geometry."""
        return self._params

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self._accesses

    @property
    def misses(self) -> int:
        """Total misses."""
        return self._misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (0.0 before any access)."""
        if self._accesses == 0:
            return 0.0
        return self._misses / self._accesses

    def access(self, address: int) -> bool:
        """Look up ``address``; allocate on miss.  Returns True on hit."""
        line = address // self._params.line_bytes
        index = line % self._params.set_count
        cache_set = self._sets[index]
        self._accesses += 1
        if line in cache_set:
            # Refresh LRU position (dicts preserve insertion order).
            del cache_set[line]
            cache_set[line] = None
            return True
        self._misses += 1
        if len(cache_set) >= self._params.associativity:
            oldest = next(iter(cache_set))
            del cache_set[oldest]
        cache_set[line] = None
        return False

    def reset_statistics(self) -> None:
        """Zero the access counters (contents are kept)."""
        self._accesses = 0
        self._misses = 0


@dataclass
class MemoryAccessResult:
    """Outcome of one load/store or instruction fetch.

    ``latency`` is in cycles at the current clock; the touched_* flags feed
    the per-block activity counters.
    """

    latency: int
    touched_l2: bool
    touched_memory: bool


class CacheHierarchy:
    """L1 instruction + L1 data + unified L2, with fixed-time main memory.

    Parameters
    ----------
    memory_latency_ns:
        Main-memory access time in nanoseconds (fixed in wall-clock terms,
        so its cycle cost scales with clock frequency).
    nominal_frequency_hz:
        Clock at which ``memory_latency_ns`` converts to the nominal cycle
        count.
    """

    def __init__(
        self,
        icache: CacheLevelParameters = CacheLevelParameters(
            "icache", 64 * 1024, 64, 2, 1
        ),
        dcache: CacheLevelParameters = CacheLevelParameters(
            "dcache", 64 * 1024, 64, 2, 3
        ),
        l2: CacheLevelParameters = CacheLevelParameters(
            "l2", 4 * 1024 * 1024, 64, 8, 12
        ),
        memory_latency_ns: float = 80.0,
        nominal_frequency_hz: float = 3.0e9,
    ):
        if memory_latency_ns <= 0.0 or nominal_frequency_hz <= 0.0:
            raise SimulationError("memory latency and frequency must be > 0")
        self.icache = SetAssociativeCache(icache)
        self.dcache = SetAssociativeCache(dcache)
        self.l2 = SetAssociativeCache(l2)
        self._memory_latency_ns = memory_latency_ns
        self._nominal_frequency_hz = nominal_frequency_hz

    def prewarm(self, working_set_bytes: int, code_footprint_bytes: int) -> None:
        """Touch the workload's data and code footprints once.

        Streams every line of the data working set through D-cache/L2 and
        every line of the code footprint through I-cache/L2, then zeroes the
        statistics.  This stands in for the paper's 300 M-cycle warmup run:
        steady-state miss ratios from the first measured cycle.
        """
        if working_set_bytes < 0 or code_footprint_bytes < 0:
            raise SimulationError("footprints must be >= 0")
        line = self.dcache.params.line_bytes
        for address in range(0, working_set_bytes, line):
            self.access_data(address)
        line = self.icache.params.line_bytes
        for address in range(0, code_footprint_bytes, line):
            self.access_instruction(address)
        self.icache.reset_statistics()
        self.dcache.reset_statistics()
        self.l2.reset_statistics()

    def memory_latency_cycles(self, relative_frequency: float = 1.0) -> int:
        """Main-memory latency in cycles at ``relative_frequency`` times the
        nominal clock."""
        if relative_frequency <= 0.0:
            raise SimulationError("relative frequency must be > 0")
        seconds = self._memory_latency_ns * 1e-9
        return max(1, round(seconds * self._nominal_frequency_hz * relative_frequency))

    def access_data(
        self, address: int, relative_frequency: float = 1.0
    ) -> MemoryAccessResult:
        """A load/store data access through D-cache then L2 then memory."""
        if self.dcache.access(address):
            return MemoryAccessResult(
                latency=self.dcache.params.hit_latency,
                touched_l2=False,
                touched_memory=False,
            )
        if self.l2.access(address):
            return MemoryAccessResult(
                latency=self.l2.params.hit_latency,
                touched_l2=True,
                touched_memory=False,
            )
        return MemoryAccessResult(
            latency=self.memory_latency_cycles(relative_frequency),
            touched_l2=True,
            touched_memory=True,
        )

    def access_instruction(
        self, address: int, relative_frequency: float = 1.0
    ) -> MemoryAccessResult:
        """An instruction fetch through I-cache then L2 then memory."""
        if self.icache.access(address):
            return MemoryAccessResult(
                latency=self.icache.params.hit_latency,
                touched_l2=False,
                touched_memory=False,
            )
        if self.l2.access(address):
            return MemoryAccessResult(
                latency=self.l2.params.hit_latency,
                touched_l2=True,
                touched_memory=False,
            )
        return MemoryAccessResult(
            latency=self.memory_latency_cycles(relative_frequency),
            touched_l2=True,
            touched_memory=True,
        )
