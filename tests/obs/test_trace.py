"""Span tracing, run contexts, and worker spill records."""

import json
import os

from repro.obs import runctx, spill, trace


class TestSpans:
    def test_span_records_time_and_calls(self, obs_on):
        with trace.span("unit.block"):
            pass
        with trace.span("unit.block"):
            pass
        seconds, calls = trace.totals()["unit.block"]
        assert calls == 2
        assert seconds >= 0.0

    def test_disabled_span_is_shared_singleton(self, obs_dir):
        assert trace.span("a.b") is trace.span("c.d")
        with trace.span("a.b"):
            pass
        assert trace.totals() == {}

    def test_record_is_unconditional(self, obs_dir):
        # Step timers run under REPRO_STEP_TIMING even with obs off.
        trace.record("step.thermal", 0.5)
        assert trace.totals()["step.thermal"] == (0.5, 1)

    def test_run_aggregates_nest(self, obs_on):
        trace.begin_run()
        trace.record("outer.only", 1.0)
        trace.begin_run()
        trace.record("inner.only", 2.0)
        inner = trace.end_run()
        trace.record("outer.only", 1.0)
        outer = trace.end_run()
        assert inner == {"inner.only": (2.0, 1)}
        assert outer == {"outer.only": (2.0, 2)}
        # Process totals saw everything.
        assert trace.totals()["inner.only"] == (2.0, 1)


class TestRunContext:
    def test_record_shape(self, obs_on):
        runctx.begin("run-1", benchmark="gzip", policy="Hyb", seed=3)
        runctx.add_metric("engine.trigger_crossings", 2.0)
        runctx.add_metric("engine.trigger_crossings", 1.0)
        runctx.add_metrics({"dtm.engagements": 4.0})
        with trace.span("run.total"):
            pass
        record = runctx.end()
        assert record["kind"] == "run"
        assert record["run_id"] == "run-1"
        assert record["benchmark"] == "gzip"
        assert record["pid"] == os.getpid()
        assert record["metrics"] == {
            "engine.trigger_crossings": 3.0,
            "dtm.engagements": 4.0,
        }
        assert record["spans"]["run.total"][1] == 1
        assert record["wall_seconds"] >= 0.0
        assert "error" not in record

    def test_error_is_attached(self, obs_on):
        runctx.begin("run-err", benchmark="gzip")
        record = runctx.end(error="SimulationError: boom")
        assert record["error"] == "SimulationError: boom"

    def test_run_id_lands_in_event_context(self, obs_on):
        from repro.obs import events

        runctx.begin("ctx-run")
        record = events.emit("probe.event")
        runctx.end()
        assert record["run_id"] == "ctx-run"
        assert runctx.current() is None

    def test_end_without_begin_is_empty(self, obs_on):
        assert runctx.end() == {}


class TestSpill:
    def test_parent_records_stay_in_memory(self, obs_on):
        token = spill.begin_collection()
        spill.record({"kind": "run", "run_id": "a"})
        assert not spill.spill_path().exists()
        assert spill.collect(token) == [{"kind": "run", "run_id": "a"}]

    def test_worker_records_spill_to_disk(self, obs_on):
        token = spill.begin_collection()
        # A forked child would stop matching the parent pid; simulate by
        # not marking this process as parent.
        spill.reset()
        spill.record({"kind": "run", "run_id": "w"})
        assert spill.spill_path().exists()
        assert spill.collect(token) == [{"kind": "run", "run_id": "w"}]

    def test_collection_token_excludes_earlier_sweeps(self, obs_on):
        spill.reset()
        spill.record({"kind": "run", "run_id": "old"})
        token = spill.begin_collection()
        spill.record({"kind": "run", "run_id": "new"})
        collected = spill.collect(token)
        assert [r["run_id"] for r in collected] == ["new"]

    def test_torn_tail_line_is_skipped(self, obs_on):
        spill.reset()
        token = spill.begin_collection()
        path = spill.spill_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "run", "run_id": "ok"}) + "\n")
            handle.write('{"kind": "run", "run_id": "to')
        collected = spill.collect(token)
        assert [r["run_id"] for r in collected] == ["ok"]

    def test_disabled_record_is_noop(self, obs_dir):
        token = spill.begin_collection()
        spill.record({"kind": "run", "run_id": "quiet"})
        assert spill.collect(token) == []
