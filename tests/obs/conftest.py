"""Fixtures for observability tests.

Every test here runs against a clean registry/trace/event state and a
throwaway spill directory, and restores the session's enabled flag on
the way out so obs tests cannot leak state into (or inherit state from)
the rest of the suite.
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.obs import metrics as obs_metrics


@pytest.fixture()
def obs_dir(tmp_path, monkeypatch):
    """A throwaway observability directory, with obs *disabled*."""
    monkeypatch.setenv(obs_metrics.OBS_DIR_ENV, str(tmp_path))
    obs.reset_for_testing()
    previous = obs.set_enabled(False)
    yield tmp_path
    obs.set_enabled(previous)
    obs.reset_for_testing()


@pytest.fixture()
def obs_on(obs_dir):
    """The same throwaway directory, with obs *enabled*."""
    obs.set_enabled(True)
    return obs_dir
