"""The metrics registry: counters, gauges, histograms, the enable flag."""

import pytest

import repro.obs as obs
from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    counter_delta,
    inc,
)


class TestEnableFlag:
    def test_set_enabled_returns_previous(self, obs_dir):
        assert metrics.set_enabled(True) is False
        assert metrics.enabled()
        assert metrics.set_enabled(False) is True
        assert not metrics.enabled()

    def test_obs_dir_follows_env(self, obs_dir):
        assert metrics.obs_dir() == obs_dir


class TestCounter:
    def test_increments(self, obs_dir):
        counter = MetricsRegistry().counter("a.b")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self, obs_dir):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a.b").inc(-1.0)

    def test_rejects_bad_names(self, obs_dir):
        registry = MetricsRegistry()
        for bad in ("", "UpperCase", "9lead", "has space", "dash-ed"):
            with pytest.raises(ValueError):
                registry.counter(bad)


class TestGauge:
    def test_set_and_add(self, obs_dir):
        gauge = MetricsRegistry().gauge("g.x")
        gauge.set(4.0)
        gauge.add(-1.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_bucket_assignment_and_overflow(self, obs_dir):
        histogram = MetricsRegistry().histogram("h.x", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        # <=1, <=10, overflow
        assert histogram.counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(106.5)

    def test_rejects_unsorted_bounds(self, obs_dir):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h.bad", bounds=(2.0, 1.0))

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)


class TestRegistry:
    def test_get_or_create_is_stable(self, obs_dir):
        registry = MetricsRegistry()
        assert registry.counter("c.x") is registry.counter("c.x")

    def test_kind_collision_rejected(self, obs_dir):
        registry = MetricsRegistry()
        registry.counter("name.taken")
        with pytest.raises(ValueError):
            registry.gauge("name.taken")
        with pytest.raises(ValueError):
            registry.histogram("name.taken")

    def test_snapshot_round_trips_through_json(self, obs_dir):
        import json

        registry = MetricsRegistry()
        registry.counter("c.x").inc(2)
        registry.gauge("g.x").set(1.5)
        registry.histogram("h.x", bounds=(1.0,)).observe(0.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["counters"] == {"c.x": 2}
        assert snapshot["gauges"] == {"g.x": 1.5}
        assert snapshot["histograms"]["h.x"]["counts"] == [1, 0]

    def test_reset_clears_everything(self, obs_dir):
        registry = MetricsRegistry()
        registry.counter("c.x").inc()
        registry.reset()
        assert registry.counter_values() == {}


class TestModuleHelpers:
    def test_inc_is_noop_when_disabled(self, obs_dir):
        inc("noop.counter")
        assert "noop.counter" not in REGISTRY.counter_values()

    def test_inc_writes_when_enabled(self, obs_on):
        inc("live.counter", 3.0)
        assert REGISTRY.counter_values()["live.counter"] == 3.0

    def test_counter_delta_drops_zero_entries(self, obs_dir):
        before = {"a": 1.0, "b": 2.0}
        after = {"a": 1.0, "b": 5.0, "c": 1.0}
        assert counter_delta(after, before) == {"b": 3.0, "c": 1.0}

    def test_reset_for_testing_clears_registry(self, obs_on):
        inc("leak.check")
        obs.reset_for_testing()
        assert REGISTRY.counter_values() == {}
