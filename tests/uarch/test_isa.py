"""Micro-op classes."""

import pytest

from repro.uarch import OpClass
from repro.uarch.isa import EXECUTION_LATENCY, execution_latency


def test_every_class_has_a_latency():
    for op_class in OpClass:
        assert execution_latency(op_class) >= 1


def test_fp_classification():
    assert OpClass.FADD.is_fp and OpClass.FMUL.is_fp
    assert not OpClass.IALU.is_fp
    assert not OpClass.LOAD.is_fp


def test_memory_classification():
    assert OpClass.LOAD.is_memory and OpClass.STORE.is_memory
    assert not OpClass.BRANCH.is_memory


def test_multiply_slower_than_alu():
    assert execution_latency(OpClass.IMUL) > execution_latency(OpClass.IALU)


def test_fp_latencies_are_pipelined_multicycle():
    assert EXECUTION_LATENCY[OpClass.FADD] == 4
    assert EXECUTION_LATENCY[OpClass.FMUL] == 4


def test_single_cycle_integer_alu():
    assert execution_latency(OpClass.IALU) == 1
