"""The fault-tolerant sweep supervisor behind ``run_many``."""

import json
from dataclasses import replace
from functools import partial

import pytest

from repro.dtm import FetchGatingPolicy
from repro.errors import InjectedFaultError, SimulationError
from repro.sensors.faults import SensorFault
from repro.sim import (
    EngineConfig,
    FaultPlan,
    RunFailure,
    RunSpec,
    load_journal,
    run_many,
    spec_digest,
)
from repro.sim.supervisor import (
    SweepJournal,
    SweepSupervisor,
    policy_token,
    strip_transient_faults,
)

FAST_N = 1_500_000

RESULT_FIELDS = (
    "benchmark",
    "policy",
    "instructions",
    "elapsed_s",
    "cycles",
    "violations",
    "max_true_temp_c",
    "hottest_block",
    "time_above_trigger_s",
    "dvs_switches",
    "stall_time_s",
    "mean_power_w",
)


def _spec(seed=0, benchmark="gzip", policy="FG", plan=None):
    config = EngineConfig(fault_plan=plan) if plan is not None else None
    return RunSpec(
        workload=benchmark,
        policy=policy,
        instructions=FAST_N,
        settle_time_s=1.0e-4,
        seed=seed,
        engine_config=config,
    )


def _as_tuple(result):
    return tuple(getattr(result, field) for field in RESULT_FIELDS)


class TestSpecDigest:
    def test_stable_for_equal_specs(self):
        assert spec_digest(_spec()) == spec_digest(_spec())

    def test_sensitive_to_seed_policy_and_config(self):
        base = spec_digest(_spec())
        assert spec_digest(_spec(seed=1)) != base
        assert spec_digest(_spec(policy="DVS")) != base
        assert (
            spec_digest(_spec(plan=FaultPlan(crash_worker=True))) != base
        )

    def test_unaffected_by_warmup_precomputation_order(self):
        # The digest must be computed from the original spec; pinning
        # the initial vector afterwards changes identity, which is why
        # run_many digests before its warmup pass.
        from repro.sim.batch import steady_state_for

        original = _spec()
        pinned = replace(
            original, initial=steady_state_for(original.workload)
        )
        assert spec_digest(original) != spec_digest(pinned)


class TestPolicyToken:
    def test_string_policy(self):
        assert policy_token("Hyb") == "Hyb"

    def test_partial_policy_includes_arguments(self):
        token = policy_token(partial(FetchGatingPolicy))
        assert "FetchGatingPolicy" in token
        assert policy_token(
            partial(FetchGatingPolicy)
        ) == policy_token(partial(FetchGatingPolicy))

    def test_callable_policy(self):
        assert "FetchGatingPolicy" in policy_token(FetchGatingPolicy)


class TestStripTransientFaults:
    def test_noop_without_plan(self):
        spec = _spec()
        assert strip_transient_faults(spec) is spec

    def test_strips_harness_faults(self):
        spec = _spec(plan=FaultPlan(crash_worker=True))
        stripped = strip_transient_faults(spec)
        assert stripped.engine_config.fault_plan is None

    def test_keeps_sensor_faults(self):
        plan = FaultPlan(
            crash_worker=True,
            sensor_faults=(SensorFault.stuck("IntReg", 40.0),),
        )
        stripped = strip_transient_faults(_spec(plan=plan))
        surviving = stripped.engine_config.fault_plan
        assert surviving is not None
        assert not surviving.has_transient_faults
        assert surviving.sensor_faults == plan.sensor_faults


class TestSupervisorValidation:
    def test_rejects_bad_timeout(self):
        with pytest.raises(SimulationError):
            SweepSupervisor(timeout_s=0.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(SimulationError):
            SweepSupervisor(retries=-1)

    def test_backoff_is_deterministic_and_bounded(self):
        a = SweepSupervisor(retries=3, backoff_s=0.1, backoff_max_s=1.0)
        b = SweepSupervisor(retries=3, backoff_s=0.1, backoff_max_s=1.0)
        for attempt in (1, 2, 3, 8):
            delay = a._backoff_delay("digest", attempt)
            assert delay == b._backoff_delay("digest", attempt)
            assert delay <= 1.0 * 1.25


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        result = run_many([_spec()])[0]
        journal = SweepJournal(path)
        journal.record("abc123", 0, result)
        journal.close()
        loaded = load_journal(path)
        assert set(loaded) == {"abc123"}
        assert _as_tuple(loaded["abc123"]) == _as_tuple(result)

    def test_missing_file_is_empty(self, tmp_path):
        assert load_journal(tmp_path / "never-written.jsonl") == {}

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        result = run_many([_spec()])[0]
        journal = SweepJournal(path)
        journal.record("good", 0, result)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"digest": "torn", "result": {"benchm')
        assert set(load_journal(path)) == {"good"}


class TestSerialSupervision:
    def test_injected_crash_raises_without_supervision(self):
        specs = [_spec(), _spec(seed=1, plan=FaultPlan(crash_worker=True))]
        with pytest.raises(InjectedFaultError):
            run_many(specs)

    def test_retry_heals_crash_bit_identically(self):
        faulty = [
            _spec(),
            _spec(seed=1, plan=FaultPlan(crash_worker=True)),
        ]
        clean = [_spec(), _spec(seed=1)]
        # Faulty specs run per-run (fault plans opt out of the lockstep
        # default); the bit-identity reference must be per-run too.
        healed = run_many(faulty, retries=1)
        reference = run_many(clean, lockstep=False)
        assert [_as_tuple(r) for r in healed] == [
            _as_tuple(r) for r in reference
        ]

    def test_retry_heals_solver_corruption(self):
        faulty = [_spec(seed=2, plan=FaultPlan(corrupt_power_at_step=4))]
        healed = run_many(faulty, retries=1, backoff_s=0.0)
        reference = run_many([_spec(seed=2)])
        assert _as_tuple(healed[0]) == _as_tuple(reference[0])

    def test_partial_results_record_structured_failure(self):
        specs = [
            _spec(),
            _spec(seed=1, plan=FaultPlan(crash_worker=True)),
        ]
        # Sensor-fault-free crash plan with no retries cannot heal:
        # the failure must land as a record, not kill the sweep.
        outcomes = run_many(specs, partial_results=True)
        assert not isinstance(outcomes[0], RunFailure)
        failure = outcomes[1]
        assert isinstance(failure, RunFailure)
        assert failure.failed
        assert failure.index == 1
        assert failure.benchmark == "gzip"
        assert failure.error_type == "InjectedFaultError"
        assert failure.attempts == 1

    def test_exhausted_retries_reraise_original_error(self):
        # A persistent failure (all-dropout sensors survive stripping)
        # must surface the typed error after the retry budget is spent.
        from repro.errors import SensorFaultError
        from repro.floorplan.alpha21364 import build_alpha21364_floorplan

        names = build_alpha21364_floorplan().block_names
        plan = FaultPlan(
            sensor_faults=tuple(SensorFault.dropout(n) for n in names)
        )
        with pytest.raises(SensorFaultError):
            run_many([_spec(plan=plan)], retries=1, backoff_s=0.0)


class TestJournalAndResume:
    def test_journal_written_as_runs_finish(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        specs = [_spec(), _spec(seed=1)]
        results = run_many(specs, journal=str(path))
        entries = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert sorted(e["index"] for e in entries) == [0, 1]
        assert {e["digest"] for e in entries} == {
            spec_digest(s) for s in specs
        }
        loaded = load_journal(path)
        assert _as_tuple(loaded[spec_digest(specs[0])]) == _as_tuple(
            results[0]
        )

    def test_resume_skips_completed_specs(self, tmp_path, monkeypatch):
        path = tmp_path / "sweep.jsonl"
        specs = [_spec(), _spec(seed=1)]
        first = run_many(specs, journal=str(path))

        import repro.sim.batch as batch

        def exploding_run_one(spec):
            raise AssertionError("resume re-executed a finished spec")

        monkeypatch.setattr(batch, "run_one", exploding_run_one)
        resumed = run_many(specs, resume=str(path))
        assert [_as_tuple(r) for r in resumed] == [
            _as_tuple(r) for r in first
        ]

    def test_resume_runs_only_unfinished_specs(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        specs = [_spec(), _spec(seed=1), _spec(seed=2)]
        # Pin the per-run path: this test counts run_one invocations,
        # which the lockstep default would bypass.
        complete = run_many(specs, journal=str(path), lockstep=False)

        # Simulate a sweep killed after two finishes: drop the journal's
        # last line, then resume.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")

        import repro.sim.batch as batch

        calls = []
        original = batch.run_one

        def counting_run_one(spec):
            calls.append(spec.seed)
            return original(spec)

        try:
            batch.run_one = counting_run_one
            resumed = run_many(specs, resume=str(path), lockstep=False)
        finally:
            batch.run_one = original
        assert len(calls) == 1
        assert [_as_tuple(r) for r in resumed] == [
            _as_tuple(r) for r in complete
        ]
        # The resumed finish was appended, completing the journal.
        assert len(load_journal(path)) == 3


class TestPoolSupervision:
    def test_worker_crash_heals_without_charging_retries(self):
        # The dead worker poisons the pool; every unfinished spec is
        # resubmitted to a fresh one with transients stripped, so even
        # retries=0 produces the fault-free sweep.
        faulty = [
            _spec(seed=s) if s != 1
            else _spec(seed=1, plan=FaultPlan(crash_worker=True))
            for s in range(4)
        ]
        clean = [_spec(seed=s) for s in range(4)]
        healed = run_many(faulty, processes=2, timeout_s=60.0)
        reference = run_many(clean, lockstep=False)
        assert [_as_tuple(r) for r in healed] == [
            _as_tuple(r) for r in reference
        ]

    def test_pool_breakage_during_submit_loop_drops_no_spec(
        self, monkeypatch
    ):
        # A fast-crashing spec can break a warm pool while the submit
        # loop is still running; the failed submit's spec and everything
        # not yet submitted must ride along to the rebuilt pool.
        from concurrent.futures.process import BrokenProcessPool

        import repro.sim.batch as batch

        real_get_pool = batch._get_pool
        armed = {"flag": True}

        class _BreaksMidSubmit:
            def __init__(self, pool):
                self._pool = pool
                self._submitted = 0

            def submit(self, *args, **kwargs):
                if armed["flag"] and self._submitted == 2:
                    armed["flag"] = False
                    raise BrokenProcessPool("worker died mid-submit")
                self._submitted += 1
                return self._pool.submit(*args, **kwargs)

        def flaky_get_pool(processes):
            pool = real_get_pool(processes)
            return _BreaksMidSubmit(pool) if armed["flag"] else pool

        monkeypatch.setattr(batch, "_get_pool", flaky_get_pool)
        specs = [_spec(seed=s) for s in range(4)]
        # Pin the classic pool path: the mid-submit breakage being
        # exercised lives in run_pool, not the lockstep-chunk runner.
        healed = run_many(specs, processes=2, timeout_s=60.0, lockstep=False)
        reference = run_many(
            [_spec(seed=s) for s in range(4)], lockstep=False
        )
        assert [_as_tuple(r) for r in healed] == [
            _as_tuple(r) for r in reference
        ]

    def test_overdue_run_times_out_to_failure(self):
        specs = [
            _spec(),
            _spec(seed=1, plan=FaultPlan(delay_s=15.0)),
        ]
        outcomes = run_many(
            specs, processes=2, timeout_s=1.0, partial_results=True
        )
        assert not isinstance(outcomes[0], RunFailure)
        failure = outcomes[1]
        assert isinstance(failure, RunFailure)
        assert failure.error_type == "RunTimeoutError"

    def test_overdue_run_retries_after_pool_rebuild(self):
        specs = [
            _spec(),
            _spec(seed=1, plan=FaultPlan(delay_s=15.0)),
        ]
        healed = run_many(
            specs, processes=2, timeout_s=1.0, retries=1, backoff_s=0.0
        )
        reference = run_many([_spec(), _spec(seed=1)], lockstep=False)
        assert [_as_tuple(r) for r in healed] == [
            _as_tuple(r) for r in reference
        ]


class TestLockstepSupervision:
    def test_lockstep_serial_heals_mid_batch_failure(self):
        # A failed batch falls back to per-spec serial execution, whose
        # numbers are the run_one numbers (lockstep matches them only to
        # BLAS summation order), so that is the fault-free reference.
        faulty = [
            _spec(),
            _spec(seed=1, plan=FaultPlan(crash_worker=True)),
            _spec(seed=2),
        ]
        clean = [_spec(), _spec(seed=1), _spec(seed=2)]
        healed = run_many(faulty, lockstep=True, retries=1, backoff_s=0.0)
        reference = run_many(clean, lockstep=False)
        assert [_as_tuple(r) for r in healed] == [
            _as_tuple(r) for r in reference
        ]

    def test_lockstep_pool_heals_worker_crash(self):
        # Only the chunk containing the crash falls back to per-spec
        # execution; every healed outcome must be bit-identical to the
        # fault-free run under one of the two execution modes.
        faulty = [
            _spec(seed=s) if s != 2
            else _spec(seed=2, plan=FaultPlan(crash_worker=True))
            for s in range(4)
        ]
        clean = [_spec(seed=s) for s in range(4)]
        healed = run_many(
            faulty, processes=2, lockstep=True, retries=1, backoff_s=0.0
        )
        lockstep_ref = run_many(clean, lockstep=True)
        serial_ref = run_many(clean, lockstep=False)
        for got, a, b in zip(healed, lockstep_ref, serial_ref):
            assert _as_tuple(got) in (_as_tuple(a), _as_tuple(b))
