"""Voltage-to-frequency relation for dynamic voltage scaling.

The paper characterises a 101-stage ring oscillator in Cadence/BSIM to find
the achievable frequency at each voltage step.  We substitute the standard
alpha-power MOSFET delay law, which reproduces the same qualitative curve::

    delay  ~  V / (V - Vth)^alpha      =>      f(V)  ~  (V - Vth)^alpha / V

normalised so that f(Vdd_nominal) = frequency_nominal.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import PowerModelError
from repro.power.technology import Technology


class VoltageFrequencyCurve:
    """Maps supply voltage to maximum safe clock frequency.

    Also generates the discrete DVS voltage/frequency tables used by the
    step-count study (continuous, 10, 5, 3, 2 levels).
    """

    def __init__(self, technology: Technology):
        self._tech = technology
        self._norm = self._raw(technology.vdd_nominal)

    def _raw(self, voltage: float) -> float:
        tech = self._tech
        return (voltage - tech.vth) ** tech.alpha / voltage

    @property
    def technology(self) -> Technology:
        """The process the curve was built for."""
        return self._tech

    def frequency(self, voltage: float) -> float:
        """Maximum clock frequency (Hz) at ``voltage`` volts."""
        self._tech.relative_voltage(voltage)  # range check
        return self._tech.frequency_nominal * self._raw(voltage) / self._norm

    def relative_frequency(self, voltage: float) -> float:
        """``frequency(voltage) / frequency_nominal``."""
        return self.frequency(voltage) / self._tech.frequency_nominal

    def levels(self, count: int, v_low: float) -> List[Tuple[float, float]]:
        """A DVS table of ``count`` evenly spaced voltage levels.

        Levels run from ``v_low`` up to nominal Vdd inclusive and are
        returned lowest first as ``(voltage, frequency)`` pairs.  ``count``
        must be at least 2 (the paper's binary DVS).
        """
        if count < 2:
            raise PowerModelError("a DVS table needs at least 2 levels")
        nominal = self._tech.vdd_nominal
        if not self._tech.vth < v_low < nominal:
            raise PowerModelError(
                f"low voltage {v_low} V must lie between Vth and nominal Vdd"
            )
        step = (nominal - v_low) / (count - 1)
        voltages = [v_low + i * step for i in range(count)]
        voltages[-1] = nominal  # avoid floating-point drift at the top level
        return [(v, self.frequency(v)) for v in voltages]

    def continuous_levels(self, v_low: float, resolution: int = 100) -> List[
        Tuple[float, float]
    ]:
        """A finely quantised table approximating continuous DVS."""
        return self.levels(resolution, v_low)
