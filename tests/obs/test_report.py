"""SweepReport folding, serialisation, and the exporters."""

import pytest

from repro.obs import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import SweepReport

RECORDS = [
    {
        "kind": "run",
        "run_id": "gzip.Hyb.s0.aaaa",
        "benchmark": "gzip",
        "policy": "Hyb",
        "pid": 100,
        "wall_seconds": 1.5,
        "metrics": {
            "engine.trigger_crossings": 3.0,
            "dtm.duty_cycle": 0.25,
        },
        "spans": {"run.total": [1.5, 1], "step.thermal": [0.6, 40]},
    },
    {
        "kind": "run",
        "run_id": "gcc.Hyb.s1.bbbb",
        "benchmark": "gcc",
        "policy": "Hyb",
        "pid": 101,
        "wall_seconds": 0.5,
        "metrics": {"engine.trigger_crossings": 1.0},
        "spans": {"run.total": [0.5, 1]},
    },
]

FAILURES = [
    {
        "index": 2,
        "benchmark": "mesa",
        "policy": "Hyb",
        "error_type": "SimulationError",
        "message": "boom",
        "attempts": 1,
    }
]


def _report():
    return SweepReport.build(
        RECORDS,
        failures=FAILURES,
        meta={"processes": 2},
        sweep_counters={"sweep.retries": 2.0, "sweep.timeouts": 0.0},
    )


class TestBuild:
    def test_counters_sum_across_runs(self):
        report = _report()
        assert report.counters["engine.trigger_crossings"] == 4.0
        assert report.counters["dtm.duty_cycle"] == 0.25

    def test_sweep_counters_fold_in_dropping_zeros(self):
        report = _report()
        assert report.counters["sweep.retries"] == 2.0
        assert "sweep.timeouts" not in report.counters

    def test_spans_sum_seconds_and_calls(self):
        report = _report()
        assert report.spans["run.total"] == (2.0, 2)
        assert report.spans["step.thermal"] == (0.6, 40)

    def test_meta_counts_runs_and_failures(self):
        report = _report()
        assert report.meta["n_runs"] == 2
        assert report.meta["n_failures"] == 1
        assert report.meta["processes"] == 2


class TestSerialisation:
    def test_jsonl_round_trip(self, tmp_path):
        report = _report()
        path = report.save(tmp_path / "report.jsonl")
        loaded = SweepReport.load(path)
        assert loaded.meta == report.meta
        assert loaded.counters == report.counters
        assert loaded.spans == report.spans
        assert loaded.runs == report.runs
        assert loaded.failures == report.failures

    def test_json_dict_round_trip(self):
        report = _report()
        clone = SweepReport.from_json_dict(report.to_json_dict())
        assert clone.counters == report.counters
        assert clone.spans == report.spans


class TestRender:
    def test_render_names_runs_and_failures(self):
        text = _report().render()
        assert "gzip.Hyb.s0.aaaa" in text
        assert "engine.trigger_crossings" in text
        assert "step.thermal" in text
        assert "SimulationError" in text

    def test_empty_report_renders_meta_only(self):
        text = SweepReport.build([]).render()
        assert "n_runs" in text


class TestPrometheus:
    def test_report_export_contains_counters_and_spans(self):
        text = _report().prometheus_text()
        assert "repro_engine_trigger_crossings 4" in text
        assert 'repro_span_seconds_total{name="run.total"} 2' in text
        assert 'repro_span_calls_total{name="step.thermal"} 40' in text

    def test_registry_export_histogram_is_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h.x", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 100.0):
            histogram.observe(value)
        text = prometheus_text(registry=registry)
        assert 'repro_h_x_bucket{le="1"} 1' in text
        assert 'repro_h_x_bucket{le="10"} 2' in text
        assert 'repro_h_x_bucket{le="+Inf"} 3' in text
        assert "repro_h_x_count 3" in text
        assert "repro_h_x_sum 105.5" in text

    def test_counter_and_gauge_export(self):
        registry = MetricsRegistry()
        registry.counter("c.x").inc(2)
        registry.gauge("g.x").set(-1.5)
        text = prometheus_text(registry=registry)
        assert "# TYPE repro_c_x counter" in text
        assert "repro_c_x 2" in text
        assert "# TYPE repro_g_x gauge" in text
        assert "repro_g_x -1.5" in text
