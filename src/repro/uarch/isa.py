"""Synthetic micro-op instruction classes.

The detailed core is trace-driven: it executes streams of abstract
micro-ops rather than real Alpha binaries (see the substitution table in
DESIGN.md).  Each class carries an execution latency and a functional-unit
cluster.
"""

from __future__ import annotations

import enum
from typing import Mapping


class OpClass(enum.Enum):
    """Micro-op categories with their functional-unit cluster."""

    IALU = "ialu"
    IMUL = "imul"
    FADD = "fadd"
    FMUL = "fmul"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"

    @property
    def is_fp(self) -> bool:
        """True for floating-point cluster operations."""
        return self in (OpClass.FADD, OpClass.FMUL)

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self in (OpClass.LOAD, OpClass.STORE)


EXECUTION_LATENCY: Mapping[OpClass, int] = {
    OpClass.IALU: 1,
    OpClass.IMUL: 7,
    OpClass.FADD: 4,
    OpClass.FMUL: 4,
    OpClass.LOAD: 1,  # address generation; cache latency added separately
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
}
"""Execution latency in cycles per op class (21264-like)."""


def execution_latency(op_class: OpClass) -> int:
    """Latency in cycles for ``op_class`` (excluding cache misses)."""
    return EXECUTION_LATENCY[op_class]
