"""Prometheus text exporter edge cases: NaN/Inf spellings, label
escaping, cumulative bucket monotonicity, and empty-registry output.

These run against private registries, never the process-wide one, so
they are isolated by construction.
"""

import math

from repro.obs import metrics
from repro.obs.export import _escape_label, _fmt, prometheus_text


class TestFmt:
    def test_nan_and_inf_spellings(self):
        # Prometheus text requires exactly these; int(nan)/int(inf)
        # raise, so the guards must come first.
        assert _fmt(float("nan")) == "NaN"
        assert _fmt(float("inf")) == "+Inf"
        assert _fmt(float("-inf")) == "-Inf"

    def test_integral_and_float_values(self):
        assert _fmt(3.0) == "3"
        assert _fmt(-2.0) == "-2"
        assert _fmt(0.25) == "0.25"
        # Beyond the exact-int window, falls back to repr.
        assert _fmt(1e18) == "1e+18"


class TestLabelEscaping:
    def test_backslash_quote_newline(self):
        assert _escape_label("a\\b") == "a\\\\b"
        assert _escape_label('say "hi"') == 'say \\"hi\\"'
        assert _escape_label("two\nlines") == "two\\nlines"

    def test_span_name_is_escaped_in_output(self):
        text = prometheus_text(
            registry=metrics.MetricsRegistry(),
            counters={},
            spans={'odd\\name "x"\n': (1.5, 3)},
        )
        assert '{name="odd\\\\name \\"x\\"\\n"}' in text
        # No raw newline may survive inside a label value.
        for line in text.splitlines():
            assert line.count('"') % 2 == 0


class TestGaugeEdgeValues:
    def test_nan_and_inf_gauges_render(self):
        registry = metrics.MetricsRegistry()
        registry.gauge("edge.nan").set(float("nan"))
        registry.gauge("edge.pos").set(float("inf"))
        registry.gauge("edge.neg").set(float("-inf"))
        text = prometheus_text(registry=registry, spans={})
        assert "repro_edge_nan NaN" in text
        assert "repro_edge_pos +Inf" in text
        assert "repro_edge_neg -Inf" in text


class TestHistogram:
    def test_buckets_are_cumulative_and_monotone(self):
        registry = metrics.MetricsRegistry()
        hist = registry.histogram("lat", bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        text = prometheus_text(registry=registry, spans={})
        buckets = []
        for line in text.splitlines():
            if line.startswith("repro_lat_bucket"):
                buckets.append(int(line.rsplit(" ", 1)[1]))
        # le="0.1", le="1", le="10", le="+Inf" — cumulative form.
        assert buckets == [1, 3, 4, 5]
        assert buckets == sorted(buckets)
        # The +Inf bucket must equal _count.
        assert f"repro_lat_count {hist.count}" in text
        assert buckets[-1] == hist.count
        assert f"repro_lat_sum {repr(float(hist.sum))}" in text

    def test_inf_bound_spelling_in_le_label(self):
        registry = metrics.MetricsRegistry()
        registry.histogram("one", bounds=(1.0,)).observe(0.5)
        text = prometheus_text(registry=registry, spans={})
        assert 'repro_one_bucket{le="1"} 1' in text
        assert 'repro_one_bucket{le="+Inf"} 1' in text

    def test_sum_keeps_full_float_precision(self):
        registry = metrics.MetricsRegistry()
        hist = registry.histogram("prec", bounds=(1.0,))
        hist.observe(0.1)
        hist.observe(0.2)
        text = prometheus_text(registry=registry, spans={})
        assert f"repro_prec_sum {repr(0.1 + 0.2)}" in text


class TestEmptyRegistry:
    def test_empty_registry_no_spans_is_empty_string(self):
        assert prometheus_text(registry=metrics.MetricsRegistry(), spans={}) == ""

    def test_empty_registry_live_spans_still_exports_totals(self):
        text = prometheus_text(
            registry=metrics.MetricsRegistry(),
            spans={"step": (0.5, 2)},
        )
        assert 'repro_span_seconds_total{name="step"} 0.5' in text
        assert 'repro_span_calls_total{name="step"} 2' in text
        assert text.endswith("\n")

    def test_nan_sum_does_not_crash_export(self):
        registry = metrics.MetricsRegistry()
        registry.histogram("odd", bounds=(1.0,)).observe(float("nan"))
        text = prometheus_text(registry=registry, spans={})
        assert "repro_odd_sum nan" in text
        assert math.isnan(registry._histograms["odd"].sum)
