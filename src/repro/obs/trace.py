"""Lightweight span tracing with process totals and per-run aggregation.

``with span("sweep.total"):`` times a block and records it under the
span's name.  Recording is two-level:

* **process totals** -- cumulative ``{name: (seconds, calls)}`` since
  the last reset.  The engine's per-section step timers
  (``sense`` / ``policy`` / ``perf`` / ``power`` / ``thermal``) record
  through :func:`record` into the same table, so ``python -m repro
  bench`` and the Prometheus export read one source of truth;
* **run aggregates** -- when a run context is open
  (:func:`begin_run` / :func:`end_run`, managed by
  :mod:`repro.obs.runctx`), the same recordings also land in the run's
  own table, which travels to the sweep parent in the run's spill
  record.  Aggregates nest (a stack), so a supervised serial fallback
  running inside a sweep span attributes time correctly.

When observability is disabled, :func:`span` returns a shared no-op
singleton -- no object allocation, no clock read -- which the
disabled-overhead tests assert.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics

_TOTALS: Dict[str, List[float]] = {}  # name -> [seconds, calls]
_RUN_STACK: List[Dict[str, List[float]]] = []


def record(name: str, seconds: float) -> None:
    """Add one timed interval under ``name``.

    Unconditional by design: callers gate on their own flags (the
    engine's step timers run under ``REPRO_STEP_TIMING`` even with
    observability off).
    """
    entry = _TOTALS.get(name)
    if entry is None:
        entry = _TOTALS[name] = [0.0, 0]
    entry[0] += seconds
    entry[1] += 1
    if _RUN_STACK:
        run = _RUN_STACK[-1]
        entry = run.get(name)
        if entry is None:
            entry = run[name] = [0.0, 0]
        entry[0] += seconds
        entry[1] += 1


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "_t0")

    def __init__(self, name: str):
        self.name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        record(self.name, perf_counter() - self._t0)
        return False


def span(name: str):
    """A context manager timing its block under ``name``.

    Returns the shared no-op singleton when observability is disabled,
    so a disabled call allocates nothing.
    """
    if not metrics.enabled():
        return _NULL_SPAN
    return _Span(name)


def totals() -> Dict[str, Tuple[float, int]]:
    """Cumulative ``{name: (seconds, calls)}`` since the last reset."""
    return {name: (entry[0], entry[1]) for name, entry in _TOTALS.items()}


def reset_totals() -> None:
    """Zero the process-lifetime span totals."""
    _TOTALS.clear()


def begin_run() -> None:
    """Open a fresh per-run aggregate (nestable)."""
    _RUN_STACK.append({})


def end_run() -> Dict[str, Tuple[float, int]]:
    """Close the innermost per-run aggregate and return it."""
    if not _RUN_STACK:
        return {}
    run = _RUN_STACK.pop()
    return {name: (entry[0], entry[1]) for name, entry in run.items()}


def reset_run_stack() -> None:
    """Drop any open run aggregates (test isolation)."""
    _RUN_STACK.clear()
