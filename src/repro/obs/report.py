"""The merged sweep report.

:func:`repro.sim.batch.run_many` collects every per-run spill record
(parent and pool workers alike) plus the supervisor's sweep-level
telemetry and folds them into one :class:`SweepReport`:

* ``counters`` -- the sum of every run's numeric metrics (trigger
  crossings, DTM engagement steps, fast-forward spans, fallback
  activations, ...) plus sweep-level counters (retries, pool rebuilds);
* ``spans`` -- per-run span tables summed across all workers;
* ``runs`` -- the individual run records, for per-run drill-down
  (per-run trigger crossings, DTM duty cycle, wall time);
* ``failures`` -- failed-run descriptions from the supervisor;
* ``meta`` -- sweep identity and shape (run counts, degradation reason
  when the supervisor abandoned its pool, wall time).

Counters come **only** from run records and explicit sweep-level
telemetry -- never by merging worker registries with the parent's --
so serial and pooled sweeps of the same specs produce the same counts.

The report serialises to JSONL (one ``meta`` line, then one line per
run and failure) and to Prometheus text via the shared exporter, and
renders as an ASCII summary for ``python -m repro report``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import export


def _render_table(headers, rows, title=""):
    # Imported lazily: repro.analysis pulls in the full package graph
    # (engine, sensors, ...), which itself imports repro.obs -- a
    # module-level import here would be circular.
    from repro.analysis.tables import render_table

    return render_table(headers, rows, title=title)


@dataclass
class SweepReport:
    """Merged observability record of one sweep."""

    meta: Dict[str, object] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    spans: Dict[str, Tuple[float, int]] = field(default_factory=dict)
    runs: List[Dict[str, object]] = field(default_factory=list)
    failures: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        records: Sequence[Dict[str, object]],
        failures: Sequence[Dict[str, object]] = (),
        meta: Optional[Dict[str, object]] = None,
        sweep_counters: Optional[Dict[str, float]] = None,
    ) -> "SweepReport":
        """Fold per-run spill ``records`` and sweep-level telemetry into
        one report.  ``sweep_counters`` are counts that belong to the
        sweep rather than any run (retries, pool rebuilds, degradation).
        """
        counters: Dict[str, float] = {}
        spans: Dict[str, List[float]] = {}
        runs: List[Dict[str, object]] = []
        for record in records:
            runs.append(record)
            for name, value in (record.get("metrics") or {}).items():
                counters[name] = counters.get(name, 0.0) + float(value)
            for name, pair in (record.get("spans") or {}).items():
                entry = spans.setdefault(name, [0.0, 0])
                entry[0] += float(pair[0])
                entry[1] += int(pair[1])
        for name, value in (sweep_counters or {}).items():
            if value:
                counters[name] = counters.get(name, 0.0) + float(value)
        report_meta: Dict[str, object] = {
            "n_runs": len(runs),
            "n_failures": len(failures),
        }
        if meta:
            report_meta.update(meta)
        return cls(
            meta=report_meta,
            counters=counters,
            spans={
                name: (entry[0], entry[1]) for name, entry in spans.items()
            },
            runs=runs,
            failures=list(failures),
        )

    # --- serialisation ------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "meta": self.meta,
            "counters": self.counters,
            "spans": {
                name: [seconds, calls]
                for name, (seconds, calls) in self.spans.items()
            },
            "runs": self.runs,
            "failures": self.failures,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "SweepReport":
        return cls(
            meta=dict(data.get("meta") or {}),
            counters={
                str(k): float(v)
                for k, v in (data.get("counters") or {}).items()
            },
            spans={
                str(k): (float(v[0]), int(v[1]))
                for k, v in (data.get("spans") or {}).items()
            },
            runs=list(data.get("runs") or []),
            failures=list(data.get("failures") or []),
        )

    def save(self, path) -> Path:
        """Write the report as JSONL: a ``meta`` line carrying the
        aggregates, then one line per run record and per failure."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            head = {
                "kind": "sweep_report",
                "meta": self.meta,
                "counters": self.counters,
                "spans": {
                    name: [seconds, calls]
                    for name, (seconds, calls) in self.spans.items()
                },
            }
            handle.write(json.dumps(head, sort_keys=True, default=str) + "\n")
            for run in self.runs:
                handle.write(json.dumps(run, sort_keys=True, default=str) + "\n")
            for failure in self.failures:
                record = {"kind": "failure"}
                record.update(failure)
                handle.write(
                    json.dumps(record, sort_keys=True, default=str) + "\n"
                )
        return path

    @classmethod
    def load(cls, path) -> "SweepReport":
        """Read a report written by :meth:`save`."""
        meta: Dict[str, object] = {}
        counters: Dict[str, float] = {}
        spans: Dict[str, Tuple[float, int]] = {}
        runs: List[Dict[str, object]] = []
        failures: List[Dict[str, object]] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.get("kind")
                if kind == "sweep_report":
                    meta = dict(record.get("meta") or {})
                    counters = {
                        str(k): float(v)
                        for k, v in (record.get("counters") or {}).items()
                    }
                    spans = {
                        str(k): (float(v[0]), int(v[1]))
                        for k, v in (record.get("spans") or {}).items()
                    }
                elif kind == "failure":
                    failures.append(
                        {k: v for k, v in record.items() if k != "kind"}
                    )
                else:
                    runs.append(record)
        return cls(
            meta=meta,
            counters=counters,
            spans=spans,
            runs=runs,
            failures=failures,
        )

    def prometheus_text(self) -> str:
        """The report's aggregates in Prometheus text format."""
        return export.prometheus_text(
            counters=self.counters,
            spans={name: pair for name, pair in self.spans.items()},
        )

    # --- rendering ----------------------------------------------------------

    def render(self) -> str:
        """Human-readable summary (``python -m repro report``)."""
        sections: List[str] = []
        meta_rows = [[key, self.meta[key]] for key in sorted(self.meta)]
        sections.append(
            _render_table(["field", "value"], meta_rows, title="sweep")
        )
        if self.counters:
            counter_rows = [
                [name, self.counters[name]] for name in sorted(self.counters)
            ]
            sections.append(
                _render_table(["counter", "total"], counter_rows,
                             title="counters")
            )
        if self.spans:
            span_rows = [
                [
                    name,
                    self.spans[name][0],
                    self.spans[name][1],
                    self.spans[name][0] / max(self.spans[name][1], 1),
                ]
                for name in sorted(self.spans)
            ]
            sections.append(
                _render_table(
                    ["span", "seconds", "calls", "mean_s"],
                    span_rows,
                    title="spans (summed across workers)",
                )
            )
        if self.runs:
            run_rows = []
            for run in self.runs:
                run_metrics = run.get("metrics") or {}
                run_rows.append([
                    run.get("run_id", "?"),
                    run.get("benchmark", "?"),
                    run.get("policy", "?"),
                    run.get("wall_seconds", 0.0),
                    run_metrics.get("engine.trigger_crossings", 0.0),
                    run_metrics.get("dtm.duty_cycle", 0.0),
                ])
            sections.append(
                _render_table(
                    ["run", "benchmark", "policy", "wall_s",
                     "crossings", "dtm_duty"],
                    run_rows,
                    title="runs",
                )
            )
        if self.failures:
            failure_rows = [
                [
                    failure.get("index", "?"),
                    failure.get("benchmark", "?"),
                    failure.get("policy", "?"),
                    failure.get("error_type", "?"),
                    str(failure.get("message", ""))[:60],
                ]
                for failure in self.failures
            ]
            sections.append(
                _render_table(
                    ["index", "benchmark", "policy", "error", "message"],
                    failure_rows,
                    title="failures",
                )
            )
        return "\n\n".join(sections)
