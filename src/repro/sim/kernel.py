"""Fused dense-span execution for the step pipeline.

The engine's hot loop normally yields one ``(solver, power, dt, 1)``
request per thermal step through the :mod:`repro.sim.contract` surface.
Between DTM decision points (sensor samples) no step can change the
engine's control state -- the command, actuation and operating point are
frozen until the next sample -- so the per-step generator round-trip,
request tuple and driver dispatch are pure overhead.  The fused kernel
lowers such a decision-free span into a single :class:`DenseSpanTask`
request: the driver makes one call, and a tight pre-bound loop inside
the engine executes the span's sample/power/step/accounting pipeline
without leaving the engine's frame.

Bit-identity with per-step dispatch is by construction: the kernel runs
the same callables on the same buffers in the same order as the per-step
path; only the generator suspension points disappear.  The conformance
suite (``tests/sim/test_step_kernel.py``) pins this across the nine
benchmark scenarios.

Backends
--------
``numpy``
    The pre-bound Python loop described above.  Always available.
``numba``
    Reserved for a JIT-lowered loop body.  numba is an optional
    dependency this project does not require; when it is importable the
    mode currently runs the numpy loop (the JIT lowering of the solver
    apply is tracked in ROADMAP.md), and when it is not importable an
    explicit request for it fails loudly rather than silently degrading.
``auto``
    numba when importable, else numpy.
``off``
    No fusion: every step goes through the contract surface
    individually (the anchor path).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.config import (
    STEP_KERNEL_AUTO,
    STEP_KERNEL_NUMBA,
    STEP_KERNEL_NUMPY,
    STEP_KERNEL_OFF,
)

__all__ = ["DenseSpanTask", "numba_available", "resolve_step_kernel"]


class DenseSpanTask:
    """A fused dense span, shipped through the engine contract.

    Engines yield ``(solver, task, dt, count)`` where ``task`` carries a
    pre-bound closure that executes ``count`` consecutive thermal steps
    (workload sample, power evaluation, solver step, accounting) inside
    the engine's own frame.  Drivers treat it like any other request:
    :func:`repro.sim.contract.service_request` dispatches on the type
    and calls :meth:`run` once instead of stepping the solver directly.

    The closure returns the solver's state vector after the final step
    (the same object a plain step request would have produced), so
    driver-side plumbing that inspects the reply keeps working.
    """

    __slots__ = ("runner", "count")

    def __init__(self, runner: Callable[[int], object], count: int):
        self.runner = runner
        self.count = count

    def run(self, solver: object) -> object:
        """Execute the span against ``solver`` and return its state."""
        return self.runner(self.count)


_NUMBA_AVAILABLE: Optional[bool] = None


def numba_available() -> bool:
    """Whether the optional numba dependency is importable (cached)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except ImportError:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def resolve_step_kernel(mode: str) -> Optional[str]:
    """Map a resolved step-kernel mode to a concrete backend.

    Returns ``None`` (no fusion), ``"numpy"`` or ``"numba"``.  An
    explicit ``"numba"`` request fails loudly when numba is not
    importable -- a perf knob that silently degrades is worse than an
    error; ``"auto"`` degrades gracefully.
    """
    if mode == STEP_KERNEL_OFF:
        return None
    if mode == STEP_KERNEL_NUMPY:
        return STEP_KERNEL_NUMPY
    if mode == STEP_KERNEL_NUMBA:
        if not numba_available():
            raise SimulationError(
                "step_kernel='numba' requested but numba is not "
                "installed; use 'numpy', 'auto' or 'off'"
            )
        return STEP_KERNEL_NUMBA
    if mode == STEP_KERNEL_AUTO:
        return STEP_KERNEL_NUMBA if numba_available() else STEP_KERNEL_NUMPY
    raise SimulationError(f"unknown step kernel mode {mode!r}")
