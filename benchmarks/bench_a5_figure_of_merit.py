"""Ablation A5 (paper future work): the a-priori cooling figure of merit.

Section 5.1 asks for "a figure of merit that is an a-priori measure of
cooling, independent of the specific experimental thermal setup".  This
bench tabulates kelvin-of-fast-cooling per percent-of-slowdown for fetch
gating levels, binary DVS, and clock gating, computed from the models
alone, and shows that the FG/DVS merit crossover predicts the duty cycle
the Figure 3a simulation sweep finds empirically.
"""

from _helpers import save_table

from repro.analysis import (
    cooling_figure_of_merit,
    predicted_crossover_gating,
    render_table,
)
from repro.floorplan import build_alpha21364_floorplan
from repro.power import PowerModel
from repro.thermal import HotSpotModel
from repro.uarch.interval import DtmActuation
from repro.workloads import build_benchmark

GATING_LEVELS = (0.05, 0.1, 0.2, 1.0 / 3.0, 0.5, 2.0 / 3.0)


def _run() -> str:
    floorplan = build_alpha21364_floorplan()
    hotspot = HotSpotModel(floorplan)
    power_model = PowerModel(floorplan)
    phase = build_benchmark("gzip").phases[0]
    curve = power_model.vf_curve

    rows = []
    for fraction in GATING_LEVELS:
        merit = cooling_figure_of_merit(
            phase, DtmActuation(gating_fraction=fraction), hotspot, power_model
        )
        rows.append(
            [f"FG duty {1.0 / fraction:.1f}", merit.cooling_k,
             merit.slowdown, merit.merit]
        )
    for ratio in (0.85, 0.90):
        merit = cooling_figure_of_merit(
            phase,
            DtmActuation(
                relative_frequency=curve.relative_frequency(ratio * 1.3)
            ),
            hotspot,
            power_model,
        )
        rows.append(
            [f"DVS {ratio:.2f}", merit.cooling_k, merit.slowdown, merit.merit]
        )
    merit = cooling_figure_of_merit(
        phase, DtmActuation(clock_enabled_fraction=0.7), hotspot, power_model
    )
    rows.append(["CG duty 0.3", merit.cooling_k, merit.slowdown, merit.merit])

    crossover = predicted_crossover_gating(phase, hotspot, power_model)
    table = render_table(
        ["response", "fast cooling (K)", "slowdown", "merit (K/%)"],
        rows,
        title="A5: a-priori cooling figure of merit (gzip deflate phase)",
    )
    return (
        f"{table}\n\npredicted FG/DVS crossover: gating fraction "
        f"{crossover:.3f} = duty cycle {1.0 / crossover:.1f} "
        f"(simulated Figure 3a sweep bottoms out at duty 3-4)"
    )


def test_a5_figure_of_merit(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("a5_figure_of_merit", table)
