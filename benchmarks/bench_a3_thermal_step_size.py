"""Ablation A3: thermal-model step-size accuracy and cost.

The paper samples power every 10 000 cycles, claiming sampling error below
0.1 % in temperature with under 1 % simulation overhead.  This ablation
integrates the same stepped power trace at several step sizes and compares
against a fine-grained reference.
"""

import time

from _helpers import save_table

from repro.analysis import render_table
from repro.floorplan import build_alpha21364_floorplan
from repro.thermal import HotSpotModel

STEP_CYCLES = (1_000, 10_000, 100_000)
FREQUENCY = 3.0e9
TRACE_MS = 2.0


def _power_at(hotspot, time_s):
    """A deterministic, phase-like power schedule (square wave between a
    hot and a cool program phase, 0.5 ms period)."""
    hot = (int(time_s / 0.5e-3) % 2) == 0
    scale = 1.5 if hot else 0.8
    return {name: scale for name in hotspot.block_names}


def _integrate(hotspot, step_cycles):
    solver = hotspot.make_transient()
    network = hotspot.network
    dt = step_cycles / FREQUENCY
    steps = int((TRACE_MS * 1e-3) / dt)
    started = time.perf_counter()
    for index in range(steps):
        powers = _power_at(hotspot, index * dt)
        solver.step(network.power_vector(powers), dt)
    elapsed = time.perf_counter() - started
    temps = network.temperatures_as_mapping(solver.temperatures)
    return temps["IntReg"], elapsed


def _run() -> str:
    hotspot = HotSpotModel(build_alpha21364_floorplan())
    reference_temp, _ = _integrate(hotspot, STEP_CYCLES[0])
    ambient = hotspot.package.ambient_c
    rows = []
    for step_cycles in STEP_CYCLES:
        temp, elapsed = _integrate(hotspot, step_cycles)
        error = abs(temp - reference_temp) / max(reference_temp - ambient, 1e-9)
        rows.append([step_cycles, temp, error * 100.0, elapsed])
    return render_table(
        ["step (cycles)", "IntReg temp (C)", "error vs 1k (%)", "wall (s)"],
        rows,
        title="A3: thermal step-size sweep (paper: 10k-cycle steps keep "
              "sampling error below 0.1%)",
    )


def test_a3_thermal_step_size(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("a3_thermal_step_size", table)
