"""Server behaviour: dedup, caching, fairness, shedding, drain, and
failure isolation.

Every test runs a real :class:`SweepService` event loop on a background
thread over a Unix socket; only execution is stubbed (the ``runner``
seam), so what is under test is exactly what production runs: the
protocol readers, the scheduler, the admission controller and the
fan-out of results.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro.service import protocol
from repro.service.client import (
    ServiceBusyError,
    ServiceClient,
    ServiceError,
)
from repro.sim.supervisor import RunFailure
from tests.service.conftest import synthetic_result


def fast_runner(spec):
    return synthetic_result(spec.workload_name, spec.policy, spec.seed)


class GatedRunner:
    """Blocks every execution until :meth:`release`; records call order."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = []

    def __call__(self, spec):
        self.calls.append((spec.workload_name, spec.policy, spec.seed))
        if not self.gate.wait(timeout=30.0):
            raise TimeoutError("test gate never released")
        return synthetic_result(spec.workload_name, spec.policy, spec.seed)

    def release(self):
        self.gate.set()


def wire(seed=0, benchmark="gzip", policy="FG"):
    return {
        "benchmark": benchmark,
        "policy": policy,
        "instructions": 1_000_000,
        "seed": seed,
    }


def connect(server) -> socket.socket:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(30.0)
    sock.connect(server.service.config.socket_path)
    return sock


def submit_raw(sock, specs):
    """Send a submit and return only the acceptance frame; result
    frames stay queued on the socket for later reads."""
    protocol.send_frame(sock, {"op": "submit", "specs": specs})
    return protocol.recv_frame(sock)


def read_results(sock, n):
    frames = []
    while len(frames) < n:
        frame = protocol.recv_frame(sock)
        assert frame is not None, "connection closed awaiting results"
        if frame.get("op") == "result":
            frames.append(frame)
    return frames


def wait_for(predicate, timeout=20.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


class TestHappyPath:
    def test_ping_and_status(self, service_factory):
        server = service_factory(fast_runner)
        with ServiceClient(server.service.config.socket_path) as client:
            assert client.ping()["version"] == protocol.PROTOCOL_VERSION
            status = client.status()
        assert status["draining"] is False
        assert status["queue_depth"] == 0
        assert status["clients"] == 1
        assert status["cache"]["entries"] == 0

    def test_submit_then_cached_replay(self, service_factory):
        calls = []

        def counting_runner(spec):
            calls.append(spec.seed)
            return fast_runner(spec)

        server = service_factory(counting_runner)
        address = server.service.config.socket_path
        with ServiceClient(address) as client:
            first = client.submit([wire(seed=1)], timeout_s=30.0)
        assert len(first) == 1 and first[0].ok and not first[0].cached
        with ServiceClient(address) as client:
            second = client.submit([wire(seed=1)], timeout_s=30.0)
        assert second[0].ok and second[0].cached
        assert second[0].digest == first[0].digest
        # The cache replays bit-identically; nothing re-executed.
        assert second[0].result.to_json_dict() == first[0].result.to_json_dict()
        assert calls == [1]

    def test_restart_recovers_cache(self, service_factory, tmp_path):
        calls = []

        def counting_runner(spec):
            calls.append(spec.seed)
            return fast_runner(spec)

        cache_dir = str(tmp_path / "shared-cache")
        server = service_factory(counting_runner, cache_dir=cache_dir)
        with ServiceClient(server.service.config.socket_path) as client:
            client.submit([wire(seed=5)], timeout_s=30.0)
        assert server.stop() == 0
        # A new server over the same cache directory serves the result
        # without ever invoking the runner again.
        reborn = service_factory(counting_runner, cache_dir=cache_dir)
        with ServiceClient(reborn.service.config.socket_path) as client:
            replay = client.submit([wire(seed=5)], timeout_s=30.0)
        assert replay[0].cached
        assert calls == [5]

    def test_in_submission_duplicates_resolve_once(self, service_factory):
        server = service_factory(fast_runner)
        with ServiceClient(server.service.config.socket_path) as client:
            outcomes = client.submit(
                [wire(seed=7), wire(seed=7)], timeout_s=30.0
            )
        assert len(outcomes) == 2
        assert outcomes[0].digest == outcomes[1].digest
        assert all(o.ok for o in outcomes)


class TestDedupAndFairness:
    def test_concurrent_identical_specs_join_one_job(self, service_factory):
        runner = GatedRunner()
        server = service_factory(runner)
        a, b = connect(server), connect(server)
        try:
            accept_a = submit_raw(a, [wire(seed=3)])
            assert accept_a["ok"] and accept_a["new_jobs"] == 1
            wait_for(lambda: server.service._running is not None,
                     what="job to start")
            accept_b = submit_raw(b, [wire(seed=3)])
            assert accept_b["ok"] and accept_b["new_jobs"] == 0
            wait_for(lambda: server.service.dedup_joins == 1,
                     what="dedup join")
            runner.release()
            result_a = read_results(a, 1)[0]
            result_b = read_results(b, 1)[0]
        finally:
            a.close()
            b.close()
        assert result_a["ok"] and result_b["ok"]
        assert result_a["digest"] == result_b["digest"]
        assert result_a["result"] == result_b["result"]
        assert len(runner.calls) == 1  # executed exactly once

    def test_round_robin_across_clients(self, service_factory):
        runner = GatedRunner()
        server = service_factory(runner)
        a, b = connect(server), connect(server)
        try:
            # a0 occupies the executor; a1/a2 queue behind it for
            # client A, b0 for client B.
            assert submit_raw(a, [wire(seed=0)])["ok"]
            wait_for(lambda: server.service._running is not None,
                     what="first job to start")
            assert submit_raw(a, [wire(seed=1), wire(seed=2)])["ok"]
            assert submit_raw(b, [wire(seed=100)])["ok"]
            wait_for(lambda: server.service._queued_total == 3,
                     what="three queued jobs")
            runner.release()
            read_results(a, 3)
            read_results(b, 1)
        finally:
            a.close()
            b.close()
        # Fairness: B's single job is interleaved after one of A's, not
        # starved behind A's whole queue.
        assert [seed for _, _, seed in runner.calls] == [0, 1, 100, 2]


class TestLoadShedding:
    def test_overflow_is_shed_with_busy(self, service_factory):
        runner = GatedRunner()
        server = service_factory(runner, max_queue=1)
        address = server.service.config.socket_path
        a = connect(server)
        try:
            assert submit_raw(a, [wire(seed=0)])["ok"]
            wait_for(lambda: server.service._running is not None,
                     what="first job to start")
            assert submit_raw(a, [wire(seed=1)])["ok"]  # fills the queue
            with ServiceClient(address) as client:
                with pytest.raises(ServiceBusyError, match="queue full"):
                    client.submit([wire(seed=2)], timeout_s=30.0)
                # Atomicity: a two-spec batch needing two slots is shed
                # whole, even though zero slots remain for either.
                with pytest.raises(ServiceBusyError):
                    client.submit([wire(seed=3), wire(seed=4)],
                                  timeout_s=30.0)
                status = client.status()
            assert status["shed"] == 2
            assert status["queue_depth"] == 1  # nothing was admitted
            runner.release()
            read_results(a, 2)
        finally:
            a.close()
        # Shedding is not a ban: the same spec resubmits fine later.
        with ServiceClient(address) as client:
            outcome = client.submit([wire(seed=2)], timeout_s=30.0)
        assert outcome[0].ok

    def test_duplicates_and_cache_hits_cost_no_admission(
        self, service_factory
    ):
        runner = GatedRunner()
        runner.release()  # run through immediately
        server = service_factory(runner, max_queue=1)
        address = server.service.config.socket_path
        with ServiceClient(address) as client:
            client.submit([wire(seed=0)], timeout_s=30.0)
            # All cached or duplicate: admissible even at max_queue=1.
            outcomes = client.submit(
                [wire(seed=0), wire(seed=0), wire(seed=0)], timeout_s=30.0
            )
        assert all(o.cached for o in outcomes)


class TestFailureIsolation:
    def test_malformed_spec_rejects_batch_atomically(self, service_factory):
        server = service_factory(fast_runner)
        with ServiceClient(server.service.config.socket_path) as client:
            with pytest.raises(ServiceError, match="unknown benchmark"):
                client.submit(
                    [wire(seed=0), {"benchmark": "nope"}], timeout_s=30.0
                )
            # Nothing was admitted and the connection still works.
            status = client.status()
            assert status["queue_depth"] == 0
            assert client.submit([wire(seed=0)], timeout_s=30.0)[0].ok

    def test_empty_submission_rejected(self, service_factory):
        server = service_factory(fast_runner)
        with ServiceClient(server.service.config.socket_path) as client:
            with pytest.raises(ServiceError, match="non-empty"):
                client.submit([], timeout_s=30.0)

    def test_unknown_op_answered_not_fatal(self, service_factory):
        server = service_factory(fast_runner)
        sock = connect(server)
        try:
            protocol.send_frame(sock, {"op": "explode"})
            reply = protocol.recv_frame(sock)
            assert reply["ok"] is False and "unknown op" in reply["error"]
            protocol.send_frame(sock, {"op": "ping"})
            assert protocol.recv_frame(sock)["ok"]
        finally:
            sock.close()

    def test_garbage_frame_poisons_only_its_connection(
        self, service_factory
    ):
        server = service_factory(fast_runner)
        bystander = ServiceClient(server.service.config.socket_path)
        evil = connect(server)
        try:
            payload = b"this is not json!!"
            evil.sendall(struct.pack(">I", len(payload)) + payload)
            reply = protocol.recv_frame(evil)
            assert reply["ok"] is False
            # The server hangs up on the offender...
            assert protocol.recv_frame(evil) is None
            # ...while the bystander and the event loop are untouched.
            assert bystander.ping()["ok"]
            assert bystander.status()["protocol_errors"] == 1
            assert bystander.submit([wire()], timeout_s=30.0)[0].ok
        finally:
            evil.close()
            bystander.close()

    def test_oversized_frame_refused(self, service_factory):
        server = service_factory(fast_runner, max_frame_bytes=256)
        sock = connect(server)
        try:
            big = {"op": "submit", "specs": [wire(seed=s) for s in range(50)]}
            protocol.send_frame(sock, big)
            reply = protocol.recv_frame(sock)
            assert reply["ok"] is False and "byte limit" in reply["error"]
        finally:
            sock.close()
        # Server still alive for well-behaved clients.
        with ServiceClient(server.service.config.socket_path) as client:
            assert client.ping()["ok"]

    def test_failed_run_answered_but_never_cached(self, service_factory):
        attempts = []

        def flaky_runner(spec):
            attempts.append(spec.seed)
            if len(attempts) == 1:
                return RunFailure(
                    index=0, digest="x", benchmark=spec.workload_name,
                    policy=spec.policy, error_type="SimulationError",
                    message="injected fault", attempts=1,
                )
            return fast_runner(spec)

        server = service_factory(flaky_runner)
        address = server.service.config.socket_path
        with ServiceClient(address) as client:
            failed = client.submit([wire(seed=9)], timeout_s=30.0)
            assert not failed[0].ok
            assert "injected fault" in failed[0].error
            # The failure was not cached: resubmission re-executes and
            # succeeds once the fault clears.
            retried = client.submit([wire(seed=9)], timeout_s=30.0)
            assert retried[0].ok and not retried[0].cached
            status = client.status()
        assert attempts == [9, 9]
        assert status["jobs_failed"] == 1
        assert status["jobs_done"] == 1
        assert status["cache"]["entries"] == 1

    def test_crashing_runner_answered_not_fatal(self, service_factory):
        def crashing_runner(spec):
            raise RuntimeError("runner blew up")

        server = service_factory(crashing_runner)
        with ServiceClient(server.service.config.socket_path) as client:
            outcome = client.submit([wire(seed=4)], timeout_s=30.0)
            assert not outcome[0].ok
            assert "runner blew up" in outcome[0].error
            assert client.ping()["ok"]  # loop survived


class TestDisconnect:
    def test_disconnect_cancels_queued_but_not_running(
        self, service_factory
    ):
        runner = GatedRunner()
        server = service_factory(runner)
        address = server.service.config.socket_path
        doomed = connect(server)
        # s1 runs (gated), s2 queues; then the client vanishes.
        assert submit_raw(doomed, [wire(seed=1)])["ok"]
        wait_for(lambda: server.service._running is not None,
                 what="first job to start")
        assert submit_raw(doomed, [wire(seed=2)])["ok"]
        wait_for(lambda: server.service._queued_total == 1,
                 what="second job to queue")
        doomed.close()
        wait_for(lambda: server.service.cancelled == 1,
                 what="queued job cancellation")
        # The running job was NOT cancelled; it completes and is cached
        # for whoever asks next.
        runner.release()
        wait_for(lambda: server.service.jobs_done == 1,
                 what="running job completion")
        with ServiceClient(address) as client:
            outcome = client.submit([wire(seed=1)], timeout_s=30.0)
            assert outcome[0].cached
            status = client.status()
        assert status["cancelled"] == 1
        assert status["queue_depth"] == 0
        assert [seed for _, _, seed in runner.calls] == [1]

    def test_shared_job_survives_one_waiter_leaving(self, service_factory):
        runner = GatedRunner()
        server = service_factory(runner)
        a, b = connect(server), connect(server)
        try:
            assert submit_raw(a, [wire(seed=1)])["ok"]
            wait_for(lambda: server.service._running is not None,
                     what="job to start")
            assert submit_raw(a, [wire(seed=2)])["ok"]   # queued
            assert submit_raw(b, [wire(seed=2)])["ok"]   # joins the queued job
            wait_for(lambda: server.service.dedup_joins == 1,
                     what="dedup join")
            a.close()  # A leaves; B still waits on the shared job
            wait_for(lambda: server.service.status()["clients"] == 1,
                     what="disconnect processing")
            assert server.service.cancelled == 0
            runner.release()
            result = read_results(b, 1)[0]
            assert result["ok"]
        finally:
            b.close()


class TestGracefulDrain:
    def test_drain_finishes_running_and_refuses_queued(
        self, service_factory
    ):
        runner = GatedRunner()
        server = service_factory(runner)
        address = server.service.config.socket_path
        sock = connect(server)
        try:
            accept_run = submit_raw(sock, [wire(seed=1)])  # running
            assert accept_run["ok"]
            wait_for(lambda: server.service._running is not None,
                     what="job to start")
            accept_queued = submit_raw(sock, [wire(seed=2)])  # queued
            assert accept_queued["ok"]
            wait_for(lambda: server.service._queued_total == 1,
                     what="queued job")
            # Connect *before* the drain: afterwards the listener is
            # closed, so existing connections are the only way in.
            with ServiceClient(address) as late:
                late.drain()
                # Submissions on surviving connections are refused
                # immediately while draining.
                with pytest.raises(ServiceBusyError, match="draining"):
                    late.submit([wire(seed=3)], timeout_s=30.0)
            runner.release()
            frames = read_results(sock, 2)
        finally:
            sock.close()
        by_digest = {f["digest"]: f for f in frames}
        # The in-flight run finished and was answered...
        assert by_digest[accept_run["digests"][0]]["ok"]
        # ...the queued run was refused, loudly.
        refused = by_digest[accept_queued["digests"][0]]
        assert refused["ok"] is False
        assert "draining" in refused["error"]
        assert server.stop() == 0
        assert server.service.drain_seconds is not None
        assert [seed for _, _, seed in runner.calls] == [1]

    def test_stale_socket_file_is_reclaimed(self, service_factory, tmp_path):
        # A SIGKILLed server cannot unlink its socket; a restart must
        # reclaim the stale file instead of refusing to bind.
        stale = tmp_path / "stale.sock"
        stale.touch()
        server = service_factory(fast_runner, socket_path=str(stale))
        with ServiceClient(str(stale)) as client:
            assert client.ping()["ok"]

    def test_live_socket_is_not_stolen(self, service_factory, tmp_path):
        from repro.errors import SimulationError
        from repro.service.server import ServerThread, ServiceConfig

        server = service_factory(fast_runner)
        path = server.service.config.socket_path
        rival = ServerThread(ServiceConfig(
            cache_dir=str(tmp_path / "rival-cache"),
            socket_path=path,
            runner=fast_runner,
        ))
        with pytest.raises(SimulationError, match="live server"):
            rival.start(timeout=10.0)
        # The incumbent is untouched.
        with ServiceClient(path) as client:
            assert client.ping()["ok"]

    def test_idle_drain_exits_promptly(self, service_factory):
        server = service_factory(fast_runner)
        assert server.stop(timeout=30.0) == 0

    def test_second_drain_is_idempotent(self, service_factory):
        server = service_factory(fast_runner)
        with ServiceClient(server.service.config.socket_path) as client:
            client.drain()
        server.service.request_drain_threadsafe()  # second request: no-op
        assert server.stop() == 0
