"""Lockstep batched execution of many simulation runs in one process.

The process-pool path in :mod:`repro.sim.batch` parallelises *across*
runs; this module instead advances many runs *together* in a single
process.  Every run is the engine's :meth:`~repro.sim.engine.
SimulationEngine.iter_run` generator, which suspends at each thermal
step and asks the driver to advance its solver.  The driver collects
the pending requests of all live runs, groups the compatible ones
(same stepper class, same shared network, same dt) and services each
group with one batched BLAS-3 operation via
:func:`~repro.thermal.solver.step_lockstep`; fast-forward jumps, odd
time steps and the last survivors of a draining batch are serviced
individually.  Per-run physics is untouched -- sensing, policy, power
and accounting all run inside the generators -- so lockstep results
match :func:`~repro.sim.batch.run_one` to BLAS summation order.

Because runs under DVS change their cycle time independently, grouping
is re-derived every round from the requests actually pending: runs
drift apart in simulated time but still batch whenever their current
step lengths coincide (the common case -- most policies hold the
nominal frequency for long stretches).

Specs with ``raise_on_violation`` fall back to the serial runner: an
emergency must abort only its own run, not the whole batch.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import runctx as obs_runctx
from repro.obs import spill as obs_spill
from repro.sim.results import RunResult
from repro.thermal.solver import step_lockstep

# Sequence number for chunk record ids within one process.
_CHUNK_SEQ = 0


def run_lockstep(specs) -> List[RunResult]:
    """Execute ``specs`` in lockstep and return results in spec order.

    Equivalent to ``[run_one(s) for s in specs]`` up to BLAS summation
    order (see module docstring); the wins are shared per-step overhead
    and matrix-matrix arithmetic across the batch.
    """
    from repro.sim.batch import (
        _build_policy,
        _default_substrate,
        _resolve_workload,
        run_one,
        steady_state_for,
    )
    from repro.sim.engine import SimulationEngine
    from repro.sim.faults import fire_prerun_faults

    specs = list(specs)
    results: List[Optional[RunResult]] = [None] * len(specs)
    generators: Dict[int, object] = {}
    pending: Dict[int, tuple] = {}

    # One telemetry record per chunk: the interleaved generators share
    # one process, so per-run attribution is impossible here -- instead
    # the engines' end-of-run publishes land in this chunk-level run
    # context (runs delegated to run_one below open their own nested
    # context, so their metrics stay per-run and are not double
    # counted).
    obs_on = obs_metrics.enabled()
    if obs_on:
        global _CHUNK_SEQ
        _CHUNK_SEQ += 1
        obs_runctx.begin(
            f"lockstep.p{os.getpid()}.c{_CHUNK_SEQ}",
            benchmark=f"lockstep[{len(specs)}]",
            policy="chunk",
            chunk=True,
            runs=len(specs),
        )
    error: Optional[str] = None

    floorplan, hotspot, power_model = _default_substrate()
    try:
        for index, spec in enumerate(specs):
            if spec.config.raise_on_violation:
                results[index] = run_one(spec)
                continue
            fire_prerun_faults(spec.config.fault_plan, spec.seed)
            workload = _resolve_workload(spec)
            initial = spec.initial
            if initial is None:
                initial = steady_state_for(workload)
            engine = SimulationEngine(
                workload,
                policy=_build_policy(spec),
                floorplan=floorplan,
                hotspot=hotspot,
                power_model=power_model,
                config=spec.config,
                seed=spec.seed,
            )
            generator = engine.iter_run(
                spec.instructions,
                initial=np.array(initial, dtype=float, copy=True),
                settle_time_s=spec.settle_time_s,
            )
            generators[index] = generator
            _advance(index, None, generators, pending, results)

        while pending:
            # Group the pending single-step requests by (stepper class,
            # network identity, dt); multi-step fast-forwards and groups of
            # one are serviced through the solver's own methods.
            groups: Dict[Tuple, List[int]] = {}
            singles: List[int] = []
            for index, (solver, _power, dt, count) in pending.items():
                if count == 1:
                    key = (type(solver), id(solver.network), dt)
                    groups.setdefault(key, []).append(index)
                else:
                    singles.append(index)

            replies: Dict[int, np.ndarray] = {}
            for indices in groups.values():
                if len(indices) == 1:
                    singles.extend(indices)
                    continue
                solvers = [pending[i][0] for i in indices]
                powers = [pending[i][1] for i in indices]
                dt = pending[indices[0]][2]
                for i, temps in zip(
                    indices, step_lockstep(solvers, powers, dt)
                ):
                    replies[i] = temps
            for index in singles:
                solver, power, dt, count = pending[index]
                if count == 1:
                    replies[index] = solver.step(power, dt, copy=False)
                else:
                    replies[index] = solver.fast_forward(
                        power, dt, count, copy=False
                    )

            for index in sorted(replies):
                _advance(index, replies[index], generators, pending, results)
    except BaseException as exc:
        error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        # One run failing (or the driver itself raising) must not leak
        # the other runs' suspended generators: close them all so their
        # engines unwind now, not at a garbage collection of unknowable
        # timing.  On clean completion the dict is already empty.
        for generator in generators.values():
            try:
                generator.close()
            except Exception:  # pragma: no cover - defensive
                pass
        generators.clear()
        pending.clear()
        if obs_on:
            obs_spill.record(obs_runctx.end(error=error))

    return results


def _advance(
    index: int,
    reply: Optional[np.ndarray],
    generators: Dict[int, object],
    pending: Dict[int, tuple],
    results: List[Optional[RunResult]],
) -> None:
    """Resume one run until its next thermal-step request or completion."""
    try:
        pending[index] = generators[index].send(reply)
    except StopIteration as stop:
        results[index] = stop.value
        pending.pop(index, None)
        del generators[index]
