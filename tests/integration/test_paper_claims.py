"""The paper's headline claims, verified on the full suite.

The instruction budget matches the benchmark harness's default (20 M per
run, about 7 ms of execution -- several thermal regulation periods, which
is what makes slowdown comparisons stable).  This module is the slowest
part of the test suite (~2 minutes) but guards the reproduction's core
results.
"""

import pytest

from repro.core import evaluate_techniques, overhead_reduction
from repro.core.evaluation import run_baselines

N = 20_000_000
SETTLE = 2.0e-3


@pytest.fixture(scope="module")
def baselines():
    return run_baselines(instructions=N, settle_time_s=SETTLE)


@pytest.fixture(scope="module")
def stall(baselines):
    return evaluate_techniques(dvs_mode="stall", baselines=baselines)


@pytest.fixture(scope="module")
def ideal(baselines):
    return evaluate_techniques(dvs_mode="ideal", baselines=baselines)


class TestProtection:
    def test_all_techniques_violation_free(self, stall, ideal):
        for results in (stall, ideal):
            for name, evaluation in results.items():
                assert evaluation.total_violations == 0, name

    def test_baselines_spend_nearly_all_time_above_trigger(self, baselines):
        # Paper Section 3: "All operate above [the trigger] 95+% of the
        # time and above 90% most of the time."
        for name, run in baselines.baseline.items():
            assert run.fraction_above_trigger > 0.9, name

    def test_integer_register_file_is_always_the_hotspot(self, baselines):
        for name, run in baselines.baseline.items():
            assert run.hottest_block == "IntReg", name


class TestOrdering:
    def test_fetch_gating_is_the_worst_standalone_technique(self, stall):
        fg = stall["FG"].mean_slowdown
        for other in ("DVS", "PI-Hyb", "Hyb"):
            assert fg > stall[other].mean_slowdown

    def test_hybrids_beat_dvs_under_stall(self, stall):
        dvs = stall["DVS"].mean_slowdown
        assert stall["PI-Hyb"].mean_slowdown < dvs
        assert stall["Hyb"].mean_slowdown < dvs

    def test_hybrids_beat_dvs_under_ideal(self, ideal):
        dvs = ideal["DVS"].mean_slowdown
        assert ideal["PI-Hyb"].mean_slowdown < dvs
        assert ideal["Hyb"].mean_slowdown < dvs

    def test_hybrid_beats_even_idealized_dvs(self, stall, ideal):
        # Paper: "can also outperform even an idealized DVS that has no
        # switching overhead."
        assert stall["PI-Hyb"].mean_slowdown < ideal["DVS"].mean_slowdown

    def test_eliminating_pi_control_sacrifices_little(self, stall):
        # Paper: Hyb performs within a whisker of PI-Hyb.
        gap = abs(
            stall["Hyb"].mean_slowdown - stall["PI-Hyb"].mean_slowdown
        )
        assert gap < 0.02


class TestMagnitudes:
    def test_stall_overhead_reduction_in_papers_range(self, stall):
        # Paper: about 25 % reduction in DTM overhead; accept a generous
        # band at reduced scale.
        reduction = overhead_reduction(
            stall["DVS"].mean_slowdown, stall["PI-Hyb"].mean_slowdown
        )
        assert 0.10 < reduction < 0.45

    def test_ideal_overhead_reduction_smaller_but_positive(self, ideal):
        # Paper: about 11 % against idealized DVS.
        reduction = overhead_reduction(
            ideal["DVS"].mean_slowdown, ideal["PI-Hyb"].mean_slowdown
        )
        assert 0.0 < reduction < 0.35

    def test_ideal_dvs_no_slower_than_stall_dvs(self, stall, ideal):
        assert ideal["DVS"].mean_slowdown <= stall["DVS"].mean_slowdown

    def test_dvs_overhead_magnitude_plausible(self, stall):
        # Binary DVS at 85 % voltage costs at most the full frequency
        # ratio and at least a few percent on this hot suite.
        dvs = stall["DVS"].mean_slowdown
        assert 1.03 < dvs < 1.15
