"""Coupled simulation engine."""

import numpy as np
import pytest

from repro.dtm import (
    ClockGatingPolicy,
    DvsPolicy,
    FetchGatingPolicy,
    HybPolicy,
    NoDtmPolicy,
)
from repro.errors import SimulationError, ThermalViolationError
from repro.sim import EngineConfig, SimulationEngine
from repro.workloads import build_benchmark

FAST_N = 3_000_000
SETTLE = 1.0e-3


@pytest.fixture(scope="module")
def gzip_setup():
    workload = build_benchmark("gzip")
    engine = SimulationEngine(workload, policy=NoDtmPolicy())
    init = engine.compute_initial_temperatures()
    baseline = engine.run(FAST_N, initial=init.copy(), settle_time_s=SETTLE)
    return workload, init, baseline


class TestBaselineRun:
    def test_commits_exact_budget(self, gzip_setup):
        _, _, baseline = gzip_setup
        assert baseline.instructions == FAST_N

    def test_elapsed_time_consistent_with_ipc(self, gzip_setup):
        workload, _, baseline = gzip_setup
        expected = FAST_N / workload.mean_ipc / 3e9
        assert baseline.elapsed_s == pytest.approx(expected, rel=0.1)

    def test_hot_benchmark_is_above_trigger_most_of_the_time(self, gzip_setup):
        _, _, baseline = gzip_setup
        assert baseline.fraction_above_trigger > 0.9
        assert baseline.fraction_above_trigger <= 1.0 + 1e-9

    def test_hotspot_is_integer_register_file(self, gzip_setup):
        _, _, baseline = gzip_setup
        assert baseline.hottest_block == "IntReg"

    def test_no_dtm_means_no_switches_or_gating(self, gzip_setup):
        _, _, baseline = gzip_setup
        assert baseline.dvs_switches == 0
        assert baseline.mean_gating_fraction == 0.0
        assert baseline.stall_time_s == 0.0

    def test_reproducible_with_same_seed(self, gzip_setup):
        workload, init, baseline = gzip_setup
        engine = SimulationEngine(workload, policy=NoDtmPolicy(), seed=0)
        again = engine.run(FAST_N, initial=init.copy(), settle_time_s=SETTLE)
        assert again.elapsed_s == pytest.approx(baseline.elapsed_s)
        assert again.max_true_temp_c == pytest.approx(baseline.max_true_temp_c)


class TestDvsRuns:
    def test_dvs_regulates_temperature(self, gzip_setup):
        workload, init, baseline = gzip_setup
        engine = SimulationEngine(workload, policy=DvsPolicy())
        run = engine.run(FAST_N, initial=init.copy(), settle_time_s=SETTLE)
        assert run.violations == 0
        assert run.max_true_temp_c < baseline.max_true_temp_c

    def test_dvs_costs_time(self, gzip_setup):
        workload, init, baseline = gzip_setup
        engine = SimulationEngine(workload, policy=DvsPolicy())
        run = engine.run(FAST_N, initial=init.copy(), settle_time_s=SETTLE)
        assert run.elapsed_s > baseline.elapsed_s

    def test_stall_mode_accumulates_stall_time(self, gzip_setup):
        workload, init, _ = gzip_setup
        engine = SimulationEngine(
            workload, policy=DvsPolicy(), config=EngineConfig(dvs_mode="stall")
        )
        run = engine.run(FAST_N, initial=init.copy(), settle_time_s=SETTLE)
        if run.dvs_switches > 0:
            assert run.stall_time_s == pytest.approx(
                run.dvs_switches * 10e-6, rel=0.5
            )

    def test_ideal_mode_never_stalls(self, gzip_setup):
        workload, init, _ = gzip_setup
        engine = SimulationEngine(
            workload, policy=DvsPolicy(), config=EngineConfig(dvs_mode="ideal")
        )
        run = engine.run(FAST_N, initial=init.copy(), settle_time_s=SETTLE)
        assert run.stall_time_s == 0.0

    def test_ideal_no_slower_than_stall(self, gzip_setup):
        workload, init, _ = gzip_setup
        runs = {}
        for mode in ("stall", "ideal"):
            engine = SimulationEngine(
                workload, policy=DvsPolicy(), config=EngineConfig(dvs_mode=mode)
            )
            runs[mode] = engine.run(
                FAST_N, initial=init.copy(), settle_time_s=SETTLE
            )
        assert runs["ideal"].elapsed_s <= runs["stall"].elapsed_s * 1.005


class TestOtherPolicies:
    def test_fetch_gating_reports_mean_gating(self, gzip_setup):
        workload, init, _ = gzip_setup
        engine = SimulationEngine(workload, policy=FetchGatingPolicy())
        run = engine.run(FAST_N, initial=init.copy(), settle_time_s=SETTLE)
        assert run.mean_gating_fraction > 0.0
        assert run.dvs_switches == 0

    def test_clock_gating_regulates(self, gzip_setup):
        workload, init, _ = gzip_setup
        engine = SimulationEngine(workload, policy=ClockGatingPolicy())
        run = engine.run(FAST_N, initial=init.copy(), settle_time_s=SETTLE)
        assert run.violations == 0

    def test_hybrid_mixes_responses(self, gzip_setup):
        workload, init, _ = gzip_setup
        engine = SimulationEngine(workload, policy=HybPolicy())
        run = engine.run(FAST_N, initial=init.copy(), settle_time_s=SETTLE)
        assert run.violations == 0


class TestEngineMechanics:
    def test_default_initial_is_steady_state(self, gzip_setup):
        workload, init, _ = gzip_setup
        engine = SimulationEngine(workload, policy=NoDtmPolicy())
        run_default = engine.run(1_000_000)
        run_explicit = SimulationEngine(workload, policy=NoDtmPolicy()).run(
            1_000_000, initial=init.copy()
        )
        assert run_default.elapsed_s == pytest.approx(run_explicit.elapsed_s)

    def test_trace_recording(self, gzip_setup):
        workload, init, _ = gzip_setup
        engine = SimulationEngine(
            workload, policy=DvsPolicy(),
            config=EngineConfig(record_trace=True),
        )
        run = engine.run(1_000_000, initial=init.copy())
        assert run.trace is not None
        assert len(run.trace) > 10
        times = [p.time_s for p in run.trace]
        assert times == sorted(times)

    def test_raise_on_violation(self):
        art = build_benchmark("art")
        # The unmanaged hottest benchmark starts above 85 C.
        engine = SimulationEngine(
            art, policy=NoDtmPolicy(),
            config=EngineConfig(raise_on_violation=True),
        )
        with pytest.raises(ThermalViolationError):
            engine.run(1_000_000)

    def test_rejects_bad_budgets(self, gzip_setup):
        workload, init, _ = gzip_setup
        engine = SimulationEngine(workload, policy=NoDtmPolicy())
        with pytest.raises(SimulationError):
            engine.run(0)
        with pytest.raises(SimulationError):
            engine.run(1_000, settle_time_s=-1.0)

    def test_settle_excluded_from_measurement(self, gzip_setup):
        workload, init, _ = gzip_setup
        short = SimulationEngine(workload, policy=NoDtmPolicy()).run(
            1_000_000, initial=init.copy(), settle_time_s=0.0
        )
        settled = SimulationEngine(workload, policy=NoDtmPolicy()).run(
            1_000_000, initial=init.copy(), settle_time_s=1e-3
        )
        # Same measured budget; elapsed differs only through the phase mix
        # the settle window advanced into, never by the settle time itself
        # (which is 1 ms -- an order of magnitude above the measured run).
        assert settled.instructions == short.instructions
        assert settled.elapsed_s < 0.6e-3
        assert settled.elapsed_s == pytest.approx(short.elapsed_s, rel=0.35)
