"""Fault-tolerant sweep supervision.

:func:`repro.sim.batch.run_many` delegates its execution to the
machinery here whenever a sweep must survive imperfect conditions:
crashed workers, wedged runs, corrupted solves.  The contract mirrors
the paper's own: the *plant* (a run) may misbehave, but the *supervisor*
must keep the sweep inside its envelope --

* **bounded retries** with exponential backoff and deterministic jitter
  (seeded from the spec digest, so a re-run of the same sweep backs off
  identically);
* **per-run wall-clock timeouts** on the pool path; an overdue run's
  worker may be wedged, so the pool is rebuilt (terminating the stuck
  worker) and every unfinished spec is resubmitted;
* **BrokenProcessPool recovery**: a dead worker poisons every in-flight
  future, so unfinished specs are resubmitted to a fresh pool without
  being charged an attempt -- only the spec whose own execution raised
  consumes retry budget;
* **graceful degradation** to serial execution after
  :data:`MAX_POOL_FAILURES` pool rebuilds in one sweep;
* **partial results**: instead of the first bad spec killing the whole
  figure, failures become structured :class:`RunFailure` records in the
  result list;
* a **JSONL journal** of spec digests -> results enabling checkpoint /
  resume of interrupted sweeps.

Determinism is the invariant throughout: every run is seeded from its
spec alone, so a retried, resubmitted or resumed run is bit-identical
to the run an undisturbed sweep would have produced.  Injected
*transient* faults (:mod:`repro.sim.faults`) are stripped from a spec
before it is retried, which is exactly what makes that invariant
testable under chaos.
"""

from __future__ import annotations

import heapq
import json
import logging
import random
import time
import warnings
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from functools import partial
from hashlib import sha256
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import RunTimeoutError, SimulationError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.sim.results import RunResult

_LOGGER = logging.getLogger("repro.sweep")

MAX_POOL_FAILURES = 3
"""Pool rebuilds tolerated in one sweep before degrading to serial."""

BACKOFF_JITTER_FRACTION = 0.25
"""Jitter added on top of each backoff delay, as a fraction of it."""


# --- spec identity ----------------------------------------------------------


def _callable_token(fn) -> str:
    module = getattr(fn, "__module__", "?")
    qualname = getattr(fn, "__qualname__", repr(fn))
    return f"{module}.{qualname}"


def policy_token(policy) -> str:
    """A stable textual identity for a spec's policy field.

    Strings are themselves; factories are named by module-qualified
    name (with bound arguments for :func:`functools.partial`).  Two
    distinct lambdas share a token -- journalled resume should use
    named factories, as the pickling rules already require.
    """
    if isinstance(policy, str):
        return policy
    if isinstance(policy, partial):
        keywords = tuple(sorted(policy.keywords.items()))
        return (
            f"partial({_callable_token(policy.func)}, "
            f"args={policy.args!r}, kwargs={keywords!r})"
        )
    return _callable_token(policy)


def spec_digest(spec) -> str:
    """Content hash identifying one run for journalling and resume.

    Computed from everything that determines the run's physics:
    workload name, policy identity, budget, settle window, engine
    configuration (including any fault plan), seed, and the initial
    temperature vector when pinned.  Compute it from the *original*
    spec -- before warmup precomputation fills ``initial`` -- so serial
    and pooled sweeps agree on identity.
    """
    if spec.initial is None:
        initial_token = None
    else:
        array = np.ascontiguousarray(spec.initial, dtype=float)
        initial_token = sha256(array.tobytes()).hexdigest()
    custom = getattr(spec, "digest_payload", None)
    if custom is not None:
        # Non-single-core specs (e.g. the dual-core
        # :class:`~repro.multicore.batch.DualCoreRunSpec`) describe
        # their own physics-determining fields; the initial-vector
        # token stays appended here so the fill-before-dispatch rule
        # above applies uniformly.
        payload = tuple(custom()) + (initial_token,)
    else:
        payload = (
            spec.workload_name,
            policy_token(spec.policy),
            spec.instructions,
            spec.settle_time_s,
            repr(spec.config),
            spec.seed,
            initial_token,
        )
    return sha256(repr(payload).encode("utf-8")).hexdigest()[:20]


def strip_transient_faults(spec):
    """``spec`` with one-shot harness faults disarmed (for retries)."""
    config = spec.engine_config
    if config is None:
        return spec
    plan = config.fault_plan
    if plan is None or not plan.has_transient_faults:
        return spec
    return replace(
        spec,
        engine_config=replace(config, fault_plan=plan.transient_cleared()),
    )


# --- outcomes ---------------------------------------------------------------


@dataclass(frozen=True)
class RunFailure:
    """Structured record of a run the supervisor gave up on.

    Appears in :func:`~repro.sim.batch.run_many` output (in spec order)
    when ``partial_results=True``; carries enough identity to re-run
    the spec and enough diagnostics to explain the failure.
    """

    index: int
    digest: str
    benchmark: str
    policy: str
    error_type: str
    message: str
    attempts: int
    # Supervision context the failure happened under -- e.g. why the
    # pool had been abandoned when this spec was given up on serially.
    notes: Tuple[str, ...] = ()

    @property
    def failed(self) -> bool:
        """Always true; lets callers filter mixed result lists."""
        return True

    def to_json_dict(self) -> Dict[str, object]:
        """Scalar fields for report/journal serialisation."""
        return {
            "index": self.index,
            "digest": self.digest,
            "benchmark": self.benchmark,
            "policy": self.policy,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "notes": "; ".join(self.notes),
        }


Outcome = Union[RunResult, RunFailure]


@dataclass
class _SpecState:
    """Mutable per-spec bookkeeping while the sweep is in flight."""

    spec: object
    digest: str
    attempts: int = 0


# --- journal ----------------------------------------------------------------


class SweepJournal:
    """Append-only JSONL checkpoint: one completed run per line.

    Each line is ``{"digest": ..., "index": ..., "result": {...}}``.
    Lines are flushed as they are written, so a sweep killed mid-flight
    loses at most the run it was writing; :func:`load_journal` skips a
    torn final line.
    """

    def __init__(self, path):
        self._path = str(path)
        self._handle = None

    @property
    def path(self) -> str:
        """The journal file's path."""
        return self._path

    def record(self, digest: str, index: int, result) -> None:
        """Append one completed run and flush.

        Results that are not single-core :class:`RunResult` instances
        declare a ``journal_kind`` tag (e.g. ``"multicore"``) so
        :func:`load_journal` knows which class to rebuild.
        """
        if self._handle is None:
            self._handle = open(self._path, "a", encoding="utf-8")
            # Appending after a crash may land on a torn final line that
            # never got its newline; starting mid-line would merge this
            # record into the torn one and corrupt *both*.  tell() on an
            # append handle is the current end of file.
            if self._handle.tell() > 0:
                with open(self._path, "rb") as tail:
                    tail.seek(-1, 2)
                    if tail.read(1) != b"\n":
                        self._handle.write("\n")
        entry = {
            "digest": digest,
            "index": index,
            "result": result.to_json_dict(),
        }
        kind = getattr(result, "journal_kind", None)
        if kind is not None:
            entry["kind"] = kind
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def result_from_journal_entry(entry: Dict[str, object]):
    """Rebuild the result object one parsed journal entry describes.

    Entries are the mappings :meth:`SweepJournal.record` writes: the
    ``result`` payload plus an optional ``kind`` tag naming the result
    class (``"multicore"`` for
    :class:`~repro.multicore.engine.MultiCoreResult`; absent for the
    single-core :class:`~repro.sim.results.RunResult`).  Shared by
    :func:`load_journal` and the service result cache
    (:mod:`repro.service.cache`), so both rebuild identically.
    Malformed payloads raise (``KeyError``/``TypeError``/``ValueError``/
    :class:`~repro.errors.SimulationError`); callers decide whether
    that is fatal.
    """
    payload = entry["result"]
    if entry.get("kind") == "multicore":
        from repro.multicore.engine import MultiCoreResult

        return MultiCoreResult.from_json_dict(payload)
    return RunResult.from_json_dict(payload)


#: Exceptions malformed journal data can legitimately raise while being
#: parsed and rebuilt.  Anything else is a real bug and propagates.
_JOURNAL_ENTRY_ERRORS = (
    json.JSONDecodeError,
    KeyError,
    TypeError,
    ValueError,
    SimulationError,
)


def load_journal(path) -> Dict[str, object]:
    """Completed runs recorded in a journal, keyed by spec digest.

    A missing file is an empty journal (a resume of a sweep that never
    started).  The file is read as bytes and decoded line by line, so a
    crash mid-append cannot poison the whole resume: a torn tail --
    truncated JSON, or even a line sheared inside a multi-byte UTF-8
    sequence -- is *skipped with a warning* and a structured
    ``journal.torn_tail`` observability event instead of failing the
    resume.  A malformed line that is **not** the tail means real
    corruption (an append landed after the tear), which is likewise
    skipped but flagged as ``journal.malformed_line`` so it is never
    silent.  The skip is scoped to the exceptions malformed data can
    actually raise, so a genuine bug in result reconstruction (or an
    interrupt landing mid-parse) propagates instead of silently
    emptying the resume set.
    """
    completed: Dict[str, object] = {}
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        return completed
    with handle:
        raw = handle.read()
    lines = [
        (lineno, line)
        for lineno, line in enumerate(raw.split(b"\n"), start=1)
        if line.strip()
    ]
    for position, (lineno, line) in enumerate(lines):
        try:
            entry = json.loads(line.decode("utf-8"))
            digest = str(entry["digest"])
            completed[digest] = result_from_journal_entry(entry)
        except (UnicodeDecodeError,) + _JOURNAL_ENTRY_ERRORS as exc:
            torn_tail = position == len(lines) - 1
            kind = "torn_tail" if torn_tail else "malformed_line"
            warnings.warn(
                f"sweep journal {path}: skipping "
                f"{'torn trailing' if torn_tail else 'malformed'} line "
                f"{lineno} ({type(exc).__name__}); "
                f"{'the run it described will be re-executed on resume' if torn_tail else 'mid-file corruption -- inspect the journal'}",
                RuntimeWarning,
                stacklevel=2,
            )
            obs_events.emit(
                f"journal.{kind}",
                path=str(path),
                line=lineno,
                error_type=type(exc).__name__,
            )
            obs_metrics.inc(f"journal.{kind}_skips")
            continue
    return completed


# --- supervisor -------------------------------------------------------------


class _PoolRebuild(Exception):
    """Internal signal: the pool must be rebuilt; carries the specs that
    still need execution and the reason the pool was condemned."""

    def __init__(
        self,
        unfinished: List[Tuple[int, _SpecState]],
        reason: str = "unknown",
    ):
        super().__init__(f"{len(unfinished)} specs unfinished ({reason})")
        self.unfinished = unfinished
        self.reason = reason


class SweepSupervisor:
    """Executes a list of (index, state) items under a fault policy.

    One instance supervises one :func:`~repro.sim.batch.run_many` call.
    Outcomes land in the caller-owned ``outcomes`` list at each item's
    index: a :class:`~repro.sim.results.RunResult` on success, a
    :class:`RunFailure` when retries are exhausted and
    ``partial_results`` is set; without ``partial_results`` the original
    exception propagates, matching the unsupervised contract.
    """

    def __init__(
        self,
        *,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        backoff_s: float = 0.1,
        backoff_max_s: float = 30.0,
        partial_results: bool = False,
        journal: Optional[SweepJournal] = None,
    ):
        if timeout_s is not None and timeout_s <= 0.0:
            raise SimulationError("per-run timeout must be > 0")
        if retries < 0:
            raise SimulationError("retry budget must be >= 0")
        if backoff_s < 0.0 or backoff_max_s < 0.0:
            raise SimulationError("backoff must be >= 0")
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.partial_results = partial_results
        self.journal = journal
        self._backoff_seq = 0
        # Sweep-level telemetry the caller folds into its SweepReport.
        # Maintained unconditionally (plain dict increments); the
        # structured events alongside are obs-gated.
        self.telemetry: Dict[str, float] = {}
        # Why the pool was abandoned, once it has been ("" until then).
        # Carried into serial-fallback RunFailure notes and the sweep
        # report's metadata.
        self.degradation_reason: str = ""

    def _count(self, name: str, amount: float = 1.0) -> None:
        self.telemetry[name] = self.telemetry.get(name, 0.0) + amount
        obs_metrics.inc(name, amount)

    @property
    def inert(self) -> bool:
        """True when no failure-handling semantics were requested, so
        legacy raise-on-first-error behavior must be preserved."""
        return (
            self.retries == 0
            and not self.partial_results
            and self.timeout_s is None
        )

    # --- shared plumbing ---------------------------------------------------

    def _backoff_delay(self, digest: str, attempt: int) -> float:
        if self.backoff_s <= 0.0:
            return 0.0
        delay = min(self.backoff_max_s, self.backoff_s * 2.0 ** (attempt - 1))
        # Deterministic jitter: the same sweep re-run backs off the same
        # way, which keeps chaos experiments reproducible.
        rng = random.Random(f"{digest}:{attempt}")
        return delay * (1.0 + BACKOFF_JITTER_FRACTION * rng.random())

    def _record(self, outcomes, index: int, state: _SpecState, result) -> None:
        outcomes[index] = result
        if self.journal is not None:
            self.journal.record(state.digest, index, result)

    def _fail(self, outcomes, index: int, state: _SpecState, exc) -> None:
        self._count("sweep.run_failures")
        obs_events.emit(
            "sweep.run_failed",
            index=index,
            digest=state.digest,
            benchmark=state.spec.workload_name,
            error_type=type(exc).__name__,
            attempts=state.attempts,
        )
        if not self.partial_results:
            raise exc
        spec = state.spec
        notes: Tuple[str, ...] = ()
        if self.degradation_reason:
            notes = (f"pool degraded to serial: {self.degradation_reason}",)
        outcomes[index] = RunFailure(
            index=index,
            digest=state.digest,
            benchmark=spec.workload_name,
            policy=policy_token(spec.policy),
            error_type=type(exc).__name__,
            message=str(exc),
            attempts=state.attempts,
            notes=notes,
        )

    def _charge_attempt(self, state: _SpecState) -> bool:
        """Consume one attempt; True when the spec may be retried."""
        state.attempts += 1
        if state.attempts > self.retries:
            return False
        state.spec = strip_transient_faults(state.spec)
        self._count("sweep.retries")
        obs_events.emit(
            "sweep.retry",
            digest=state.digest,
            benchmark=state.spec.workload_name,
            attempt=state.attempts,
        )
        return True

    # --- serial path -------------------------------------------------------

    def run_serial(self, items, outcomes) -> None:
        """Execute items in this process, with retries and backoff.

        Wall-clock timeouts are not enforced serially: a run executing
        in this very interpreter cannot be preempted safely.  The pool
        path enforces them.
        """
        from repro.sim.batch import run_one

        for index, state in items:
            while True:
                try:
                    result = run_one(state.spec)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    if not self._charge_attempt(state):
                        self._fail(outcomes, index, state, exc)
                        break
                    time.sleep(
                        self._backoff_delay(state.digest, state.attempts)
                    )
                else:
                    self._record(outcomes, index, state, result)
                    break

    # --- pool path ---------------------------------------------------------

    def run_pool(self, items, outcomes, processes: int) -> None:
        """Execute items across the worker pool with full supervision."""
        import repro.sim.batch as batch

        queue: List[Tuple[int, _SpecState]] = list(items)
        pool_failures = 0
        failure_reasons: List[str] = []
        while queue:
            if pool_failures >= MAX_POOL_FAILURES:
                # The reason the pool was abandoned used to be dropped
                # here; record it so partial results and the sweep
                # report can explain the degradation.
                reason = (
                    f"{pool_failures} pool failures: "
                    + "; ".join(failure_reasons)
                )
                self.degradation_reason = reason
                self._count("sweep.serial_degradations")
                obs_events.emit(
                    "sweep.serial_degradation",
                    pool_failures=pool_failures,
                    remaining_runs=len(queue),
                    reason=reason,
                )
                _LOGGER.warning(
                    "degrading %d remaining runs to serial execution (%s)",
                    len(queue),
                    reason,
                )
                warnings.warn(
                    f"process pool failed {pool_failures} times "
                    f"({'; '.join(failure_reasons)}); degrading the "
                    f"remaining {len(queue)} runs to serial execution",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self.run_serial(queue, outcomes)
                return
            try:
                self._pool_generation(batch, queue, outcomes, processes)
                return
            except _PoolRebuild as signal:
                pool_failures += 1
                failure_reasons.append(signal.reason)
                self._count("sweep.pool_rebuilds")
                obs_events.emit(
                    "sweep.pool_rebuild",
                    generation=pool_failures,
                    unfinished_runs=len(signal.unfinished),
                    reason=signal.reason,
                )
                _LOGGER.warning(
                    "rebuilding worker pool (generation %d): %s",
                    pool_failures,
                    signal.reason,
                )
                batch._shutdown_pool()
                queue = signal.unfinished

    def _pool_generation(self, batch, queue, outcomes, processes) -> None:
        """Drive one pool lifetime; raises :class:`_PoolRebuild` with the
        unfinished specs when the pool must be replaced (worker death or
        a wedged, overdue run)."""
        pool = batch._get_pool(processes)
        inflight: Dict[object, Tuple[int, _SpecState]] = {}
        deadlines: Dict[object, float] = {}
        delayed: List[Tuple[float, int, int, _SpecState]] = []  # heap

        def submit(index: int, state: _SpecState) -> None:
            # batch._pool_submit routes through the active shared-memory
            # sweep context when one exists (tiny per-task payload), and
            # falls back to pickling the full spec otherwise.
            future = batch._pool_submit(pool, index, state.spec)
            inflight[future] = (index, state)
            if self.timeout_s is not None:
                deadlines[future] = time.monotonic() + self.timeout_s

        def unfinished_after_breakage(extra=()):
            # Everything still owed: the trigger specs (``extra``, retry
            # budget already handled by the caller), every other
            # in-flight spec (innocent -- not charged), and anything
            # sitting in the backoff queue.  Transient faults are
            # stripped across the board: a fault that just killed a
            # pool must not kill its replacement.
            unfinished = list(extra)
            unfinished.extend(inflight.values())
            unfinished.extend((i, s) for _, _, i, s in delayed)
            for _, state in unfinished:
                state.spec = strip_transient_faults(state.spec)
            return unfinished

        # A worker can die while this loop is still submitting (a warm
        # pool starts executing immediately), breaking the pool mid-loop;
        # the failed submit's spec and everything not yet submitted must
        # ride along to the rebuilt pool, not be dropped.
        for position, (index, state) in enumerate(queue):
            try:
                submit(index, state)
            except Exception as exc:
                raise _PoolRebuild(
                    unfinished_after_breakage(queue[position:]),
                    reason=f"submission failed ({type(exc).__name__})",
                ) from None

        while inflight or delayed:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, _, index, state = heapq.heappop(delayed)
                try:
                    submit(index, state)
                except Exception as exc:
                    raise _PoolRebuild(
                        unfinished_after_breakage([(index, state)]),
                        reason=(
                            f"retry submission failed "
                            f"({type(exc).__name__})"
                        ),
                    ) from None
            if not inflight:
                if delayed:
                    time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                continue

            wait_s = None
            if deadlines:
                wait_s = max(0.0, min(deadlines.values()) - now)
            if delayed:
                next_ready = max(0.0, delayed[0][0] - now)
                wait_s = (
                    next_ready if wait_s is None else min(wait_s, next_ready)
                )
            done, _ = futures_wait(
                set(inflight), timeout=wait_s, return_when=FIRST_COMPLETED
            )

            broken_items: List[Tuple[int, _SpecState]] = []
            for future in done:
                index, state = inflight.pop(future)
                deadlines.pop(future, None)
                try:
                    result = batch._pool_resolve(future.result())
                except BrokenProcessPool:
                    # The pool is poisoned; this future's spec is not
                    # necessarily the one whose worker died, so nobody
                    # is charged an attempt.
                    broken_items.append((index, state))
                except Exception as exc:
                    if not self._charge_attempt(state):
                        self._fail(outcomes, index, state, exc)
                    else:
                        ready = time.monotonic() + self._backoff_delay(
                            state.digest, state.attempts
                        )
                        self._backoff_seq += 1
                        heapq.heappush(
                            delayed,
                            (ready, self._backoff_seq, index, state),
                        )
                else:
                    self._record(outcomes, index, state, result)
            if broken_items:
                raise _PoolRebuild(
                    unfinished_after_breakage(broken_items),
                    reason="worker process died (BrokenProcessPool)",
                )

            # Overdue runs: the worker may be wedged beyond reclaim, so
            # the whole pool is rebuilt (terminating its workers) and
            # only the overdue specs are charged an attempt.
            now = time.monotonic()
            overdue = [f for f, ddl in deadlines.items() if ddl <= now]
            if overdue:
                retry: List[Tuple[int, _SpecState]] = []
                for future in overdue:
                    index, state = inflight.pop(future)
                    deadlines.pop(future, None)
                    future.cancel()
                    self._count("sweep.timeouts")
                    obs_events.emit(
                        "sweep.run_timeout",
                        index=index,
                        benchmark=state.spec.workload_name,
                        budget_s=self.timeout_s,
                    )
                    exc = RunTimeoutError(
                        f"run #{index} ({state.spec.workload_name}) "
                        f"exceeded its {self.timeout_s:g} s budget"
                    )
                    if not self._charge_attempt(state):
                        self._fail(outcomes, index, state, exc)
                    else:
                        retry.append((index, state))
                raise _PoolRebuild(
                    unfinished_after_breakage(retry),
                    reason=(
                        f"{len(overdue)} overdue run(s) exceeded the "
                        f"{self.timeout_s:g} s budget (worker possibly "
                        f"wedged)"
                    ),
                )

    # --- lockstep paths ----------------------------------------------------

    def run_lockstep_serial(self, items, outcomes) -> None:
        """Advance items in lockstep; on failure, fall back to supervised
        per-spec serial execution (a mid-batch failure must cost the
        sweep one batch, not the whole figure)."""
        from repro.sim.lockstep import run_lockstep

        try:
            results = run_lockstep([state.spec for _, state in items])
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            if self.inert:
                raise
            self._count("sweep.lockstep_fallbacks")
            obs_events.emit(
                "sweep.lockstep_fallback",
                scope="serial",
                runs=len(items),
                error_type=type(exc).__name__,
            )
            _LOGGER.warning(
                "lockstep batch of %d runs failed (%s); re-running "
                "the batch with per-spec supervision",
                len(items),
                type(exc).__name__,
            )
            self.run_serial(items, outcomes)
            return
        for (index, state), result in zip(items, results):
            self._record(outcomes, index, state, result)

    def run_lockstep_pool(self, items, outcomes, processes: int) -> None:
        """Fan lockstep chunks over the pool; chunks that fail for any
        reason (spec error, worker death, overdue deadline) fall back to
        supervised per-spec pool execution."""
        import repro.sim.batch as batch
        from repro.sim.lockstep import run_lockstep

        chunks = batch._chunk_evenly(items, processes)
        fallback: List[Tuple[int, _SpecState]] = []
        pool_broken = False
        try:
            pool = batch._get_pool(processes)
            futures = {
                pool.submit(
                    run_lockstep, [state.spec for _, state in chunk]
                ): chunk
                for chunk in chunks
            }
        except Exception as exc:
            # Any pool construction/submission failure must degrade the
            # sweep, not kill it -- but never silently: the whole batch
            # re-running serially is a major mode change.  (Keyboard
            # interrupts and SystemExit derive from BaseException and
            # propagate past this handler; a regression test pins that.)
            _LOGGER.warning(
                "lockstep pool construction failed (%s: %s); falling "
                "back to supervised per-spec execution for all %d runs",
                type(exc).__name__,
                exc,
                len(items),
            )
            self._count("sweep.pool_submit_failures")
            obs_events.emit(
                "sweep.pool_submit_failed",
                error_type=type(exc).__name__,
                runs=len(items),
            )
            pool_broken = True
            futures = {}
            fallback = list(items)

        deadline = None
        if self.timeout_s is not None and futures:
            # A chunk runs its specs back to back, so its budget is the
            # per-run budget times the chunk size.
            deadline = time.monotonic() + self.timeout_s * max(
                len(chunk) for chunk in futures.values()
            )
        pending = set(futures)
        while pending:
            wait_s = None
            if deadline is not None:
                wait_s = max(0.0, deadline - time.monotonic())
            done, pending = futures_wait(
                pending, timeout=wait_s, return_when=FIRST_COMPLETED
            )
            if not done:  # every remaining chunk is overdue
                for future in pending:
                    future.cancel()
                    fallback.extend(futures[future])
                pool_broken = True
                break
            for future in done:
                chunk = futures[future]
                try:
                    results = future.result()
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    if isinstance(exc, BrokenProcessPool):
                        pool_broken = True
                    elif self.inert:
                        raise
                    fallback.extend(chunk)
                else:
                    for (index, state), result in zip(chunk, results):
                        self._record(outcomes, index, state, result)

        if pool_broken:
            batch._shutdown_pool()
            for _, state in fallback:
                state.spec = strip_transient_faults(state.spec)
        if fallback:
            if self.inert and not pool_broken:
                raise SimulationError(
                    "lockstep chunks failed without supervision enabled"
                )  # pragma: no cover - unreachable (inert re-raises above)
            self._count("sweep.lockstep_fallbacks")
            obs_events.emit(
                "sweep.lockstep_fallback",
                scope="pool",
                runs=len(fallback),
                pool_broken=pool_broken,
            )
            self.run_pool(fallback, outcomes, processes)
