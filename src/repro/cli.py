"""Command-line interface.

Run one simulation, evaluate the technique set, sweep the crossover, or
characterise the suite -- from a shell, without writing harness code::

    python -m repro run --benchmark gzip --policy Hyb
    python -m repro evaluate --dvs-mode stall
    python -m repro sweep --duty-cycles 20 10 5 3 2 1.5
    python -m repro batch --policies Hyb FG --retries 2 --journal sweep.jsonl
    python -m repro characterise
    python -m repro list
    python -m repro report sweep-report.jsonl
    python -m repro serve --socket sweep.sock --cache-dir cache
    python -m repro submit --socket sweep.sock --benchmarks gzip gcc

``batch`` runs a benchmark x policy grid under the sweep supervisor:
per-run timeouts, bounded retries, partial results, and a JSONL journal
that ``--resume`` can pick up after a crash without re-running finished
work.  With ``REPRO_OBS=1`` and ``--report PATH`` it also saves the
merged observability report, which ``report`` renders (or exports as
Prometheus text) and whose event files ``report --events`` validates
against the schema.

``serve`` exposes the same supervised execution as a crash-tolerant
job server with a content-addressed result cache (docs/SERVICE.md);
``submit`` is its client (grids, ``--status``, ``--drain``).
"""

from __future__ import annotations

import argparse
import cProfile
import importlib
import os
import pstats
import signal
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional

from repro.analysis.experiments import t4_benchmark_characterisation
from repro.analysis.tables import render_table
from repro.core.crossover import sweep_duty_cycles
from repro.core.evaluation import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_SETTLE_TIME_S,
    evaluate_techniques,
    run_baselines,
)
from repro.core.metrics import slowdown_factor
from repro.core.policies import POLICY_NAMES, make_policy
from repro.sim.config import EngineConfig
from repro.sim.engine import (
    STEP_TIMING_ENV,
    SimulationEngine,
    reset_step_timers,
    step_timers,
)
from repro.workloads.spec import SPEC_BENCHMARK_NAMES, build_benchmark


def _add_supervisor_knobs(parser: argparse.ArgumentParser) -> None:
    """The sweep supervisor's retry/backoff/timeout parameters, shared
    verbatim by ``batch`` and ``serve`` (they feed ``run_many``)."""
    parser.add_argument(
        "--timeout-s", type=float, default=None, metavar="S",
        help="per-run wall-clock budget in seconds, enforced on the "
             "pool path; an overdue run's worker is presumed wedged, "
             "the pool is rebuilt and the run retried "
             "(default: no timeout)",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry attempts allowed per run beyond the first "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--backoff-s", type=float, default=0.1, metavar="S",
        help="base retry backoff; attempt k waits backoff*2^(k-1) "
             "seconds plus deterministic jitter (default %(default)s)",
    )
    parser.add_argument(
        "--backoff-max-s", type=float, default=30.0, metavar="S",
        help="ceiling on one retry's backoff delay "
             "(default %(default)s)",
    )


def _add_service_address(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="serve on (connect to) a Unix domain socket at PATH "
             "instead of TCP",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind/connect host (default %(default)s)",
    )
    parser.add_argument(
        "--port", type=int, default=7621,
        help="TCP port (default %(default)s; 0 binds an ephemeral "
             "port when serving)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--instructions", type=int, default=DEFAULT_INSTRUCTIONS,
        help="per-run instruction budget (default %(default)s)",
    )
    parser.add_argument(
        "--dvs-mode", choices=("stall", "ideal"), default="stall",
        help="DVS switching model (default %(default)s)",
    )
    parser.add_argument(
        "--settle-ms", type=float, default=DEFAULT_SETTLE_TIME_S * 1e3,
        help="unmeasured lead-in in milliseconds (default %(default)s)",
    )


def _cmd_list(args: argparse.Namespace) -> int:
    print("benchmarks:")
    for name in SPEC_BENCHMARK_NAMES:
        workload = build_benchmark(name)
        print(f"  {name:8s} {workload.description}")
    print("\npolicies:")
    for name in POLICY_NAMES:
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    workload = build_benchmark(args.benchmark)
    config = EngineConfig(dvs_mode=args.dvs_mode)
    settle = args.settle_ms * 1e-3

    baseline_engine = SimulationEngine(workload, policy=make_policy("none"))
    initial = baseline_engine.compute_initial_temperatures()
    baseline = baseline_engine.run(
        args.instructions, initial=initial.copy(), settle_time_s=settle
    )
    engine = SimulationEngine(
        workload, policy=make_policy(args.policy), config=config
    )
    run = engine.run(
        args.instructions, initial=initial.copy(), settle_time_s=settle
    )

    print(f"benchmark: {workload.name} ({workload.description})")
    print(f"policy:    {args.policy} (DVS-{args.dvs_mode})")
    rows = [[key, value] for key, value in run.summary().items()]
    if args.policy != "none":
        rows.append(["slowdown_factor", slowdown_factor(run, baseline)])
    print(render_table(["metric", "value"], rows))
    return 0 if run.violation_free else 1


def _cmd_evaluate(args: argparse.Namespace) -> int:
    baselines = run_baselines(
        instructions=args.instructions,
        settle_time_s=args.settle_ms * 1e-3,
    )
    results = evaluate_techniques(
        names=tuple(args.techniques), dvs_mode=args.dvs_mode,
        baselines=baselines,
    )
    rows = [
        [name, evaluation.mean_slowdown, evaluation.total_violations]
        for name, evaluation in results.items()
    ]
    print(render_table(
        ["technique", "mean slowdown", "violations"], rows,
        title=f"technique comparison (DVS-{args.dvs_mode}, "
              f"{args.instructions / 1e6:.0f}M instructions/run)",
    ))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    baselines = run_baselines(
        instructions=args.instructions,
        settle_time_s=args.settle_ms * 1e-3,
    )
    result = sweep_duty_cycles(
        duty_cycles=tuple(args.duty_cycles), dvs_mode=args.dvs_mode,
        baselines=baselines,
    )
    rows = [
        [duty, evaluation.mean_slowdown, evaluation.total_violations]
        for duty, evaluation in sorted(
            result.evaluations.items(), reverse=True
        )
    ]
    print(render_table(
        ["max duty cycle", "mean slowdown", "violations"], rows,
        title=f"PI-Hyb duty-cycle sweep (DVS-{args.dvs_mode})",
    ))
    print(f"best duty cycle: {result.best_duty_cycle:g}")
    return 0


class _GracefulTermination(Exception):
    """SIGTERM arrived; the command should stop cleanly."""


@contextmanager
def _sigterm_raises():
    """Convert SIGTERM into :class:`_GracefulTermination` inside the
    block, so ``finally`` clauses (journal close, pool teardown) run
    and an interrupted sweep leaves a valid, resumable journal behind.
    Restores the previous handler on exit; a no-op off the main thread.
    """
    def raise_termination(signum, frame):
        raise _GracefulTermination()

    try:
        previous = signal.signal(signal.SIGTERM, raise_termination)
    except ValueError:  # pragma: no cover - not the main thread
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


SIGTERM_EXIT_CODE = 143  # 128 + SIGTERM, the conventional shell code


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs import flightrec
    from repro.sim.batch import RunSpec, last_sweep_report, run_many
    from repro.sim.supervisor import RunFailure

    # Long sweeps are where post-mortems matter: SIGUSR2 (or a crash)
    # dumps the flight-recorder ring of recent events.
    flightrec.install()

    if args.report and not obs.enabled():
        print(
            "error: --report needs observability enabled (set REPRO_OBS=1)",
            file=sys.stderr,
        )
        return 2

    specs = [
        RunSpec(
            benchmark,
            policy,
            instructions=int(args.instructions),
            settle_time_s=args.settle_ms * 1e-3,
            dvs_mode=args.dvs_mode,
        )
        for benchmark in args.benchmarks
        for policy in args.policies
    ]
    try:
        with _sigterm_raises():
            outcomes = run_many(
                specs,
                processes=args.processes,
                timeout_s=args.timeout_s,
                retries=args.retries,
                backoff_s=args.backoff_s,
                backoff_max_s=args.backoff_max_s,
                partial_results=args.partial,
                journal=args.journal,
                resume=args.resume,
            )
    except _GracefulTermination:
        journal = args.journal or args.resume
        print(
            "terminated by SIGTERM; "
            + (
                f"journal {journal} holds every finished run -- resume "
                f"with --resume {journal}"
                if journal
                else "no journal was configured, finished runs are lost"
            ),
            file=sys.stderr,
        )
        return SIGTERM_EXIT_CODE

    rows = []
    failures = 0
    for spec, outcome in zip(specs, outcomes):
        if isinstance(outcome, RunFailure):
            failures += 1
            rows.append([
                spec.workload_name, outcome.policy, "FAILED",
                f"{outcome.error_type} (x{outcome.attempts})", "-",
            ])
        else:
            rows.append([
                spec.workload_name, outcome.policy, "ok",
                outcome.elapsed_s * 1e3, outcome.violations,
            ])
    print(render_table(
        ["benchmark", "policy", "status", "elapsed ms / error",
         "violations"],
        rows,
        title=f"supervised batch ({len(specs)} runs, DVS-{args.dvs_mode})",
    ))
    if failures:
        print(f"{failures}/{len(specs)} runs failed")
    if args.report:
        report = last_sweep_report()
        if report is None:
            print("error: no sweep report was produced", file=sys.stderr)
            return 2
        print(f"sweep report saved to {report.save(args.report)}")
    return 0 if failures == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs import flightrec
    from repro.service.server import ServiceConfig, SweepService

    config = ServiceConfig(
        cache_dir=args.cache_dir,
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        max_frame_bytes=args.max_frame_bytes,
        processes=args.processes,
        retries=args.retries,
        backoff_s=args.backoff_s,
        backoff_max_s=args.backoff_max_s,
        timeout_s=args.timeout_s,
        http=args.http,
    )
    service = SweepService(config)
    # SIGUSR2 dumps the flight-recorder ring; an unhandled crash dumps
    # it too before the traceback prints.
    flightrec.install()

    async def serve() -> int:
        loop = asyncio.get_running_loop()
        # SIGTERM and SIGINT both mean graceful drain: stop admitting,
        # finish the in-flight run, flush the journal, exit 0.
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, service.begin_drain)
        started = asyncio.ensure_future(service.run())
        while service.address is None and not started.done():
            await asyncio.sleep(0.01)  # listener coming up
        if service.address:
            print(f"sweep service listening on {service.address} "
                  f"(cache {args.cache_dir})", flush=True)
        while (
            args.http is not None
            and service.http_address is None
            and not started.done()
        ):
            await asyncio.sleep(0.01)  # http facade coming up
        if service.http_address:
            print(f"observability http on {service.http_address}",
                  flush=True)
        return await started

    return asyncio.run(serve())


def _parse_service_address(args: argparse.Namespace):
    if args.socket:
        return args.socket
    return (args.host, args.port)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import (
        ServiceBusyError,
        ServiceClient,
        ServiceError,
    )

    address = _parse_service_address(args)
    try:
        client = ServiceClient(address, timeout=args.connect_timeout_s)
    except OSError as exc:
        print(f"error: cannot connect to {address}: {exc}", file=sys.stderr)
        return 2
    with client:
        if args.drain:
            client.drain()
            print("drain requested")
            return 0
        if args.status:
            status = client.status()
            rows = [
                [key, status[key]]
                for key in sorted(status)
                if key != "cache"
            ]
            rows.extend(
                [f"cache.{key}", value]
                for key, value in sorted(status["cache"].items())
            )
            print(render_table(["field", "value"], rows,
                               title="service status"))
            return 0
        if args.job:
            try:
                entry = client.status(digest=args.job)
            except ServiceError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            rows = [[key, entry[key]] for key in sorted(entry)
                    if key != "progress"]
            rows.extend(
                [f"progress.{key}", value]
                for key, value in sorted(entry.get("progress", {}).items())
            )
            print(render_table(["field", "value"], rows,
                               title=f"job {args.job[:12]}"))
            return 0

        if args.watch:
            def _print_progress(frame):
                for job in frame.get("jobs", []):
                    if job.get("state") != "running":
                        continue
                    percent = job.get("percent")
                    percent = 0.0 if percent is None else float(percent)
                    print(
                        f"  [{job.get('digest', '?')[:12]}] "
                        f"{job.get('benchmark')}/{job.get('policy')} "
                        f"{percent:5.1f}%",
                        flush=True,
                    )
            client.on_progress = _print_progress
            client.watch(True)

        specs = [
            {
                "benchmark": benchmark,
                "policy": policy,
                "instructions": int(args.instructions),
                "settle_time_s": args.settle_ms * 1e-3,
                "dvs_mode": args.dvs_mode,
                "seed": args.seed,
            }
            for benchmark in args.benchmarks
            for policy in args.policies
        ]
        try:
            outcomes = client.submit(specs, timeout_s=args.wait_s)
        except ServiceBusyError as exc:
            print(f"server busy: {exc}", file=sys.stderr)
            return 3
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    rows = []
    failures = 0
    for spec, outcome in zip(specs, outcomes):
        if outcome.ok:
            rows.append([
                spec["benchmark"], spec["policy"],
                "cached" if outcome.cached else "ran",
                outcome.result.elapsed_s * 1e3,
                outcome.result.violations,
            ])
        else:
            failures += 1
            rows.append([
                spec["benchmark"], spec["policy"], "FAILED",
                outcome.error, "-",
            ])
    print(render_table(
        ["benchmark", "policy", "status", "elapsed ms / error",
         "violations"],
        rows,
        title=f"service submission ({len(specs)} specs)",
    ))
    if failures:
        print(f"{failures}/{len(specs)} specs failed")
    return 0 if failures == 0 else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import SweepReport, validate_events_file

    code = 0
    event_files = list(args.events or [])
    if args.validate and args.path:
        # --validate: also pick up the event logs written next to the
        # report, so a malformed log fails the command loudly instead
        # of silently skewing the rendered SweepReport.
        listed = {str(Path(p).resolve()) for p in event_files}
        for sibling in sorted(Path(args.path).parent.glob("events-*.jsonl")):
            if str(sibling.resolve()) not in listed:
                event_files.append(str(sibling))
    if args.validate and not event_files:
        print(
            "error: --validate found no event logs (no --events given "
            f"and no events-*.jsonl next to {args.path or 'the report'})",
            file=sys.stderr,
        )
        return 2
    if event_files:
        total = 0
        for path in event_files:
            count, errors = validate_events_file(path)
            total += count
            if errors:
                code = 1
                print(f"{path}: {count} events, {len(errors)} invalid")
                for error in errors[:10]:
                    print(f"  {error}")
            else:
                print(f"{path}: {count} events, all valid")
        print(f"validated {total} events across {len(event_files)} file(s)")
    if code and args.validate:
        # Malformed logs poison whatever the report aggregated from
        # them: refuse to render rather than print skewed numbers.
        print("error: event validation failed; not rendering the report",
              file=sys.stderr)
        return code

    if args.path:
        report = SweepReport.load(args.path)
        if args.prometheus:
            print(report.prometheus_text(), end="")
        else:
            print(report.render())
    elif not event_files:
        print(
            "error: give a sweep-report path and/or --events files",
            file=sys.stderr,
        )
        return 2
    return code


def _cmd_characterise(args: argparse.Namespace) -> int:
    rows = [
        [
            row.benchmark,
            row.hottest_block,
            row.max_temp_c,
            row.fraction_above_trigger,
            row.mean_power_w,
            row.mean_ipc,
        ]
        for row in t4_benchmark_characterisation(
            instructions=args.instructions
        )
    ]
    print(render_table(
        ["benchmark", "hottest", "max C", "above trigger",
         "power W", "IPC"],
        rows,
        title="unmanaged benchmark characterisation",
    ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    if not (bench_dir / "run_all.py").is_file():
        print(
            f"error: benchmark harness not found at {bench_dir}",
            file=sys.stderr,
        )
        return 2
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    run_all = importlib.import_module("run_all")

    # Per-section timers are cheap enough to leave on for the whole
    # harness; they power the breakdown table printed below.
    os.environ[STEP_TIMING_ENV] = "1"
    reset_step_timers()

    harness_argv: List[str] = []
    if args.only:
        harness_argv.extend(["--only", *args.only])

    profiler = cProfile.Profile() if args.profile else None
    if profiler is not None:
        profiler.enable()
    try:
        code = run_all.main(harness_argv)
    finally:
        if profiler is not None:
            profiler.disable()

    timers = step_timers()
    if timers:
        # ``kernel`` is a *boundary* span: it wraps whole fused dense
        # spans whose inner sense/perf/power/thermal work records under
        # the other sections too (see engine.STEP_SECTIONS), so it is
        # excluded from the additive total and reported separately.
        boundary = timers.pop("kernel", None)
        total = sum(seconds for seconds, _ in timers.values())
        rows = [
            [
                section,
                round(seconds, 3),
                calls,
                round(1e6 * seconds / calls, 1) if calls else 0.0,
                round(100.0 * seconds / total, 1) if total else 0.0,
            ]
            for section, (seconds, calls) in sorted(
                timers.items(), key=lambda item: -item[1][0]
            )
        ]
        print()
        print(render_table(
            ["section", "seconds", "calls", "us/call", "% timed"],
            rows,
            title="per-phase step timing",
        ))
        if boundary is not None:
            seconds, calls = boundary
            per_span = 1e6 * seconds / calls if calls else 0.0
            covered = 100.0 * seconds / total if total else 0.0
            print(
                f"[step.kernel boundary span: {seconds:.3f} s over "
                f"{calls} fused spans ({per_span:.1f} us/span), covering "
                f"{covered:.1f}% of the timed sections above -- overlaps "
                f"them, so it is excluded from the additive total]"
            )

    if profiler is not None:
        print("\n[cProfile: top functions by total time]")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.strip_dirs().sort_stats("tottime").print_stats(
            args.profile_limit
        )
    return code


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid architectural DTM reproduction (Skadron, "
                    "DATE 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and policies")

    run_parser = sub.add_parser("run", help="run one benchmark/policy pair")
    run_parser.add_argument(
        "--benchmark", required=True, choices=SPEC_BENCHMARK_NAMES
    )
    run_parser.add_argument("--policy", required=True, choices=POLICY_NAMES)
    _add_common(run_parser)

    eval_parser = sub.add_parser(
        "evaluate", help="compare techniques across the suite (Figure 4)"
    )
    eval_parser.add_argument(
        "--techniques", nargs="+", default=["FG", "DVS", "PI-Hyb", "Hyb"],
        choices=[n for n in POLICY_NAMES if n != "none"],
    )
    _add_common(eval_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="PI-Hyb duty-cycle sweep (Figure 3a)"
    )
    sweep_parser.add_argument(
        "--duty-cycles", nargs="+", type=float,
        default=[20.0, 10.0, 5.0, 4.0, 3.0, 2.5, 2.0, 1.5],
    )
    _add_common(sweep_parser)

    batch_parser = sub.add_parser(
        "batch",
        help="run a benchmark x policy grid under the sweep supervisor",
    )
    batch_parser.add_argument(
        "--benchmarks", nargs="+", default=list(SPEC_BENCHMARK_NAMES),
        choices=SPEC_BENCHMARK_NAMES,
    )
    batch_parser.add_argument(
        "--policies", nargs="+", default=["Hyb"], choices=POLICY_NAMES,
    )
    batch_parser.add_argument(
        "--processes", type=int, default=None,
        help="worker processes (default: serial in-process)",
    )
    _add_supervisor_knobs(batch_parser)
    batch_parser.add_argument(
        "--partial", action="store_true",
        help="report failed runs as rows instead of aborting the sweep",
    )
    batch_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append finished runs to a JSONL journal",
    )
    batch_parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="skip runs already recorded in this journal (implies "
             "appending new finishes to it)",
    )
    batch_parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="save the merged observability report (JSONL; needs "
             "REPRO_OBS=1)",
    )
    _add_common(batch_parser)

    char_parser = sub.add_parser(
        "characterise", help="unmanaged thermal characterisation"
    )
    _add_common(char_parser)

    serve_parser = sub.add_parser(
        "serve",
        help="run the sweep service: an async job server with a "
             "content-addressed result cache (docs/SERVICE.md)",
    )
    _add_service_address(serve_parser)
    serve_parser.add_argument(
        "--cache-dir", default="service-cache", metavar="DIR",
        help="directory holding the result cache and journal "
             "(default %(default)s); restarting against the same "
             "directory recovers every journalled result",
    )
    serve_parser.add_argument(
        "--max-queue", type=int, default=256, metavar="N",
        help="admission-queue bound across all clients; submissions "
             "beyond it are shed with a BUSY reply "
             "(default %(default)s)",
    )
    serve_parser.add_argument(
        "--max-frame-bytes", type=int, default=1 << 20, metavar="N",
        help="largest accepted protocol frame (default %(default)s)",
    )
    serve_parser.add_argument(
        "--processes", type=int, default=None,
        help="worker processes per job (default: serial in-process)",
    )
    serve_parser.add_argument(
        "--http", default=None, metavar="HOST:PORT",
        help="mount the read-only observability HTTP facade "
             "(/metrics, /healthz, /readyz, /jobs, /flight); "
             "port 0 binds an ephemeral port",
    )
    _add_supervisor_knobs(serve_parser)

    submit_parser = sub.add_parser(
        "submit",
        help="submit a benchmark x policy grid to a running sweep "
             "service (or query --status / request --drain)",
    )
    _add_service_address(submit_parser)
    submit_parser.add_argument(
        "--benchmarks", nargs="+", default=list(SPEC_BENCHMARK_NAMES),
        choices=SPEC_BENCHMARK_NAMES,
    )
    submit_parser.add_argument(
        "--policies", nargs="+", default=["Hyb"], choices=POLICY_NAMES,
    )
    submit_parser.add_argument(
        "--seed", type=int, default=0,
        help="sensor-noise seed for every spec (default %(default)s)",
    )
    submit_parser.add_argument(
        "--wait-s", type=float, default=None, metavar="S",
        help="overall deadline for the submission (default: wait "
             "forever)",
    )
    submit_parser.add_argument(
        "--connect-timeout-s", type=float, default=30.0, metavar="S",
        help="socket timeout for connect and per-frame reads "
             "(default %(default)s)",
    )
    submit_parser.add_argument(
        "--status", action="store_true",
        help="print the server's STATUS snapshot and exit",
    )
    submit_parser.add_argument(
        "--job", default=None, metavar="DIGEST",
        help="print one job's status (state, percent complete) by "
             "spec digest and exit",
    )
    submit_parser.add_argument(
        "--watch", action="store_true",
        help="subscribe to streamed progress frames and print live "
             "per-job percent-complete lines while waiting",
    )
    submit_parser.add_argument(
        "--drain", action="store_true",
        help="ask the server to drain gracefully and exit",
    )
    _add_common(submit_parser)

    report_parser = sub.add_parser(
        "report",
        help="render a saved sweep report and/or validate event logs",
    )
    report_parser.add_argument(
        "path", nargs="?", default=None,
        help="sweep-report JSONL written by `batch --report`",
    )
    report_parser.add_argument(
        "--prometheus", action="store_true",
        help="emit the report's aggregates in Prometheus text format",
    )
    report_parser.add_argument(
        "--events", nargs="+", default=None, metavar="PATH",
        help="validate these events-*.jsonl files against the event "
             "schema",
    )
    report_parser.add_argument(
        "--validate", action="store_true",
        help="validate the event logs next to the report (plus any "
             "--events) and refuse to render if any are malformed",
    )

    bench_parser = sub.add_parser(
        "bench",
        help="run the benchmark harness with a per-phase step-timing "
             "breakdown (and optionally cProfile)",
    )
    bench_parser.add_argument(
        "--only", nargs="+", default=None, metavar="BENCH",
        help="run only these benches (names from benchmarks/run_all.py)",
    )
    bench_parser.add_argument(
        "--profile", action="store_true",
        help="run the harness under cProfile and print the hottest "
             "functions afterwards",
    )
    bench_parser.add_argument(
        "--profile-limit", type=int, default=25, metavar="N",
        help="number of cProfile rows to print (default %(default)s)",
    )
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "evaluate": _cmd_evaluate,
    "sweep": _cmd_sweep,
    "batch": _cmd_batch,
    "characterise": _cmd_characterise,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "bench": _cmd_bench,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
