"""Thermal material properties.

Values are the ones HotSpot uses for planning-stage modelling: silicon at
high operating temperature and pure copper for the package parts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ThermalModelError


@dataclass(frozen=True)
class Material:
    """A homogeneous, isotropic thermal material.

    Parameters
    ----------
    name:
        Human-readable identifier.
    thermal_conductivity:
        k, in W/(m K).
    volumetric_heat_capacity:
        c_v, in J/(m^3 K).
    """

    name: str
    thermal_conductivity: float
    volumetric_heat_capacity: float

    def __post_init__(self) -> None:
        if self.thermal_conductivity <= 0.0:
            raise ThermalModelError(
                f"material {self.name!r}: thermal conductivity must be > 0"
            )
        if self.volumetric_heat_capacity <= 0.0:
            raise ThermalModelError(
                f"material {self.name!r}: heat capacity must be > 0"
            )

    def conduction_resistance(self, length: float, area: float) -> float:
        """1-D conduction resistance (K/W) of a slab ``length`` thick with
        cross-section ``area``."""
        if length <= 0.0 or area <= 0.0:
            raise ThermalModelError(
                f"material {self.name!r}: slab needs positive length and area"
            )
        return length / (self.thermal_conductivity * area)

    def capacitance(self, volume: float) -> float:
        """Lumped thermal capacitance (J/K) of ``volume`` m^3 of material."""
        if volume <= 0.0:
            raise ThermalModelError(f"material {self.name!r}: volume must be > 0")
        return self.volumetric_heat_capacity * volume


SILICON = Material(
    name="silicon",
    thermal_conductivity=100.0,  # W/(m K), bulk Si near 85 C
    volumetric_heat_capacity=1.75e6,  # J/(m^3 K)
)

COPPER = Material(
    name="copper",
    thermal_conductivity=400.0,  # W/(m K)
    volumetric_heat_capacity=3.55e6,  # J/(m^3 K)
)
