"""Predictive hybrid DTM (the paper's "future work", Section 6).

The paper closes by noting that "techniques for predicting thermal stress
and responding proactively, rather than waiting for actual thermal stress
and responding reactively, may further reduce the overhead of DTM"
(citing Srinivasan & Adve's predictive DTM).  This module implements that
extension on top of the hybrid structure:

each sensor sample updates a low-pass-filtered temperature *slope*
estimate; the policy acts on the temperature **forecast** a configurable
horizon ahead (``T + slope * horizon``) instead of the instantaneous
reading.  Rising temperatures engage the ILP response *before* the trigger
is crossed, so the mild response has time to work and the expensive DVS
escalation fires less often; falling temperatures release earlier, win
back throughput, and the forecast's smoothing keeps sensor noise out of
the comparators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.dtm.base import DtmCommand, DtmPolicy
from repro.dtm.controllers import LowPassFilter
from repro.dtm.hybrid import DEFAULT_CROSSOVER_GATING_FRACTION, HybridState
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import DtmConfigError


@dataclass(frozen=True)
class PredictiveHybConfig:
    """Configuration of the predictive hybrid.

    Parameters
    ----------
    horizon_s:
        Forecast lookahead; acting half a millisecond early is enough for
        the die-level dynamics the policy controls.
    slope_filter_alpha:
        Low-pass blend for the slope estimate (per-sample differences are
        noisy at 10 kHz with 1/3-degree sensor noise).
    gating_fraction:
        The fixed ILP response level (the crossover point, as in Hyb).
    second_threshold_offset_c:
        DVS engages when the *forecast* exceeds trigger + offset.
    v_low_ratio, nominal_voltage:
        Binary DVS levels.
    release_margin_c:
        The forecast must fall this far below a threshold to de-escalate.
    """

    horizon_s: float = 0.5e-3
    slope_filter_alpha: float = 0.15
    gating_fraction: float = DEFAULT_CROSSOVER_GATING_FRACTION
    second_threshold_offset_c: float = 1.4
    v_low_ratio: float = 0.85
    nominal_voltage: float = 1.3
    release_margin_c: float = 0.3

    def __post_init__(self) -> None:
        if self.horizon_s <= 0.0:
            raise DtmConfigError("forecast horizon must be > 0")
        if not 0.0 < self.slope_filter_alpha <= 1.0:
            raise DtmConfigError("slope filter alpha must be in (0, 1]")
        if not 0.0 < self.gating_fraction < 1.0:
            raise DtmConfigError("gating fraction must be in (0, 1)")
        if self.second_threshold_offset_c <= 0.0:
            raise DtmConfigError("second threshold offset must be > 0")
        if not 0.0 < self.v_low_ratio < 1.0:
            raise DtmConfigError("v_low_ratio must be in (0, 1)")
        if self.release_margin_c < 0.0:
            raise DtmConfigError("release margin must be >= 0")


class PredictiveHybPolicy(DtmPolicy):
    """Hyb driven by a short-horizon temperature forecast."""

    name = "Pred-Hyb"
    hottest_only = True

    def __init__(
        self,
        config: Optional[PredictiveHybConfig] = None,
        thresholds: Optional[ThermalThresholds] = None,
    ):
        self._config = config if config is not None else PredictiveHybConfig()
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        self._slope_filter = LowPassFilter(self._config.slope_filter_alpha)
        self._level_filter = LowPassFilter(0.35)
        self._previous: Optional[float] = None
        self._state = HybridState.NOMINAL

    @property
    def config(self) -> PredictiveHybConfig:
        """The policy configuration."""
        return self._config

    @property
    def state(self) -> HybridState:
        """Current response state."""
        return self._state

    def forecast(self, hottest: float, dt_s: float) -> float:
        """Update the slope estimate and return the temperature forecast
        ``horizon_s`` ahead."""
        level = self._level_filter.update(hottest)
        if self._previous is None:
            slope = 0.0
        else:
            slope = self._slope_filter.update(
                (level - self._previous) / dt_s
            )
        self._previous = level
        return level + slope * self._config.horizon_s

    def _command(self) -> DtmCommand:
        config = self._config
        if self._state is HybridState.DVS:
            return DtmCommand(
                gating_fraction=0.0,
                voltage=config.v_low_ratio * config.nominal_voltage,
            )
        if self._state is HybridState.ILP:
            return DtmCommand(
                gating_fraction=config.gating_fraction,
                voltage=config.nominal_voltage,
            )
        return DtmCommand(gating_fraction=0.0, voltage=config.nominal_voltage)

    def update(
        self, readings: Mapping[str, float], time_s: float, dt_s: float
    ) -> DtmCommand:
        """Escalate/de-escalate against the forecast temperature."""
        return self.update_hottest(self.hottest(readings), time_s, dt_s)

    def update_hottest(
        self, hottest: float, time_s: float, dt_s: float
    ) -> DtmCommand:
        """Escalate/de-escalate against the forecast temperature."""
        predicted = self.forecast(hottest, dt_s)
        trigger = self._thresholds.trigger_c
        second = trigger + self._config.second_threshold_offset_c
        margin = self._config.release_margin_c

        if predicted > second:
            self._state = HybridState.DVS
        elif predicted > trigger and self._state is HybridState.NOMINAL:
            self._state = HybridState.ILP
        elif self._state is HybridState.DVS and predicted < second - margin:
            self._state = HybridState.ILP
        elif self._state is HybridState.ILP and predicted < trigger - margin:
            self._state = HybridState.NOMINAL
        return self._command()

    def reset(self) -> None:
        """Clear forecast state and return to nominal."""
        self._slope_filter.reset()
        self._level_filter.reset()
        self._previous = None
        self._state = HybridState.NOMINAL
