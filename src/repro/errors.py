"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can distinguish modelling problems from
programming errors with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class FloorplanError(ReproError):
    """A floorplan is geometrically invalid (overlap, gap, bad block)."""


class ThermalModelError(ReproError):
    """The thermal RC network could not be built or solved."""


class PowerModelError(ReproError):
    """The power model was configured or queried inconsistently."""


class WorkloadError(ReproError):
    """A workload or phase description is invalid."""


class DtmConfigError(ReproError):
    """A DTM technique was configured with invalid parameters."""


class SimulationError(ReproError):
    """The coupled simulation reached an invalid state."""


class ThermalViolationError(SimulationError):
    """Raised when a run configured as violation-free exceeds the emergency
    threshold, i.e. the DTM technique under test failed to protect the chip."""

    def __init__(self, temperature_c, threshold_c, time_s, block):
        self.temperature_c = temperature_c
        self.threshold_c = threshold_c
        self.time_s = time_s
        self.block = block
        super().__init__(
            f"thermal violation: {block} reached {temperature_c:.2f} C "
            f"(> {threshold_c:.2f} C) at t={time_s * 1e3:.3f} ms"
        )
