"""Wire protocol: framing and the declarative spec format.

Every way a peer can violate the frame grammar must surface as a typed
error scoped to that read -- never a hang, never an unhandled
exception, never a silently half-consumed stream.
"""

from __future__ import annotations

import asyncio
import socket
import struct

import numpy as np
import pytest

from repro.service import protocol
from repro.sim.batch import RunSpec
from repro.sim.supervisor import spec_digest


def _read_from_bytes(data: bytes, **kwargs):
    """Run ``read_frame`` against a canned byte stream."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await protocol.read_frame(reader, **kwargs)

    return asyncio.run(go())


class TestFraming:
    def test_round_trip(self):
        obj = {"op": "ping", "nested": {"a": [1, 2.5, "é"]}}
        assert _read_from_bytes(protocol.encode_frame(obj)) == obj

    def test_clean_eof_is_none(self):
        assert _read_from_bytes(b"") is None

    def test_torn_header_raises(self):
        with pytest.raises(protocol.ProtocolError, match="frame header"):
            _read_from_bytes(b"\x00\x00")

    def test_torn_payload_raises(self):
        frame = protocol.encode_frame({"op": "ping"})
        with pytest.raises(protocol.ProtocolError, match="frame payload"):
            _read_from_bytes(frame[:-3])

    def test_oversized_frame_raises_after_draining(self):
        # The announced bytes are consumed, so a follow-up frame on the
        # same stream still parses -- the server may keep the connection.
        big = protocol.encode_frame({"blob": "x" * 200})
        follow = protocol.encode_frame({"op": "ping"})

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(big + follow)
            reader.feed_eof()
            with pytest.raises(protocol.FrameTooLargeError):
                await protocol.read_frame(reader, max_bytes=64)
            return await protocol.read_frame(reader, max_bytes=1024)

        assert asyncio.run(go()) == {"op": "ping"}

    def test_non_json_payload_raises(self):
        payload = b"not json at all"
        data = struct.pack(">I", len(payload)) + payload
        with pytest.raises(protocol.ProtocolError, match="not JSON"):
            _read_from_bytes(data)

    def test_non_object_json_raises(self):
        payload = b"[1, 2, 3]"
        data = struct.pack(">I", len(payload)) + payload
        with pytest.raises(protocol.ProtocolError, match="JSON object"):
            _read_from_bytes(data)


class TestBlockingSide:
    def test_socketpair_round_trip(self):
        a, b = socket.socketpair()
        try:
            obj = {"op": "status", "n": 7}
            protocol.send_frame(a, obj)
            assert protocol.recv_frame(b) == obj
            a.close()
            assert protocol.recv_frame(b) is None  # clean EOF
        finally:
            a.close()
            b.close()

    def test_oversized_announcement_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 1 << 30))
            with pytest.raises(protocol.FrameTooLargeError):
                protocol.recv_frame(b, max_bytes=1024)
        finally:
            a.close()
            b.close()

    def test_torn_stream_raises(self):
        a, b = socket.socketpair()
        try:
            frame = protocol.encode_frame({"op": "ping"})
            a.sendall(frame[:-2])
            a.close()
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_frame(b)
        finally:
            b.close()


class TestSpecWire:
    def test_round_trip_preserves_digest(self):
        spec = RunSpec("gzip", "Hyb", instructions=2_000_000,
                       settle_time_s=0.002, dvs_mode="ideal", seed=3)
        wire = protocol.spec_to_wire(spec)
        rebuilt = protocol.spec_from_wire(wire)
        assert spec_digest(rebuilt) == spec_digest(spec)

    def test_defaults_fill_in(self):
        spec = protocol.spec_from_wire(
            {"benchmark": "gzip", "instructions": 1000}
        )
        assert spec.policy == "none"
        assert spec.dvs_mode == "stall"
        assert spec.seed == 0

    @pytest.mark.parametrize("wire, match", [
        ("gzip", "must be an object"),
        ({}, "missing 'benchmark'"),
        ({"benchmark": "gzip", "bogus": 1}, "unknown spec fields"),
        ({"benchmark": "notabench"}, "unknown benchmark"),
        ({"benchmark": "gzip", "policy": "NotAPolicy"}, "unknown policy"),
        ({"benchmark": "gzip", "dvs_mode": "warp"}, "unknown dvs_mode"),
        ({"benchmark": "gzip", "instructions": 0}, "instructions"),
        ({"benchmark": "gzip", "instructions": True}, "wrong type"),
        ({"benchmark": "gzip", "settle_time_s": -1.0}, "settle_time_s"),
        ({"benchmark": 7}, "wrong type"),
    ])
    def test_rejections_name_the_field(self, wire, match):
        with pytest.raises(protocol.SpecError, match=match):
            protocol.spec_from_wire(wire)

    def test_callable_policy_not_wire_portable(self):
        spec = RunSpec("gzip", lambda: None, instructions=1000)
        with pytest.raises(protocol.SpecError, match="name their policy"):
            protocol.spec_to_wire(spec)

    def test_pinned_initial_not_wire_portable(self):
        spec = RunSpec("gzip", "FG", instructions=1000,
                       initial=np.full(8, 85.0))
        with pytest.raises(protocol.SpecError, match="initial"):
            protocol.spec_to_wire(spec)

    def test_non_spec_rejected(self):
        with pytest.raises(protocol.SpecError, match="RunSpec"):
            protocol.spec_to_wire({"benchmark": "gzip"})
