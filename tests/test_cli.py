"""Command-line interface."""

import importlib
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main
from repro.sim.engine import STEP_TIMING_ENV, reset_step_timers

BENCH_DIR = Path(repro.__file__).resolve().parents[2] / "benchmarks"


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_benchmark_and_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--benchmark", "gzip"])

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--benchmark", "specjbb", "--policy", "Hyb"]
            )

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--benchmark", "gzip", "--policy", "dvs"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(
            ["run", "--benchmark", "gzip", "--policy", "Hyb"]
        )
        assert args.instructions == 20_000_000
        assert args.dvs_mode == "stall"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "PI-Hyb" in out

    def test_run_protected_benchmark_exits_zero(self, capsys):
        code = main([
            "run", "--benchmark", "mesa", "--policy", "Hyb",
            "--instructions", "2000000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "slowdown_factor" in out

    def test_run_unmanaged_hot_benchmark_exits_nonzero(self, capsys):
        code = main([
            "run", "--benchmark", "crafty", "--policy", "none",
            "--instructions", "2000000",
        ])
        capsys.readouterr()
        assert code == 1  # violations occurred

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--duty-cycles", "20", "3",
            "--instructions", "1000000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "best duty cycle" in out

    def test_characterise(self, capsys):
        code = main(["characterise", "--instructions", "1000000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "IntReg" in out

    def test_evaluate_subset(self, capsys):
        code = main([
            "evaluate", "--techniques", "DVS",
            "--instructions", "1000000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "DVS" in out


class TestBench:
    """The ``bench`` subcommand (harness + step-timing + cProfile)."""

    def test_parses_flags(self):
        args = build_parser().parse_args(
            ["bench", "--profile", "--only", "fig3b", "--profile-limit", "5"]
        )
        assert args.command == "bench"
        assert args.profile
        assert args.only == ["fig3b"]
        assert args.profile_limit == 5

    @pytest.fixture()
    def _sandboxed_harness(self, monkeypatch, tmp_path):
        """Run the real harness at a tiny budget without clobbering the
        committed result tables, JSON baseline or trajectory log."""
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "120000")
        monkeypatch.setenv(STEP_TIMING_ENV, "0")  # restored on teardown
        monkeypatch.syspath_prepend(str(BENCH_DIR))
        helpers = importlib.import_module("_helpers")
        run_all = importlib.import_module("run_all")
        monkeypatch.setattr(helpers, "RESULTS_DIR", tmp_path / "results")
        monkeypatch.setattr(
            run_all, "DEFAULT_JSON_PATH", tmp_path / "results.json"
        )
        monkeypatch.setattr(
            run_all, "TRAJECTORY_PATH", tmp_path / "trajectory.jsonl"
        )
        yield run_all
        reset_step_timers()

    def test_bench_prints_timing_breakdown(
        self, capsys, _sandboxed_harness
    ):
        code = main([
            "bench", "--only", "fig3b", "--profile", "--profile-limit", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-phase step timing" in out
        for section in ("thermal", "power", "perf", "sense", "policy"):
            assert section in out
        assert "cProfile" in out

    def test_run_all_json_appends_to_trajectory(
        self, capsys, _sandboxed_harness
    ):
        import json

        run_all = _sandboxed_harness
        code = run_all.main(["--only", "fig3b", "--json"])
        capsys.readouterr()
        assert code == 0
        lines = run_all.TRAJECTORY_PATH.read_text().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["overall_steps_per_second"] > 0
        assert entry["benches"] == ["fig3b"]
        assert entry["config"]["instructions"] == 120000
        assert run_all.DEFAULT_JSON_PATH.exists()


class TestReport:
    """The ``report`` subcommand and ``batch --report``."""

    @pytest.fixture()
    def _obs(self, tmp_path, monkeypatch):
        import repro.obs as obs
        from repro.obs.metrics import OBS_DIR_ENV

        monkeypatch.setenv(OBS_DIR_ENV, str(tmp_path))
        obs.reset_for_testing()
        previous = obs.set_enabled(True)
        yield tmp_path
        obs.set_enabled(previous)
        obs.reset_for_testing()

    def test_report_requires_some_input(self, capsys):
        assert main(["report"]) == 2
        assert "sweep-report path" in capsys.readouterr().err

    def test_batch_report_needs_obs_enabled(self, tmp_path, capsys):
        import repro.obs as obs

        previous = obs.set_enabled(False)
        try:
            code = main([
                "batch", "--benchmarks", "gzip", "--policies", "FG",
                "--instructions", "1000000",
                "--report", str(tmp_path / "report.jsonl"),
            ])
        finally:
            obs.set_enabled(previous)
        assert code == 2
        assert "REPRO_OBS" in capsys.readouterr().err

    def test_batch_report_then_render_and_validate(
        self, _obs, tmp_path, capsys
    ):
        report_path = tmp_path / "report.jsonl"
        code = main([
            "batch", "--benchmarks", "gzip", "--policies", "FG",
            "--instructions", "1000000", "--report", str(report_path),
        ])
        assert code == 0
        assert report_path.exists()
        capsys.readouterr()

        events = sorted(Path(_obs).glob("events-*.jsonl"))
        assert events
        code = main([
            "report", str(report_path), "--events",
            *(str(p) for p in events),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "all valid" in out
        assert "engine.trigger_crossings" in out

        code = main(["report", str(report_path), "--prometheus"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro_engine_runs 1" in out
