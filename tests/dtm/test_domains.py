"""Clock domains for local toggling."""

import pytest

from repro.dtm import CLOCK_DOMAINS, domain_criticality, domain_of
from repro.errors import DtmConfigError
from repro.floorplan import ALL_BLOCKS, L2_BLOCKS


def test_domains_cover_all_core_blocks_once():
    covered = [b for blocks in CLOCK_DOMAINS.values() for b in blocks]
    assert len(covered) == len(set(covered))
    assert set(covered) == set(ALL_BLOCKS) - set(L2_BLOCKS)


def test_domain_of():
    assert domain_of("IntReg") == "int"
    assert domain_of("Icache") == "frontend"
    assert domain_of("FPMul") == "fp"
    assert domain_of("Dcache") == "mem"


def test_l2_is_not_gateable():
    with pytest.raises(DtmConfigError):
        domain_of("L2")


def test_unknown_block_rejected():
    with pytest.raises(DtmConfigError):
        domain_of("nope")


def test_int_and_mem_domains_fully_critical():
    assert domain_criticality("int", {}) == 1.0
    assert domain_criticality("mem", {}) == 1.0


def test_frontend_partially_buffered():
    assert 0.5 < domain_criticality("frontend", {}) < 1.0


def test_fp_criticality_scales_with_fp_work():
    int_only = {"FPAdd": 0.02, "FPMul": 0.02, "FPReg": 0.02, "FPQ": 0.02}
    fp_heavy = {"FPAdd": 0.5, "FPMul": 0.4, "FPReg": 0.5, "FPQ": 0.5}
    assert domain_criticality("fp", int_only) < 0.1
    assert domain_criticality("fp", fp_heavy) == 1.0


def test_unknown_domain_rejected():
    with pytest.raises(DtmConfigError):
        domain_criticality("gpu", {})
