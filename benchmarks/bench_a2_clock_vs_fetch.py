"""Ablation A2: global clock gating versus fetch gating.

The paper argues fetch gating over clock gating for the ILP component:
clock gating buys extra power (the clock tree stops too) but stops *all*
progress, so there is no ILP left to hide behind.  This ablation runs both
under identical integral control and compares slowdown at equal protection.
"""

from _helpers import bench_instructions, save_table

from repro.analysis import render_table
from repro.core.evaluation import evaluate_policy, run_baselines
from repro.dtm import ClockGatingPolicy, FetchGatingPolicy


def _run() -> str:
    baselines = run_baselines(instructions=bench_instructions())
    fg = evaluate_policy(FetchGatingPolicy, baselines)
    cg = evaluate_policy(ClockGatingPolicy, baselines)
    benchmarks = sorted(fg.slowdowns)
    rows = [
        [b, fg.slowdowns[b], cg.slowdowns[b]] for b in benchmarks
    ]
    rows.append(["MEAN", fg.mean_slowdown, cg.mean_slowdown])
    table = render_table(
        ["benchmark", "FG slowdown", "CG slowdown"],
        rows,
        title="A2: fetch gating vs global clock gating "
              f"(violations: FG {fg.total_violations}, "
              f"CG {cg.total_violations})",
    )
    return table


def test_a2_clock_vs_fetch(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("a2_clock_vs_fetch", table)
