"""Hybrid DTM policies."""

import pytest

from repro.dtm import (
    HybConfig,
    HybPolicy,
    PIHybConfig,
    PIHybPolicy,
    ThermalThresholds,
)
from repro.dtm.hybrid import (
    DEFAULT_CROSSOVER_GATING_FRACTION,
    IDEAL_DVS_CROSSOVER_GATING_FRACTION,
    HybridState,
)
from repro.errors import DtmConfigError

THRESHOLDS = ThermalThresholds()
TRIGGER = THRESHOLDS.trigger_c


def readings(temp):
    return {"IntReg": temp}


class TestCrossoverConstants:
    def test_stall_crossover_is_duty_cycle_three(self):
        assert DEFAULT_CROSSOVER_GATING_FRACTION == pytest.approx(1.0 / 3.0)

    def test_ideal_crossover_is_duty_cycle_twenty(self):
        assert IDEAL_DVS_CROSSOVER_GATING_FRACTION == pytest.approx(0.05)


class TestHyb:
    @pytest.fixture()
    def policy(self):
        return HybPolicy()

    def test_nominal_below_trigger(self, policy):
        cmd = policy.update(readings(TRIGGER - 1.0), 0.0, 1e-4)
        assert cmd.gating_fraction == 0.0
        assert cmd.voltage == pytest.approx(1.3)
        assert policy.state is HybridState.NOMINAL

    def test_fixed_fg_between_thresholds(self, policy):
        cmd = policy.update(readings(TRIGGER + 0.3), 0.0, 1e-4)
        assert policy.state is HybridState.ILP
        assert cmd.gating_fraction == pytest.approx(1.0 / 3.0)
        assert cmd.voltage == pytest.approx(1.3)

    def test_dvs_above_second_threshold(self, policy):
        offset = policy.config.second_threshold_offset_c
        cmd = policy.update(readings(TRIGGER + offset + 0.2), 0.0, 1e-4)
        assert policy.state is HybridState.DVS
        assert cmd.gating_fraction == 0.0
        assert cmd.voltage == pytest.approx(0.85 * 1.3)

    def test_escalation_is_immediate_on_raw_reading(self, policy):
        # Prime the filter cool, then a single hot spike escalates.
        policy.update(readings(70.0), 0.0, 1e-4)
        cmd = policy.update(readings(TRIGGER + 5.0), 1e-4, 1e-4)
        assert cmd.voltage < 1.3

    def test_deescalation_is_filtered_and_stepwise(self, policy):
        offset = policy.config.second_threshold_offset_c
        policy.update(readings(TRIGGER + offset + 1.0), 0.0, 1e-4)
        assert policy.state is HybridState.DVS
        # One cool reading is not enough.
        policy.update(readings(TRIGGER - 2.0), 1e-4, 1e-4)
        assert policy.state is HybridState.DVS
        # Sustained cooling steps down through ILP to nominal.
        states = []
        for i in range(60):
            policy.update(readings(TRIGGER - 2.0), (i + 2) * 1e-4, 1e-4)
            states.append(policy.state)
        assert HybridState.ILP in states
        assert states[-1] is HybridState.NOMINAL

    def test_reset(self, policy):
        policy.update(readings(TRIGGER + 5.0), 0.0, 1e-4)
        policy.reset()
        assert policy.state is HybridState.NOMINAL

    def test_config_validation(self):
        with pytest.raises(DtmConfigError):
            HybConfig(gating_fraction=0.0)
        with pytest.raises(DtmConfigError):
            HybConfig(second_threshold_offset_c=0.0)
        with pytest.raises(DtmConfigError):
            HybConfig(v_low_ratio=1.2)


class TestPIHyb:
    @pytest.fixture()
    def policy(self):
        return PIHybPolicy()

    def test_starts_ungated(self, policy):
        cmd = policy.update(readings(70.0), 0.0, 1e-4)
        assert cmd.gating_fraction == 0.0
        assert cmd.voltage == pytest.approx(1.3)

    def test_fg_controller_ramps_below_crossover(self, policy):
        cmd = None
        for i in range(5):
            cmd = policy.update(readings(TRIGGER + 0.5), i * 1e-4, 1e-4)
        assert 0.0 < cmd.gating_fraction <= 1.0 / 3.0
        assert cmd.voltage == pytest.approx(1.3)

    def test_never_gates_beyond_crossover(self, policy):
        for i in range(1000):
            cmd = policy.update(readings(TRIGGER + 5.0), i * 1e-4, 1e-4)
            assert cmd.gating_fraction <= 1.0 / 3.0 + 1e-9

    def test_switches_to_dvs_when_saturated_and_still_hot(self, policy):
        cmd = None
        for i in range(200):
            cmd = policy.update(readings(TRIGGER + 2.0), i * 1e-4, 1e-4)
        assert policy.state is HybridState.DVS
        assert cmd.voltage == pytest.approx(0.85 * 1.3)
        assert cmd.gating_fraction == 0.0

    def test_returns_to_fg_after_sustained_cooling(self, policy):
        for i in range(200):
            policy.update(readings(TRIGGER + 2.0), i * 1e-4, 1e-4)
        assert policy.state is HybridState.DVS
        cmd = None
        for i in range(200, 500):
            cmd = policy.update(readings(TRIGGER - 2.0), i * 1e-4, 1e-4)
        assert policy.state is HybridState.ILP
        assert cmd.voltage == pytest.approx(1.3)

    def test_custom_crossover(self):
        policy = PIHybPolicy(PIHybConfig(max_gating_fraction=0.05))
        for i in range(1000):
            cmd = policy.update(readings(TRIGGER + 5.0), i * 1e-4, 1e-4)
            assert cmd.gating_fraction <= 0.05 + 1e-9

    def test_reset(self, policy):
        for i in range(200):
            policy.update(readings(TRIGGER + 3.0), i * 1e-4, 1e-4)
        policy.reset()
        assert policy.state is HybridState.ILP
        cmd = policy.update(readings(70.0), 0.0, 1e-4)
        assert cmd.gating_fraction == 0.0

    def test_config_validation(self):
        with pytest.raises(DtmConfigError):
            PIHybConfig(max_gating_fraction=0.0)
        with pytest.raises(DtmConfigError):
            PIHybConfig(ki=0.0)
        with pytest.raises(DtmConfigError):
            PIHybConfig(engage_margin_c=-1.0)
