"""Exponential-propagator stepper: exactness, fast-forward, envelopes.

The :class:`~repro.thermal.solver.ExponentialSolver` advances the LTI
network with the *exact* zero-order-hold propagator, so its defining
properties are algebraic identities rather than discretisation limits:
subdividing a step changes nothing, a K-step fast-forward equals K
explicit steps, and backward Euler converges *to it* as dt -> 0.
"""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.floorplan import Block, Floorplan
from repro.thermal import (
    ExponentialSolver,
    ThermalPackage,
    TransientSolver,
    build_thermal_network,
    make_transient_solver,
    steady_state,
)
from repro.thermal.solver import (
    FACTOR_CACHE_SIZE,
    STEPPER_BACKWARD_EULER,
    STEPPER_EXPONENTIAL,
    _LruCache,
    step_lockstep,
)


@pytest.fixture(scope="module")
def network():
    fp = Floorplan(
        [Block("a", 0, 0, 2e-3, 2e-3), Block("b", 2e-3, 0, 2e-3, 2e-3)]
    )
    return build_thermal_network(fp, ThermalPackage())


@pytest.fixture(scope="module")
def power(network):
    return network.power_vector({"a": 4.0, "b": 1.0})


def _perturbed_start(network):
    start = np.full(network.size, network.ambient_c)
    start[network.index_of("a")] += 12.0
    start[network.index_of("b")] += 6.0
    return start


class TestExactness:
    def test_fixed_point_is_steady_state(self, network, power):
        target = steady_state(network, power)
        solver = ExponentialSolver(network, target)
        temps = solver.step(power, 1e-3)
        assert np.allclose(temps, target, atol=1e-9)

    def test_step_subdivision_is_exact(self, network, power):
        # The exact propagator is a semigroup: K steps of dt equal one
        # step of K*dt to rounding error.  Backward Euler fails this
        # badly; it is the property that makes fast-forward exact.
        coarse = ExponentialSolver(network, _perturbed_start(network))
        fine = ExponentialSolver(network, _perturbed_start(network))
        coarse.step(power, 64e-6)
        for _ in range(64):
            fine.step(power, 1e-6)
        assert np.allclose(coarse.temperatures, fine.temperatures, atol=1e-9)

    def test_matches_dense_matrix_exponential(self, network, power):
        from scipy.linalg import expm

        dt = 3.3e-6
        start = _perturbed_start(network)
        solver = ExponentialSolver(network, start)
        solver.step(power, dt)

        generator = -network.conductance / network.capacitance[:, None]
        t_ss = np.linalg.solve(
            network.conductance,
            power + network.ambient_conductance * network.ambient_c,
        )
        expected = t_ss + expm(generator * dt) @ (start - t_ss)
        assert np.allclose(solver.temperatures, expected, atol=1e-10)

    def test_backward_euler_converges_to_expm(self, network, power):
        # As dt -> 0 backward Euler must converge (first order) to the
        # exact propagator's answer over a fixed horizon.
        horizon = 128e-6
        exact = ExponentialSolver(network, _perturbed_start(network))
        exact.step(power, horizon)
        target = exact.temperatures

        errors = []
        for steps in (8, 16, 32, 64):
            be = TransientSolver(network, _perturbed_start(network))
            for _ in range(steps):
                be.step(power, horizon / steps)
            errors.append(float(np.max(np.abs(be.temperatures - target))))
        # Strictly decreasing, roughly halving each refinement.
        assert errors[0] > errors[1] > errors[2] > errors[3]
        for coarse, fine in zip(errors, errors[1:]):
            assert coarse / fine == pytest.approx(2.0, rel=0.35)

    def test_time_tracking_and_reset(self, network, power):
        solver = ExponentialSolver(network, _perturbed_start(network))
        solver.step(power, 2e-6)
        solver.step(power, 3e-6)
        assert solver.time_s == pytest.approx(5e-6)
        solver.reset(np.full(network.size, 50.0))
        assert solver.time_s == 0.0
        assert np.allclose(solver.temperatures, 50.0)

    def test_rejects_bad_inputs(self, network):
        solver = ExponentialSolver(network, _perturbed_start(network))
        with pytest.raises(ThermalModelError):
            solver.step(np.zeros(network.size), 0.0)
        with pytest.raises(ThermalModelError):
            solver.step(np.zeros(2), 1e-6)
        with pytest.raises(ThermalModelError):
            ExponentialSolver(network, np.zeros(2))
        with pytest.raises(ThermalModelError):
            solver.reset(np.zeros(2))


class TestFastForward:
    @pytest.mark.parametrize("steps", [1, 2, 3, 7, 30, 100])
    def test_matches_explicit_steps(self, network, power, steps):
        dt = 3.3e-6
        jump = ExponentialSolver(network, _perturbed_start(network))
        explicit = ExponentialSolver(network, _perturbed_start(network))
        jump.fast_forward(power, dt, steps)
        for _ in range(steps):
            explicit.step(power, dt)
        assert np.allclose(
            jump.temperatures, explicit.temperatures, atol=1e-9
        )
        assert jump.time_s == pytest.approx(explicit.time_s)

    def test_rejects_zero_steps(self, network, power):
        solver = ExponentialSolver(network, _perturbed_start(network))
        with pytest.raises(ThermalModelError):
            solver.fast_forward(power, 1e-6, 0)

    def test_composed_propagator_is_cached(self, network, power):
        solver = ExponentialSolver(network, _perturbed_start(network))
        a_first, b_first = solver._propagator_power(3.3e-6, 30)
        a_again, b_again = solver._propagator_power(3.3e-6, 30)
        assert a_first is a_again and b_first is b_again


class TestSpanEnvelope:
    def test_trajectory_stays_inside_bounds(self, network, power):
        dt = 2e-6
        steps = 50
        span = dt * steps
        solver = ExponentialSolver(network, _perturbed_start(network))
        lower, upper = solver.span_envelope(power, span)
        assert np.all(lower <= solver.temperatures + 1e-9)
        assert np.all(upper >= solver.temperatures - 1e-9)
        for _ in range(steps):
            temps = solver.step(power, dt)
            assert np.all(temps >= lower - 1e-9)
            assert np.all(temps <= upper + 1e-9)

    def test_short_span_bounds_are_tight(self, network, power):
        # Over a span much shorter than every time constant the
        # trajectory barely moves, so the envelope must hug the current
        # state instead of stretching to the distant asymptote (the
        # property that lets fast-forward engage at all: the heat sink
        # sits kelvins from its asymptote on a seconds time scale).
        solver = ExponentialSolver(network, _perturbed_start(network))
        lower, upper = solver.span_envelope(power, 1e-9)
        assert np.all(upper - lower < 1e-3)

    def test_envelope_validates_inputs(self, network, power):
        solver = ExponentialSolver(network, _perturbed_start(network))
        with pytest.raises(ThermalModelError):
            solver.span_envelope(power, 0.0)
        with pytest.raises(ThermalModelError):
            solver.span_envelope(np.zeros(2), 1e-6)


class TestLockstepStepping:
    @pytest.mark.parametrize(
        "stepper", [STEPPER_EXPONENTIAL, STEPPER_BACKWARD_EULER]
    )
    def test_matches_individual_steps(self, network, stepper):
        dt = 3.3e-6
        starts = [
            _perturbed_start(network),
            np.full(network.size, network.ambient_c + 5.0),
            np.full(network.size, network.ambient_c),
        ]
        powers = [
            network.power_vector({"a": 4.0, "b": 1.0}),
            network.power_vector({"a": 0.0, "b": 6.0}),
            network.power_vector({"a": 2.0, "b": 2.0}),
        ]
        batched = [make_transient_solver(network, s, stepper) for s in starts]
        serial = [make_transient_solver(network, s, stepper) for s in starts]
        for _ in range(5):
            step_lockstep(batched, powers, dt)
            for solver, p in zip(serial, powers):
                solver.step(p, dt)
        for one, many in zip(serial, batched):
            assert np.allclose(
                many.temperatures, one.temperatures, atol=1e-12
            )
            assert many.time_s == pytest.approx(one.time_s)

    def test_returns_state_arrays_in_order(self, network, power):
        solvers = [
            ExponentialSolver(network, _perturbed_start(network))
            for _ in range(2)
        ]
        out = step_lockstep(solvers, [power, power], 1e-6)
        assert out[0] is solvers[0]._temps
        assert out[1] is solvers[1]._temps

    def test_rejects_mixed_classes(self, network, power):
        pair = [
            ExponentialSolver(network, _perturbed_start(network)),
            TransientSolver(network, _perturbed_start(network)),
        ]
        with pytest.raises(ThermalModelError):
            step_lockstep(pair, [power, power], 1e-6)

    def test_rejects_different_networks(self, network, power):
        fp = Floorplan(
            [Block("a", 0, 0, 2e-3, 2e-3), Block("b", 2e-3, 0, 2e-3, 2e-3)]
        )
        other = build_thermal_network(fp, ThermalPackage())
        pair = [
            ExponentialSolver(network, _perturbed_start(network)),
            ExponentialSolver(other, _perturbed_start(other)),
        ]
        with pytest.raises(ThermalModelError):
            step_lockstep(pair, [power, power], 1e-6)

    def test_rejects_bad_dt(self, network, power):
        solvers = [ExponentialSolver(network, _perturbed_start(network))]
        with pytest.raises(ThermalModelError):
            step_lockstep(solvers, [power], 0.0)


class TestOperatorCaches:
    def test_lru_evicts_oldest(self):
        cache = _LruCache(2)
        cache.put(1, "a")
        cache.put(2, "b")
        assert cache.get(1) == "a"  # refresh 1; 2 becomes oldest
        cache.put(3, "c")
        assert cache.get(2) is None
        assert cache.get(1) == "a" and cache.get(3) == "c"
        assert len(cache) == 2

    def test_lru_rejects_zero_size(self):
        with pytest.raises(ThermalModelError):
            _LruCache(0)

    @pytest.mark.parametrize("cls", [TransientSolver, ExponentialSolver])
    def test_per_dt_caches_stay_bounded(self, network, power, cls):
        # Continuous DVS can touch many distinct step lengths; the
        # operator caches must not grow without bound.
        solver = cls(network, _perturbed_start(network))
        for i in range(FACTOR_CACHE_SIZE + 40):
            solver.step(power, 1e-6 + i * 1e-9)
        cache = (
            solver._factor_cache
            if cls is TransientSolver
            else solver._prop_cache
        )
        assert len(cache) <= FACTOR_CACHE_SIZE

    def test_cached_dt_reuse_is_consistent(self, network, power):
        # Revisiting a dt after eviction must rebuild an identical
        # operator: same trajectory as a fresh solver.
        survivor = ExponentialSolver(network, _perturbed_start(network))
        fresh = ExponentialSolver(network, _perturbed_start(network))
        survivor.step(power, 1e-6)
        for i in range(FACTOR_CACHE_SIZE + 8):  # evict the 1e-6 entry
            survivor._propagator(2e-6 + i * 1e-9)
        survivor.step(power, 1e-6)
        fresh.step(power, 1e-6)
        fresh.step(power, 1e-6)
        assert np.allclose(
            survivor.temperatures, fresh.temperatures, atol=1e-12
        )


class TestSteadyStateFactorisationCache:
    def test_factor_computed_once_per_network(self, network):
        first = network._conductance_factor
        second = network._conductance_factor
        assert first is second

    def test_solve_steady_matches_direct_solve(self, network, power):
        rhs = power + network.ambient_conductance * network.ambient_c
        direct = np.linalg.solve(network.conductance, rhs)
        assert np.allclose(network.solve_steady(rhs), direct, atol=1e-9)

    def test_conductance_inverse_consistent_with_factor(self, network):
        identity = network.conductance @ network.conductance_inverse
        assert np.allclose(identity, np.eye(network.size), atol=1e-9)


class TestFactory:
    def test_builds_requested_stepper(self, network):
        start = _perturbed_start(network)
        assert isinstance(
            make_transient_solver(network, start), ExponentialSolver
        )
        assert isinstance(
            make_transient_solver(network, start, STEPPER_EXPONENTIAL),
            ExponentialSolver,
        )
        assert isinstance(
            make_transient_solver(network, start, STEPPER_BACKWARD_EULER),
            TransientSolver,
        )

    def test_rejects_unknown_stepper(self, network):
        with pytest.raises(ThermalModelError):
            make_transient_solver(network, _perturbed_start(network), "rk4")
