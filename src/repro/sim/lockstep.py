"""Lockstep batched execution of many simulation runs in one process.

The process-pool path in :mod:`repro.sim.batch` parallelises *across*
runs; this module instead advances many runs *together* in a single
process.  Every run is the engine's :meth:`~repro.sim.engine.
SimulationEngine.iter_run` generator, which suspends at each thermal
step and asks the driver to advance its solver.  The
:class:`LockstepEngine` collects the pending requests of all live runs
and yields them as one *round* (a mapping of index -> request); the
contract driver (:func:`~repro.sim.contract.service_round`) groups the
compatible ones (same stepper class, same shared network, same dt) and
services each group with one batched BLAS-3 operation via
:func:`~repro.thermal.solver.step_lockstep`; fast-forward jumps, odd
time steps and the last survivors of a draining batch are serviced
individually.  Per-run physics is untouched -- sensing, policy, power
and accounting all run inside the generators -- so lockstep results
match :func:`~repro.sim.batch.run_one` to BLAS summation order.

Because runs under DVS change their cycle time independently, grouping
is re-derived every round from the requests actually pending: runs
drift apart in simulated time but still batch whenever their current
step lengths coincide (the common case -- most policies hold the
nominal frequency for long stretches).

Specs with ``raise_on_violation``, and specs that are not single-core
:class:`~repro.sim.batch.RunSpec` instances (e.g. dual-core specs,
whose engines own private thermal networks and cannot share a BLAS-3
group), fall back to the serial runner: an emergency must abort only
its own run, not the whole batch.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from repro.obs import heartbeat as obs_heartbeat
from repro.obs import metrics as obs_metrics
from repro.obs import runctx as obs_runctx
from repro.obs import spill as obs_spill
from repro.sim.contract import SimEngine, drive
from repro.sim.results import RunResult

# Sequence number for chunk record ids within one process.
_CHUNK_SEQ = 0


class LockstepEngine(SimEngine):
    """Advances a batch of specs together under the engine contract.

    :meth:`iter_run` yields *rounds* -- mappings of spec index to the
    ``(solver, power, dt, count)`` request that run is suspended on --
    and expects a mapping of stepped temperature vectors back.  The
    batch's result (a list of :class:`~repro.sim.results.RunResult` in
    spec order) is the generator's return value.

    The engine holds no state between runs beyond the spec list itself
    (per-run engines, solvers and sensor arrays are built fresh inside
    every :meth:`iter_run`), so :meth:`reset` only discards a partially
    driven :meth:`build`/:meth:`step` session.
    """

    def __init__(self, specs):
        self._specs = list(specs)

    @property
    def specs(self) -> list:
        """The batch's specs, in result order."""
        return list(self._specs)

    def reset(self) -> None:
        if self._active is not None:
            self._active.close()
        self._active = None
        self._pending_reply = None

    def run(self, budget=None, initial=None, settle_time_s: float = 0.0):
        """Execute the batch and return results in spec order."""
        return drive(self.iter_run(budget, initial, settle_time_s))

    def iter_run(self, budget=None, initial=None, settle_time_s: float = 0.0):
        """Generator form of :meth:`run`.

        ``budget``/``initial``/``settle_time_s`` are unused: every spec
        carries its own.  They remain in the signature so the lockstep
        engine satisfies the :class:`~repro.sim.contract.SimEngine`
        contract verbatim.
        """
        from repro.sim.batch import (
            _begin_heartbeat,
            _build_policy,
            _default_substrate,
            _resolve_workload,
            run_one,
            steady_state_for,
        )
        from repro.sim.batch import RunSpec
        from repro.sim.engine import SimulationEngine
        from repro.sim.faults import fire_prerun_faults

        specs = self._specs
        results: List[Optional[RunResult]] = [None] * len(specs)
        generators: Dict[int, object] = {}
        pending: Dict[int, tuple] = {}
        # Progress publishers for the interleaved runs.  Each one is
        # registered just before its generator's creation-advance (the
        # engine captures the ambient publisher when its body first
        # runs) and released right after, so concurrent runs each hold
        # their own; finish happens when the run completes or in the
        # finally below on an aborted batch.
        heartbeats: Dict[int, object] = {}

        # One telemetry record per chunk: the interleaved generators
        # share one process, so per-run attribution is impossible here --
        # instead the engines' end-of-run publishes land in this
        # chunk-level run context (runs delegated to run_one below open
        # their own nested context, so their metrics stay per-run and
        # are not double counted).
        obs_on = obs_metrics.enabled()
        if obs_on:
            global _CHUNK_SEQ
            _CHUNK_SEQ += 1
            obs_runctx.begin(
                f"lockstep.p{os.getpid()}.c{_CHUNK_SEQ}",
                benchmark=f"lockstep[{len(specs)}]",
                policy="chunk",
                chunk=True,
                runs=len(specs),
            )
        error: Optional[str] = None
        self._emit("run.start", 0.0, runs=len(specs))

        floorplan, hotspot, power_model = _default_substrate()
        try:
            for index, spec in enumerate(specs):
                if not isinstance(spec, RunSpec) or spec.config.raise_on_violation:
                    # Engines with private thermal networks gain nothing
                    # from BLAS-3 grouping, and raise_on_violation must
                    # abort one run, not the round -- both take the
                    # one-spec path.
                    results[index] = run_one(spec)
                    continue
                fire_prerun_faults(spec.config.fault_plan, spec.seed)
                workload = _resolve_workload(spec)
                initial_vec = spec.initial
                if initial_vec is None:
                    initial_vec = steady_state_for(workload)
                engine = SimulationEngine(
                    workload,
                    policy=_build_policy(spec),
                    floorplan=floorplan,
                    hotspot=hotspot,
                    power_model=power_model,
                    config=spec.config,
                    seed=spec.seed,
                )
                generator = engine.iter_run(
                    spec.instructions,
                    initial=np.array(initial_vec, dtype=float, copy=True),
                    settle_time_s=spec.settle_time_s,
                )
                generators[index] = generator
                publisher = _begin_heartbeat(spec)
                if publisher is not None:
                    heartbeats[index] = publisher
                _advance(index, None, generators, pending, results)
                obs_heartbeat.release(publisher)
                if index not in generators:
                    obs_heartbeat.finish(heartbeats.pop(index, None))

            while pending:
                replies = yield dict(pending)
                for index in sorted(replies):
                    _advance(
                        index, replies[index], generators, pending, results
                    )
                    if index not in generators:
                        obs_heartbeat.finish(heartbeats.pop(index, None))
        except BaseException as exc:
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            # One run failing (or the driver itself raising) must not
            # leak the other runs' suspended generators: close them all
            # so their engines unwind now, not at a garbage collection
            # of unknowable timing.  On clean completion the dict is
            # already empty.
            for generator in generators.values():
                try:
                    generator.close()
                except Exception:  # pragma: no cover - defensive
                    pass
            generators.clear()
            pending.clear()
            for publisher in heartbeats.values():
                obs_heartbeat.finish(publisher, error=error or "aborted")
            heartbeats.clear()
            if obs_on:
                obs_spill.record(obs_runctx.end(error=error))
        self._emit("run.complete", 0.0, runs=len(specs))
        return results


def run_lockstep(specs) -> List[RunResult]:
    """Execute ``specs`` in lockstep and return results in spec order.

    Equivalent to ``[run_one(s) for s in specs]`` up to BLAS summation
    order (see module docstring); the wins are shared per-step overhead
    and matrix-matrix arithmetic across the batch.
    """
    return LockstepEngine(specs).run()


def _advance(
    index: int,
    reply: Optional[np.ndarray],
    generators: Dict[int, object],
    pending: Dict[int, tuple],
    results: List[Optional[RunResult]],
) -> None:
    """Resume one run until its next thermal-step request or completion."""
    try:
        pending[index] = generators[index].send(reply)
    except StopIteration as stop:
        results[index] = stop.value
        pending.pop(index, None)
        del generators[index]
