"""Workload builder."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import WorkloadBuilder


def test_builds_a_runnable_workload():
    workload = (
        WorkloadBuilder("custom", description="test kernel")
        .phase("a", millions=1.0, ipc=1.8)
        .phase("b", millions=2.0, ipc=2.2, fp_intensity=0.4)
        .build()
    )
    assert workload.name == "custom"
    assert workload.total_instructions == 3_000_000
    assert len(workload.phases) == 2


def test_defaults_are_consistent():
    workload = WorkloadBuilder("w").phase("only").build()
    phase = workload.phases[0]
    assert phase.fetch_supply_ipc == pytest.approx(1.55 * phase.base_ipc)
    assert 0.0 < phase.base_activities["Icache"] <= 1.0


def test_frontend_tracks_integer_intensity_by_default():
    low = WorkloadBuilder("w").phase("p", int_intensity=0.2).build()
    high = WorkloadBuilder("w").phase("p", int_intensity=0.9).build()
    assert (
        low.phases[0].base_activities["Icache"]
        < high.phases[0].base_activities["Icache"]
    )


def test_explicit_supply_respected():
    workload = (
        WorkloadBuilder("w").phase("p", ipc=1.0, fetch_supply_ipc=3.0).build()
    )
    assert workload.phases[0].fetch_supply_ipc == 3.0


def test_chaining_returns_builder():
    builder = WorkloadBuilder("w")
    assert builder.phase("p") is builder


def test_rejects_empty_build():
    with pytest.raises(WorkloadError):
        WorkloadBuilder("w").build()


def test_rejects_empty_name():
    with pytest.raises(WorkloadError):
        WorkloadBuilder("")


def test_rejects_non_positive_length():
    with pytest.raises(WorkloadError):
        WorkloadBuilder("w").phase("p", millions=0.0)


def test_invalid_phase_parameters_surface_phase_errors():
    with pytest.raises(WorkloadError):
        WorkloadBuilder("w").phase("p", ipc=0.0)


def test_custom_workload_simulates_end_to_end():
    from repro.dtm import HybPolicy
    from repro.sim import SimulationEngine

    workload = (
        WorkloadBuilder("hotloop")
        .phase("spin", millions=2.0, ipc=2.2, int_intensity=0.8,
               frontend_intensity=0.7, mem_intensity=0.4)
        .build()
    )
    engine = SimulationEngine(workload, policy=HybPolicy())
    run = engine.run(1_000_000, settle_time_s=1e-3)
    assert run.instructions == 1_000_000
    assert run.max_true_temp_c < 100.0
