"""Experiment runners, statistics and table rendering for the paper's
figures and in-text results."""

from repro.analysis.tables import render_table
from repro.analysis.significance import PairedComparison, paired_comparison
from repro.analysis.figure_of_merit import (
    CoolingMerit,
    cooling_figure_of_merit,
    predicted_crossover_gating,
)
from repro.analysis.experiments import (
    fig3a_pihyb_duty_sweep,
    fig3b_fg_vs_dvs,
    fig4_technique_comparison,
    t1_dvs_step_sensitivity,
    t2_voltage_floor,
    t4_benchmark_characterisation,
)

__all__ = [
    "render_table",
    "CoolingMerit",
    "cooling_figure_of_merit",
    "predicted_crossover_gating",
    "PairedComparison",
    "paired_comparison",
    "fig3a_pihyb_duty_sweep",
    "fig3b_fg_vs_dvs",
    "fig4_technique_comparison",
    "t1_dvs_step_sensitivity",
    "t2_voltage_floor",
    "t4_benchmark_characterisation",
]
