"""Fluent builder for custom workloads.

The nine calibrated SPEC stand-ins cover the paper's experiments; this
builder is for everyone else -- stress patterns, corner cases, your own
application's phase profile::

    from repro.workloads import WorkloadBuilder

    workload = (
        WorkloadBuilder("mykernel", description="inner solver loop")
        .phase("assemble", millions=2.0, ipc=1.6, memory_fraction=0.3,
               int_intensity=0.7, mem_intensity=0.7)
        .phase("solve", millions=5.0, ipc=2.1, memory_fraction=0.1,
               int_intensity=0.9, fp_intensity=0.5)
        .build()
    )

Every knob defaults to something reasonable; validation is inherited from
:class:`~repro.workloads.phases.Phase`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import WorkloadError
from repro.workloads.phases import Phase
from repro.workloads.profiles import make_activity_profile
from repro.workloads.workload import Workload

_DEFAULT_SUPPLY_RATIO = 1.55
"""Default fetch supply over IPC: gating up to ~duty 3 is mostly hidden,
matching the calibrated suite."""


class WorkloadBuilder:
    """Accumulates phases and builds a :class:`Workload`."""

    def __init__(self, name: str, description: str = ""):
        if not name:
            raise WorkloadError("workload name must be non-empty")
        self._name = name
        self._description = description
        self._phases: List[Phase] = []

    def phase(
        self,
        name: str,
        millions: float = 3.0,
        ipc: float = 2.0,
        memory_fraction: float = 0.15,
        int_intensity: float = 0.7,
        fp_intensity: float = 0.05,
        mem_intensity: float = 0.5,
        frontend_intensity: Optional[float] = None,
        l2_intensity: float = 0.2,
        speculation_waste: float = 0.2,
        fetch_supply_ipc: Optional[float] = None,
    ) -> "WorkloadBuilder":
        """Append one phase; returns self for chaining.

        Parameters mirror the calibrated suite's knobs: ``millions`` is
        the phase length in millions of instructions, intensities are the
        activity-profile knobs in [0, 1], ``frontend_intensity`` defaults
        to tracking the integer intensity, and ``fetch_supply_ipc``
        defaults to 1.55x IPC (the knee just beyond duty cycle 3).
        """
        if millions <= 0.0:
            raise WorkloadError(f"phase {name!r}: millions must be > 0")
        if frontend_intensity is None:
            frontend_intensity = min(1.0, 0.85 * int_intensity + 0.15)
        if fetch_supply_ipc is None:
            fetch_supply_ipc = _DEFAULT_SUPPLY_RATIO * ipc
        self._phases.append(
            Phase(
                name=name,
                instructions=int(millions * 1e6),
                base_ipc=ipc,
                memory_cpi_fraction=memory_fraction,
                fetch_supply_ipc=fetch_supply_ipc,
                speculation_waste=speculation_waste,
                base_activities=make_activity_profile(
                    int_intensity,
                    fp_intensity,
                    mem_intensity,
                    frontend_intensity,
                    l2_intensity,
                ),
            )
        )
        return self

    def build(self) -> Workload:
        """Finalise the workload (at least one phase required)."""
        if not self._phases:
            raise WorkloadError(
                f"workload {self._name!r} needs at least one phase"
            )
        return Workload(self._name, self._phases, self._description)
