"""Regression pack for the broad-``except`` audit.

Three sites used to swallow ``Exception`` blindly, each with a
different failure mode:

* ``batch._first_unpicklable`` reclassified *any* error raised while
  probing a spec -- including a bug in a ``__reduce__`` hook -- as
  "unpicklable, run serially";
* ``supervisor.load_journal`` treated *any* error during journal
  replay -- including a bug in result reconstruction -- as a torn
  line, silently emptying the resume set;
* ``supervisor.run_lockstep_pool`` degraded the whole sweep to
  per-spec execution without logging, counting or emitting anything.

The first two are now narrowed to the exceptions malformed data can
actually raise; the third keeps its broad catch (degrading is the
right call) but is instrumented.  These tests pin each behaviour.
"""

import json
import logging

import pytest

from repro.multicore import MultiCoreEngine, MultiCoreResult
from repro.sim import RunSpec, load_journal, run_many
from repro.sim.batch import _first_unpicklable
from repro.sim.results import RunResult
from repro.sim.supervisor import SweepJournal
from repro.workloads import build_benchmark

FAST_N = 1_500_000

RESULT_FIELDS = (
    "benchmark",
    "policy",
    "instructions",
    "elapsed_s",
    "violations",
    "max_true_temp_c",
    "mean_power_w",
)


def _spec(seed=0):
    return RunSpec(
        workload="gzip",
        policy="FG",
        instructions=FAST_N,
        settle_time_s=1.0e-4,
        seed=seed,
    )


def _as_tuple(result):
    return tuple(getattr(result, field) for field in RESULT_FIELDS)


class TestFirstUnpicklable:
    def test_reports_first_unpicklable_index(self):
        local = lambda: None  # noqa: E731 - deliberately unpicklable
        assert _first_unpicklable([_spec(), local]) == 1
        assert _first_unpicklable([_spec(), _spec(seed=1)]) is None

    def test_buggy_reduce_propagates(self):
        # A spec whose __reduce__ raises is a real defect, not an
        # unpicklable value; it must surface, not silently force the
        # whole sweep onto the serial path.
        class ExplodingReduce:
            def __reduce__(self):
                raise RuntimeError("boom in __reduce__")

        with pytest.raises(RuntimeError, match="boom in __reduce__"):
            _first_unpicklable([_spec(), ExplodingReduce()])


class TestLoadJournal:
    def test_multicore_entries_rebuild_the_right_class(self, tmp_path):
        pair = [build_benchmark("crafty"), build_benchmark("mesa")]
        result = MultiCoreEngine(pair).run(0.3e-3)
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path)
        journal.record("mc-digest", 0, result)
        journal.close()
        entry = json.loads(path.read_text().splitlines()[0])
        assert entry["kind"] == "multicore"
        loaded = load_journal(path)
        assert set(loaded) == {"mc-digest"}
        restored = loaded["mc-digest"]
        assert isinstance(restored, MultiCoreResult)
        assert restored.to_json_dict() == result.to_json_dict()

    def test_malformed_payload_is_still_skipped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text(
            json.dumps({"digest": "x", "index": 0, "result": {"nope": 1}})
            + "\n"
        )
        assert load_journal(path) == {}

    def test_reconstruction_bug_propagates(self, tmp_path, monkeypatch):
        # The journal line is perfectly well-formed; the failure is a
        # bug in the reconstructor.  That must not be mistaken for a
        # torn line (which would silently re-run every completed spec).
        path = tmp_path / "sweep.jsonl"
        path.write_text(
            json.dumps({"digest": "d", "index": 0, "result": {}}) + "\n"
        )

        def boom(cls, payload):
            raise RuntimeError("reconstruction bug")

        monkeypatch.setattr(
            RunResult, "from_json_dict", classmethod(boom)
        )
        with pytest.raises(RuntimeError, match="reconstruction bug"):
            load_journal(path)


class TestLockstepPoolDegradation:
    def test_keyboard_interrupt_propagates(self, monkeypatch):
        import repro.sim.batch as batch

        def interrupted(processes):
            raise KeyboardInterrupt

        monkeypatch.setattr(batch, "_get_pool", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_many(
                [_spec(), _spec(seed=1)],
                processes=2,
                lockstep=True,
                timeout_s=60.0,
            )

    def test_pool_construction_failure_degrades_loudly(
        self, monkeypatch, caplog
    ):
        # An ordinary pool-construction failure degrades the sweep to
        # supervised per-spec execution -- with a warning and a
        # telemetry count, never silently.
        import repro.sim.batch as batch

        real_get_pool = batch._get_pool
        armed = {"flag": True}

        def flaky_get_pool(processes):
            if armed["flag"]:
                armed["flag"] = False
                raise RuntimeError("no pool for you")
            return real_get_pool(processes)

        monkeypatch.setattr(batch, "_get_pool", flaky_get_pool)
        specs = [_spec(), _spec(seed=1)]
        with caplog.at_level(logging.WARNING, logger="repro.sweep"):
            healed = run_many(
                specs, processes=2, lockstep=True, timeout_s=60.0
            )
        # Degradation lands on supervised per-spec execution, so the
        # bit-identity reference is the per-run path, not the lockstep
        # sweep default.
        reference = run_many([_spec(), _spec(seed=1)], lockstep=False)
        assert [_as_tuple(r) for r in healed] == [
            _as_tuple(r) for r in reference
        ]
        assert any(
            "lockstep pool construction failed" in record.message
            for record in caplog.records
        )
