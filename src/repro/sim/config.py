"""Engine configuration."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.sim.faults import FaultPlan

DVS_MODE_STALL = "stall"
DVS_MODE_IDEAL = "ideal"

POWER_PATH_VECTOR = "vector"
POWER_PATH_MAPPING = "mapping"

THERMAL_STEPPER_BE = "be"
THERMAL_STEPPER_EXPM = "expm"

COMPILED_TRACE_ON = "on"
COMPILED_TRACE_OFF = "off"
COMPILED_TRACE_VERIFY = "verify"

COMPILED_TRACE_ENV = "REPRO_COMPILED_TRACE"
"""Environment default for :attr:`EngineConfig.compiled_trace`:
``1``/``on`` (default), ``0``/``off``, or ``verify``."""

_COMPILED_ALIASES = {
    "1": COMPILED_TRACE_ON,
    "on": COMPILED_TRACE_ON,
    "true": COMPILED_TRACE_ON,
    "0": COMPILED_TRACE_OFF,
    "off": COMPILED_TRACE_OFF,
    "false": COMPILED_TRACE_OFF,
    "verify": COMPILED_TRACE_VERIFY,
}

STEP_KERNEL_OFF = "off"
STEP_KERNEL_NUMPY = "numpy"
STEP_KERNEL_NUMBA = "numba"
STEP_KERNEL_AUTO = "auto"

STEP_KERNEL_MODES = (
    STEP_KERNEL_OFF,
    STEP_KERNEL_NUMPY,
    STEP_KERNEL_NUMBA,
    STEP_KERNEL_AUTO,
)

STEP_KERNEL_ENV = "REPRO_STEP_KERNEL"
"""Environment default for :attr:`EngineConfig.step_kernel`:
``auto`` (default), ``numpy``, ``numba``, or ``off``."""


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the coupled simulation.

    Parameters
    ----------
    thermal_step_cycles:
        Cycles per thermal step; the paper uses 10 000, keeping sampling
        error below 0.1 % with under 1 % simulation overhead.
    dvs_switch_time_s:
        Time to change the DVS setting (10 us in the paper).
    dvs_mode:
        ``"stall"`` -- the pipeline stalls for the switch time;
        ``"ideal"`` -- execution continues but the new setting takes
        effect only after the switch time has elapsed.
    raise_on_violation:
        Raise :class:`~repro.errors.ThermalViolationError` the moment any
        block exceeds the emergency threshold (useful while calibrating a
        technique that must be violation-free).
    record_trace:
        Keep a per-step time series of hottest-block temperature and
        actuation (costs memory; for plotting/examples).
    migration_time_s:
        Pipeline-flush stall charged whenever an activity-migration
        policy moves work between copies (2 us: drain plus a register
        transfer burst).
    power_path:
        ``"vector"`` (default) -- the array-native power/thermal hot
        path; ``"mapping"`` -- the per-block scalar path retained as a
        numerical regression reference (identical physics, ~5x slower).
    max_no_progress_steps:
        Consecutive thermal steps allowed to commit zero instructions
        (e.g. under a fully clock-gated policy) before the engine raises
        :class:`~repro.errors.SimulationError` instead of spinning
        forever.
    thermal_stepper:
        ``"expm"`` (default) -- the exact exponential-propagator stepper
        (:class:`~repro.thermal.solver.ExponentialSolver`): one matvec
        pair per step, no time-discretisation error, and eligible for
        constant-power fast-forward.  ``"be"`` -- backward Euler, kept
        as the time-discretised regression anchor.
    fast_forward:
        Allow the engine to jump spans of steps between DTM decision
        points in closed form via ``A_d^K`` (event-driven stepping).
        The dynamic power is constant over such a span by construction
        (same phase, actuation and voltage until the next sensor
        sample); leakage drift within the span is closed by a widened
        span envelope (see ``stride_drift_tol_w``).  Only effective
        with the ``"expm"`` stepper; every jump is first proven safe
        against the trigger/emergency thresholds (see docs/MODELING.md
        section 8), otherwise the engine falls back to dense stepping.
    fast_forward_power_tol_w:
        Retained for compatibility.  The historical fast-forward gate
        required step-to-step power stability below this tolerance; the
        event-driven stride replaced that heuristic with a rigorous
        leakage-drift closure governed by ``stride_drift_tol_w``, so
        this knob no longer affects the engine.
    fault_plan:
        Deterministic faults to inject into matching runs (worker
        crashes, delays, solver corruption, sensor degradation; see
        :mod:`repro.sim.faults`).  ``None`` (default) runs clean.
    compiled_trace:
        ``"on"`` -- lower the workload's phase schedule to contiguous
        arrays once per run and drive the hot loop from them
        (:mod:`repro.workloads.compiler`); ``"off"`` -- the interpreted
        per-step path, kept as the numerical reference; ``"verify"`` --
        compiled, but every fast-path activity vector is re-derived
        through the interpreted model and compared bit for bit.
        ``None`` (default) defers to the ``REPRO_COMPILED_TRACE``
        environment variable (default ``on``).  The compiled path is
        bit-identical to the interpreted one by construction; see
        docs/MODELING.md section 7.
    step_kernel:
        Backend that executes a dense span of thermal steps as one fused
        call instead of one engine round-trip per step.  ``"numpy"`` --
        a tight Python loop over pre-bound solver/power/accounting
        callables, bit-identical to per-step dispatch (it runs the same
        float operations in the same order; see docs/MODELING.md
        section 8).  ``"numba"`` -- reserved for a JIT-compiled kernel;
        raises a clear error when numba is not installed.  ``"auto"`` --
        numba when available, else numpy.  ``"off"`` -- the per-step
        anchor path: the engine yields every step through the
        :mod:`repro.sim.contract` surface individually.  ``None``
        (default) defers to the ``REPRO_STEP_KERNEL`` environment
        variable (default ``auto``).
    stride_drift_tol_w:
        Per-block power drift (watts) each event-driven stride segment
        may absorb before the stride is split into more segments (or
        abandoned for dense stepping).  Drift within a segment is closed
        rigorously -- the envelope is widened by the worst-case
        steady-state response ``L^-1 dP`` and re-verified a posteriori
        -- so this knob trades stride length against envelope slack, not
        correctness.
    """

    thermal_step_cycles: int = 10_000
    dvs_switch_time_s: float = 10.0e-6
    dvs_mode: str = DVS_MODE_STALL
    raise_on_violation: bool = False
    record_trace: bool = False
    migration_time_s: float = 2.0e-6
    power_path: str = POWER_PATH_VECTOR
    max_no_progress_steps: int = 10_000
    thermal_stepper: str = THERMAL_STEPPER_EXPM
    fast_forward: bool = True
    fast_forward_power_tol_w: float = 1.0e-3
    fault_plan: Optional[FaultPlan] = None
    compiled_trace: Optional[str] = None
    step_kernel: Optional[str] = None
    stride_drift_tol_w: float = 1.0e-3

    def resolved_step_kernel(self) -> str:
        """The effective step-kernel mode: the explicit field if set,
        else the ``REPRO_STEP_KERNEL`` environment variable, else
        ``"auto"``."""
        if self.step_kernel is not None:
            return self.step_kernel
        raw = os.environ.get(STEP_KERNEL_ENV, STEP_KERNEL_AUTO)
        mode = raw.strip().lower()
        if mode not in STEP_KERNEL_MODES:
            raise SimulationError(
                f"{STEP_KERNEL_ENV} must be one of "
                f"{'/'.join(STEP_KERNEL_MODES)}, got {raw!r}"
            )
        return mode

    def resolved_compiled_trace(self) -> str:
        """The effective compiled-trace mode: the explicit field if set,
        else the ``REPRO_COMPILED_TRACE`` environment variable, else
        ``"on"``."""
        if self.compiled_trace is not None:
            return self.compiled_trace
        raw = os.environ.get(COMPILED_TRACE_ENV, COMPILED_TRACE_ON)
        mode = _COMPILED_ALIASES.get(raw.strip().lower())
        if mode is None:
            raise SimulationError(
                f"{COMPILED_TRACE_ENV} must be one of "
                f"on/off/verify (or 1/0), got {raw!r}"
            )
        return mode

    def __post_init__(self) -> None:
        if self.thermal_step_cycles < 100:
            raise SimulationError("thermal step must be at least 100 cycles")
        if self.dvs_switch_time_s < 0.0:
            raise SimulationError("DVS switch time must be >= 0")
        if self.dvs_mode not in (DVS_MODE_STALL, DVS_MODE_IDEAL):
            raise SimulationError(
                f"dvs_mode must be 'stall' or 'ideal', got {self.dvs_mode!r}"
            )
        if self.migration_time_s < 0.0:
            raise SimulationError("migration time must be >= 0")
        if self.power_path not in (POWER_PATH_VECTOR, POWER_PATH_MAPPING):
            raise SimulationError(
                f"power_path must be 'vector' or 'mapping', "
                f"got {self.power_path!r}"
            )
        if self.max_no_progress_steps < 1:
            raise SimulationError("no-progress step budget must be >= 1")
        if self.thermal_stepper not in (THERMAL_STEPPER_BE, THERMAL_STEPPER_EXPM):
            raise SimulationError(
                f"thermal_stepper must be 'be' or 'expm', "
                f"got {self.thermal_stepper!r}"
            )
        if self.fast_forward_power_tol_w < 0.0:
            raise SimulationError("fast-forward power tolerance must be >= 0")
        if self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            raise SimulationError(
                f"fault_plan must be a FaultPlan, got {self.fault_plan!r}"
            )
        if self.compiled_trace is not None and self.compiled_trace not in (
            COMPILED_TRACE_ON,
            COMPILED_TRACE_OFF,
            COMPILED_TRACE_VERIFY,
        ):
            raise SimulationError(
                f"compiled_trace must be 'on', 'off', 'verify' or None, "
                f"got {self.compiled_trace!r}"
            )
        if self.step_kernel is not None and self.step_kernel not in (
            STEP_KERNEL_MODES
        ):
            raise SimulationError(
                f"step_kernel must be one of "
                f"{'/'.join(STEP_KERNEL_MODES)} or None, "
                f"got {self.step_kernel!r}"
            )
        if self.stride_drift_tol_w < 0.0:
            raise SimulationError("stride drift tolerance must be >= 0")
