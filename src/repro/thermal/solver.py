"""Steady-state and transient solvers for thermal RC networks.

The governing equation (temperatures in Celsius, ambient folded into the
source term) is::

    C dT/dt = P + g_amb * T_amb - L T

Steady state is one linear solve.  Transients use backward Euler::

    (C/dt + L) T_{k+1} = (C/dt) T_k + P + g_amb * T_amb

which is unconditionally stable, so DTM experiments can take one step per
10 000-cycle power sample regardless of the fastest RC product in the
network.  The step matrix is LU-factorised once per distinct dt and cached,
because DVS changes the cycle time and therefore the step length.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.errors import ThermalModelError
from repro.thermal.rc_model import ThermalNetwork


def _ambient_source(network: ThermalNetwork) -> np.ndarray:
    return network.ambient_conductance * network.ambient_c


def steady_state(network: ThermalNetwork, power: np.ndarray) -> np.ndarray:
    """Solve ``L T = P + g_amb * T_amb`` for the steady temperatures.

    Parameters
    ----------
    network:
        The assembled RC network.
    power:
        (n,) injected power vector (see
        :meth:`~repro.thermal.rc_model.ThermalNetwork.power_vector`).

    Returns
    -------
    numpy.ndarray
        (n,) temperatures in Celsius.
    """
    if power.shape != (network.size,):
        raise ThermalModelError(
            f"power vector has shape {power.shape}, expected ({network.size},)"
        )
    rhs = power + _ambient_source(network)
    try:
        return np.linalg.solve(network.conductance, rhs)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise ThermalModelError(f"steady-state solve failed: {exc}") from exc


class TransientSolver:
    """Backward-Euler integrator over a thermal RC network.

    The solver owns the current temperature vector; callers advance it with
    :meth:`step` once per power sample.  Factorisations of ``C/dt + L`` are
    cached per dt (rounded to femtosecond granularity) since a DTM run uses
    only a handful of distinct frequencies.
    """

    def __init__(self, network: ThermalNetwork, initial: np.ndarray):
        if initial.shape != (network.size,):
            raise ThermalModelError(
                f"initial temperatures have shape {initial.shape}, "
                f"expected ({network.size},)"
            )
        self._network = network
        self._temps = np.array(initial, dtype=float, copy=True)
        self._ambient_source = _ambient_source(network)
        self._factor_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._time_s = 0.0

    @property
    def network(self) -> ThermalNetwork:
        """The underlying RC network."""
        return self._network

    @property
    def temperatures(self) -> np.ndarray:
        """Current node temperatures in Celsius (copy)."""
        return self._temps.copy()

    @property
    def time_s(self) -> float:
        """Simulated time elapsed since construction, in seconds."""
        return self._time_s

    def _factorisation(self, dt: float):
        key = int(round(dt * 1e15))
        cached = self._factor_cache.get(key)
        if cached is None:
            matrix = (
                np.diag(self._network.capacitance / dt) + self._network.conductance
            )
            cached = lu_factor(matrix)
            self._factor_cache[key] = cached
        return cached

    def step(self, power: np.ndarray, dt: float) -> np.ndarray:
        """Advance the network by ``dt`` seconds with constant injected
        ``power`` over the step.  Returns the new temperature vector (a
        copy)."""
        if dt <= 0.0:
            raise ThermalModelError(f"time step must be > 0, got {dt}")
        if power.shape != (self._network.size,):
            raise ThermalModelError(
                f"power vector has shape {power.shape}, "
                f"expected ({self._network.size},)"
            )
        rhs = (
            (self._network.capacitance / dt) * self._temps
            + power
            + self._ambient_source
        )
        self._temps = lu_solve(self._factorisation(dt), rhs)
        self._time_s += dt
        return self._temps.copy()

    def reset(self, temperatures: np.ndarray) -> None:
        """Overwrite the state with ``temperatures`` and zero the clock."""
        if temperatures.shape != (self._network.size,):
            raise ThermalModelError(
                f"temperatures have shape {temperatures.shape}, "
                f"expected ({self._network.size},)"
            )
        self._temps = np.array(temperatures, dtype=float, copy=True)
        self._time_s = 0.0
