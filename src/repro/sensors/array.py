"""The per-block sensor array and its 10 kHz sampler."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.errors import SensorFaultError, SimulationError
from repro.floorplan.floorplan import Floorplan
from repro.sensors.faults import SensorFault
from repro.sensors.sensor import SensorParameters, ThermalSensor
from repro.units import KHZ


class SensorArray:
    """One :class:`ThermalSensor` in the middle of each floorplan block.

    ``sampling_rate_hz`` limits how often the DTM controller can obtain
    fresh readings (10 kHz in the paper -- "aggressive but reasonable").
    The array tracks the time of the last sample; :meth:`due` tells the
    simulation engine when the next sample may be taken.

    ``faults`` attaches one :class:`~repro.sensors.faults.SensorFault`
    per named block (stuck-at, dropout, extra offset; see
    :mod:`repro.sensors.faults`).  Dropped-out sensors are skipped when
    sampling -- the controller keeps operating on the survivors -- but
    an array with *no* live sensor raises
    :class:`~repro.errors.SensorFaultError` instead of returning an
    empty (and silently violation-free) sample.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        parameters: Optional[SensorParameters] = None,
        sampling_rate_hz: float = 10.0 * KHZ,
        seed: int = 0,
        faults: Optional[Sequence[SensorFault]] = None,
    ):
        if sampling_rate_hz <= 0.0:
            raise SimulationError("sampling rate must be > 0")
        self._params = parameters if parameters is not None else SensorParameters()
        self._period_s = 1.0 / sampling_rate_hz
        by_block: Dict[str, SensorFault] = {}
        for fault in faults or ():
            if fault.block not in floorplan.block_names:
                raise SimulationError(
                    f"sensor fault names unknown block {fault.block!r}"
                )
            if fault.block in by_block:
                raise SimulationError(
                    f"block {fault.block!r} has more than one sensor fault"
                )
            by_block[fault.block] = fault
        self._sensors: Dict[str, ThermalSensor] = {
            name: ThermalSensor(
                self._params,
                seed=seed * 1009 + index,
                fault=by_block.get(name),
            )
            for index, name in enumerate(floorplan.block_names)
        }
        self._last_sample_s = -self._period_s  # first sample due at t = 0

    @property
    def parameters(self) -> SensorParameters:
        """Shared sensor error model."""
        return self._params

    @property
    def sampling_period_s(self) -> float:
        """Time between samples in seconds."""
        return self._period_s

    @property
    def block_names(self) -> tuple:
        """Blocks covered by the array."""
        return tuple(self._sensors)

    def offset_of(self, block: str) -> float:
        """Fixed offset of one block's sensor."""
        try:
            return self._sensors[block].offset_c
        except KeyError:
            raise SimulationError(f"no sensor on block {block!r}") from None

    @property
    def next_due_s(self) -> float:
        """Earliest simulation time at which the next sample is due.

        The engine's constant-power fast-forward clips its jumps to this
        boundary so the policy sees exactly the sample times (and the
        sensors draw exactly the noise sequence) of explicit stepping.
        """
        return self._last_sample_s + self._period_s

    def due(self, time_s: float) -> bool:
        """True when a new sample may be taken at simulation time
        ``time_s`` (at least one sampling period since the last)."""
        return time_s - self._last_sample_s >= self._period_s - 1e-12

    def sample(
        self, true_temps_c: Mapping[str, float], time_s: float
    ) -> Dict[str, float]:
        """Read every sensor once, marking ``time_s`` as the sample time.

        The engine should call this only when :meth:`due` is true; calling
        early raises, which catches controllers that assume a faster
        sampling rate than the hardware provides.
        """
        if not self.due(time_s):
            raise SimulationError(
                f"sensor sample at t={time_s * 1e6:.1f} us violates the "
                f"{self._period_s * 1e6:.0f} us sampling period"
            )
        self._last_sample_s = time_s
        readings: Dict[str, float] = {}
        for name, sensor in self._sensors.items():
            if not sensor.alive:
                continue
            if name not in true_temps_c:
                raise SimulationError(f"no true temperature for block {name!r}")
            readings[name] = sensor.read(true_temps_c[name])
        if not readings:
            raise SensorFaultError(
                "every sensor in the array has dropped out; the DTM "
                "controller has no thermal observability"
            )
        return readings

    @staticmethod
    def max_reading(readings: Mapping[str, float]) -> float:
        """The hottest observed temperature across the array."""
        if not readings:
            raise SimulationError("empty sensor readings")
        return max(readings.values())
