"""The sweep service: a crash-tolerant asyncio job server.

``python -m repro serve`` wraps the existing hard parts of the batch
layer -- spec digests, the JSONL journal with resume, the
fault-tolerant supervisor -- in a long-running server that many
clients can hammer concurrently:

* **dedup by content**: every spec is identified by
  :func:`~repro.sim.supervisor.spec_digest`; an identical spec is
  answered from the content-addressed :class:`ResultCache` without
  recomputation, across clients and across server restarts;
* **bounded admission**: the queue holds at most ``max_queue`` jobs;
  a submission that would overflow it is refused with an explicit
  ``busy`` reply (load shedding) rather than accepted into unbounded
  memory;
* **fair scheduling**: queued jobs are drained round-robin across
  clients, so one client dumping a thousand specs cannot starve
  another's single run;
* **supervised execution**: each job runs through
  :func:`~repro.sim.batch.run_many`, so retries, timeouts, pool
  rebuild and serial degradation all compose unchanged, and every
  completed run is journalled before it is announced;
* **graceful drain**: SIGTERM stops admission, lets the in-flight run
  finish, flushes the journal, then exits 0; queued-but-unstarted jobs
  are refused back to their waiters;
* **crash recovery**: SIGKILL loses nothing that was journalled -- on
  restart the journal backfills the cache and only unfinished specs
  re-execute when resubmitted.

The failure matrix (who can misbehave, what happens) is documented in
docs/SERVICE.md and pinned by ``tests/service/``.
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs import events as obs_events
from repro.obs import export as obs_export
from repro.obs import flightrec as obs_flightrec
from repro.obs import heartbeat as obs_heartbeat
from repro.obs import metrics as obs_metrics
from repro.obs.httpd import ObsHttpd
from repro.service import protocol
from repro.service.cache import ResultCache
from repro.sim.supervisor import RunFailure, spec_digest

DEFAULT_MAX_QUEUE = 256
"""Default bound on the admission queue, across all clients."""


@dataclass
class ServiceConfig:
    """Everything one server instance needs, by value.

    Exactly one of ``socket_path`` (Unix domain socket) or
    ``host``/``port`` (TCP; port 0 binds an ephemeral port) selects the
    listener.  The supervisor knobs (``retries``/``backoff_s``/
    ``backoff_max_s``/``timeout_s``/``processes``) are passed through
    to :func:`~repro.sim.batch.run_many` for every job.  ``runner`` is
    a test seam: a callable ``spec -> outcome`` replacing the default
    supervised execution.
    """

    cache_dir: str
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    max_queue: int = DEFAULT_MAX_QUEUE
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    processes: Optional[int] = None
    retries: int = 0
    backoff_s: float = 0.1
    backoff_max_s: float = 30.0
    timeout_s: Optional[float] = None
    runner: Optional[Callable] = None
    # ``HOST:PORT`` mounting the read-only HTTP facade (port 0 binds
    # ephemeral); None leaves it off.
    http: Optional[str] = None
    # Cadence of the monitor loop: gauge refresh + progress frames to
    # watching clients.
    progress_interval_s: float = 0.5

    def __post_init__(self) -> None:
        if self.max_queue <= 0:
            raise SimulationError("max_queue must be > 0")
        if self.max_frame_bytes <= 0:
            raise SimulationError("max_frame_bytes must be > 0")
        if self.progress_interval_s <= 0.0:
            raise SimulationError("progress_interval_s must be > 0")
        if self.http is not None:
            _parse_hostport(self.http)  # fail at config time, not serve


def _parse_hostport(value: str) -> Tuple[str, int]:
    host, sep, port = str(value).rpartition(":")
    if not sep or not host:
        raise SimulationError(
            f"--http wants HOST:PORT, got {value!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise SimulationError(
            f"--http wants a numeric port, got {value!r}"
        ) from None


@dataclass
class _Job:
    """One admitted spec awaiting (or undergoing) execution."""

    digest: str
    spec: object
    owner: int  # client id whose round-robin queue holds it
    waiters: List[Tuple["_Connection", int]] = field(default_factory=list)
    state: str = "queued"  # queued -> running -> done
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None


class _Connection:
    """One client connection with a serialised outbound frame stream."""

    def __init__(self, cid: int, writer: asyncio.StreamWriter):
        self.id = cid
        self.writer = writer
        self.open = True
        self.watching = False  # subscribed to streamed progress frames
        self._send_lock = asyncio.Lock()

    async def send(self, obj: Dict[str, object]) -> None:
        """Send one frame; a dead peer marks the connection closed
        instead of raising into the caller (job completion must never
        die because one waiter vanished)."""
        if not self.open:
            return
        try:
            async with self._send_lock:
                await protocol.write_frame(self.writer, obj)
        except (ConnectionError, OSError, RuntimeError):
            self.open = False


class SweepService:
    """The server.  One instance, one listener, one executor lane.

    Jobs execute strictly one at a time (the engine itself may fan out
    over a process pool per ``processes``); admission, scheduling and
    result fan-out all live on the event loop, so a misbehaving client
    can be failed individually without touching anyone else.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        root = Path(config.cache_dir)
        self.cache = ResultCache(root / "results")
        self.journal_path = root / "journal.jsonl"
        self.ready = threading.Event()
        self.address: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Dict[int, _Connection] = {}
        self._handler_tasks: set = set()
        self._next_client_id = 0
        # Scheduling state: per-client FIFO queues drained round-robin.
        self._queues: "OrderedDict[int, Deque[_Job]]" = OrderedDict()
        self._rr: Deque[int] = deque()
        self._jobs: Dict[str, _Job] = {}
        self._queued_total = 0
        self._running: Optional[_Job] = None
        self._wake = asyncio.Event()
        self._draining = False
        self._drain_began: Optional[float] = None
        self.drain_seconds: Optional[float] = None
        self._started = time.monotonic()
        # Recently finished jobs (state/error/timing) so late status
        # queries and /jobs still resolve after the result frame went
        # out; bounded like the heartbeat done-table.
        self._finished: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._finished_limit = 128
        # The mounted HTTP facade (None unless config.http is set).
        self._httpd: Optional[ObsHttpd] = None
        self.http_address: Optional[str] = None
        self._monitor_task: Optional[asyncio.Task] = None
        # Robustness counters, maintained unconditionally so STATUS
        # works with observability off; mirrored into repro.obs when on.
        self.jobs_done = 0
        self.jobs_failed = 0
        self.shed = 0
        self.cancelled = 0
        self.dedup_joins = 0
        self.protocol_errors = 0

    # --- counters -----------------------------------------------------------

    def _count(self, name: str) -> None:
        obs_metrics.inc(f"service.{name}")

    def _event(self, name: str, **fields) -> None:
        """Emit a structured event, or -- with obs off -- note it into
        the flight recorder directly.  ``emit`` mirrors its record into
        the ring itself when enabled, so exactly one ring entry lands
        either way; service state transitions are precisely what a
        post-mortem of a wedged server needs."""
        if obs_events.emit(name, **fields) is None:
            obs_flightrec.note(name, **fields)

    def refresh_gauges(self) -> None:
        """Publish the service gauges from current state.

        Unconditional (not gated on the obs flag) and called both on
        state transitions and from the monitor loop, so a ``/metrics``
        scrape between jobs sees live queue depth, in-flight count and
        cache hit-rate rather than values frozen at the last
        transition.  Cold path: a handful of dict operations every
        ``progress_interval_s``."""
        registry = obs_metrics.REGISTRY
        registry.gauge(
            "service.queue_depth",
            help="jobs admitted but not yet running",
        ).set(float(self._queued_total))
        registry.gauge(
            "service.inflight_jobs",
            help="jobs currently executing (0 or 1: one executor lane)",
        ).set(1.0 if self._running is not None else 0.0)
        stats = self.cache.stats()
        lookups = stats["hits"] + stats["misses"]
        registry.gauge(
            "service.cache_hit_rate",
            help="cache hits / lookups since start (0 before any lookup)",
        ).set(stats["hits"] / lookups if lookups else 0.0)
        registry.gauge(
            "service.clients",
            help="currently connected clients",
        ).set(float(len(self._connections)))
        registry.gauge(
            "service.draining",
            help="1 while a graceful drain is in progress",
        ).set(1.0 if self._draining else 0.0)

    # --- lifecycle ----------------------------------------------------------

    async def run(self) -> int:
        """Serve until drained; returns the process exit code (0)."""
        self._loop = asyncio.get_running_loop()
        Path(self.config.cache_dir).mkdir(parents=True, exist_ok=True)
        recovered = self.cache.absorb_journal(self.journal_path)
        # Live progress is the whole point of running behind a service:
        # enable per-run heartbeats unless the operator explicitly said
        # no.  Restored on exit so an embedding process (tests, a
        # notebook) is left as it was found.
        if os.environ.get(obs_heartbeat.HEARTBEAT_ENV) is None:
            heartbeat_prev = obs_heartbeat.set_enabled(True)
        else:
            heartbeat_prev = obs_heartbeat.enabled()
        if self.config.socket_path:
            self._server = await self._listen_unix(self.config.socket_path)
            self.address = f"unix:{self.config.socket_path}"
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.config.host,
                port=self.config.port,
            )
            bound = self._server.sockets[0].getsockname()
            self.address = f"{bound[0]}:{bound[1]}"
        self._event(
            "service.start",
            address=self.address,
            cache_entries=len(self.cache),
            recovered_from_journal=recovered,
            max_queue=self.config.max_queue,
        )
        if self.config.http is not None:
            host, port = _parse_hostport(self.config.http)
            self._httpd = ObsHttpd(
                host,
                port,
                metrics_provider=self._metrics_text,
                health_provider=self._health,
                ready_provider=self.readiness,
                jobs_provider=self.jobs,
                job_provider=self.job_status,
            )
            self.http_address = self._httpd.start()
            self._event("service.http_start", http=self.http_address)
        self.refresh_gauges()
        self._monitor_task = asyncio.ensure_future(self._monitor_loop())
        self.ready.set()
        try:
            await self._executor_loop()
        finally:
            obs_heartbeat.set_enabled(heartbeat_prev)
            if self._monitor_task is not None:
                self._monitor_task.cancel()
                try:
                    await self._monitor_task
                except asyncio.CancelledError:
                    pass
            if self._httpd is not None:
                self._httpd.stop()
            self._server.close()
            await self._server.wait_closed()
            for conn in list(self._connections.values()):
                conn.open = False
                try:
                    conn.writer.close()
                except Exception:  # pragma: no cover - defensive
                    pass
            # Closed transports feed EOF to their readers; wait for the
            # handler tasks to notice and unwind instead of letting the
            # loop teardown cancel them mid-read.
            if self._handler_tasks:
                await asyncio.wait(self._handler_tasks, timeout=5.0)
            if self._drain_began is not None:
                self.drain_seconds = time.monotonic() - self._drain_began
                if obs_metrics.enabled():
                    obs_metrics.REGISTRY.gauge(
                        "service.drain_seconds",
                        help="duration of the last graceful drain",
                    ).set(self.drain_seconds)
                self._event(
                    "service.drain_complete",
                    drain_seconds=self.drain_seconds,
                    jobs_done=self.jobs_done,
                )
        return 0

    async def _listen_unix(self, path: str) -> asyncio.AbstractServer:
        """Bind the Unix socket, reclaiming a stale file if needed.

        A SIGKILLed predecessor cannot unlink its socket file, and
        restart-into-the-same-rendezvous is a core part of the crash
        recovery story.  If nothing answers on the path, the file is a
        corpse: remove it and bind.  If something *does* answer, refuse
        loudly -- two live servers sharing a cache directory would race
        the journal.  The probe must happen *before* binding, because
        ``asyncio.start_unix_server`` silently removes an existing
        socket file, live server or not.
        """
        if os.path.exists(path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(1.0)
            try:
                probe.connect(path)
            except OSError:
                os.unlink(path)  # stale socket (or junk file): reclaim
            else:
                raise SimulationError(
                    f"socket {path} already has a live server"
                )
            finally:
                probe.close()
        return await asyncio.start_unix_server(
            self._handle_client, path=path
        )

    def begin_drain(self) -> None:
        """Stop admitting work and exit once the in-flight run ends.

        Safe to call from a signal handler registered on the loop; for
        cross-thread use go through :meth:`request_drain_threadsafe`.
        Idempotent -- a second SIGTERM during a drain changes nothing.
        """
        if self._draining:
            return
        self._draining = True
        self._drain_began = time.monotonic()
        self._event(
            "service.drain_begin",
            queued=self._queued_total,
            running=self._running.digest if self._running else None,
        )
        if self._server is not None:
            self._server.close()
        self._wake.set()

    def request_drain_threadsafe(self) -> None:
        """Trigger :meth:`begin_drain` from any thread.  A no-op once
        the loop is gone -- draining a drained server is not an error."""
        if self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self.begin_drain)
        except RuntimeError:  # loop already closed
            pass

    # --- connection handling ------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._next_client_id += 1
        conn = _Connection(self._next_client_id, writer)
        self._connections[conn.id] = conn
        task = asyncio.current_task()
        self._handler_tasks.add(task)
        self._event("service.client_connect", client=conn.id)
        try:
            while True:
                try:
                    request = await protocol.read_frame(
                        reader, self.config.max_frame_bytes
                    )
                except protocol.ProtocolError as exc:
                    # Oversized or malformed: answer, count, and close
                    # *this* connection only.  The event loop, the
                    # executor and every other client are untouched.
                    self.protocol_errors += 1
                    self._count("protocol_errors")
                    self._event(
                        "service.protocol_error",
                        client=conn.id,
                        error_type=type(exc).__name__,
                    )
                    await conn.send({"ok": False, "error": str(exc)})
                    break
                if request is None:
                    break
                await self._dispatch(conn, request)
        finally:
            conn.open = False
            self._connections.pop(conn.id, None)
            self._handler_tasks.discard(task)
            await self._cancel_queued_for(conn)
            self._event("service.client_disconnect", client=conn.id)
            try:
                writer.close()
            except Exception:  # pragma: no cover - defensive
                pass

    async def _dispatch(
        self, conn: _Connection, request: Dict[str, object]
    ) -> None:
        op = request.get("op")
        if op == "ping":
            await conn.send(
                {"ok": True, "op": "ping",
                 "version": protocol.PROTOCOL_VERSION}
            )
        elif op == "status":
            digest = request.get("digest")
            if digest is not None:
                entry = self.job_status(str(digest))
                if entry is None:
                    await conn.send(
                        {"ok": False, "op": "status",
                         "digest": str(digest),
                         "error": f"unknown job {digest!r}"}
                    )
                else:
                    await conn.send(
                        {"ok": True, "op": "status",
                         "digest": str(digest), "job": entry}
                    )
            else:
                await conn.send(
                    {"ok": True, "op": "status", "status": self.status()}
                )
        elif op == "jobs":
            await conn.send({"ok": True, "op": "jobs", "jobs": self.jobs()})
        elif op == "watch":
            conn.watching = bool(request.get("on", True))
            await conn.send(
                {"ok": True, "op": "watch", "watching": conn.watching}
            )
        elif op == "drain":
            self.begin_drain()
            await conn.send({"ok": True, "op": "drain", "draining": True})
        elif op == "submit":
            await self._handle_submit(conn, request)
        else:
            # Unknown verbs are survivable: answer and keep serving.
            await conn.send(
                {"ok": False, "op": str(op), "error": f"unknown op {op!r}"}
            )

    # --- submission ---------------------------------------------------------

    async def _handle_submit(
        self, conn: _Connection, request: Dict[str, object]
    ) -> None:
        wire_specs = request.get("specs")
        if not isinstance(wire_specs, list) or not wire_specs:
            await conn.send(
                {"ok": False, "op": "submit",
                 "error": "'specs' must be a non-empty list"}
            )
            return
        if self._draining:
            await conn.send(
                {"ok": False, "op": "submit", "draining": True,
                 "error": "server is draining; resubmit after restart"}
            )
            return
        # Validate the whole submission before admitting any of it: a
        # malformed spec rejects the batch atomically, so the client
        # never has to reason about partially admitted sweeps.
        try:
            specs = [protocol.spec_from_wire(wire) for wire in wire_specs]
        except protocol.SpecError as exc:
            await conn.send(
                {"ok": False, "op": "submit", "error": str(exc)}
            )
            return
        digests = [spec_digest(spec) for spec in specs]

        # Admission control *before* side effects: count how many new
        # jobs this submission creates (in-submission duplicates and
        # in-flight digests join existing jobs; cached digests cost
        # nothing) and shed the whole batch if they do not fit.
        new_digests = []
        seen = set()
        for digest in digests:
            if digest in seen or digest in self._jobs:
                continue
            if digest in self.cache:
                continue
            seen.add(digest)
            new_digests.append(digest)
        if self._queued_total + len(new_digests) > self.config.max_queue:
            self.shed += 1
            self._count("shed")
            self._event(
                "service.busy_shed",
                client=conn.id,
                queued=self._queued_total,
                refused=len(new_digests),
            )
            await conn.send(
                {"ok": False, "op": "submit", "busy": True,
                 "error": (
                     f"admission queue full "
                     f"({self._queued_total}/{self.config.max_queue}); "
                     f"retry later"
                 )}
            )
            return

        await conn.send(
            {"ok": True, "op": "submit", "accepted": len(specs),
             "digests": digests, "new_jobs": len(new_digests)}
        )
        self._event(
            "service.submit",
            client=conn.id,
            n_specs=len(specs),
            new_jobs=len(new_digests),
        )
        for index, (spec, digest) in enumerate(zip(specs, digests)):
            job = self._jobs.get(digest)
            if job is not None:
                job.waiters.append((conn, index))
                self.dedup_joins += 1
                self._count("dedup_joins")
                continue
            cached = self.cache.get(digest)
            if cached is not None:
                self._count("cache_hits")
                self._event("service.cache_hit", digest=digest)
                await conn.send(self._result_frame(index, digest, cached,
                                                   cached_hit=True))
                continue
            self._count("cache_misses")
            self._enqueue(_Job(digest=digest, spec=spec, owner=conn.id,
                               waiters=[(conn, index)]))
        self._wake.set()

    def _result_frame(
        self, index: int, digest: str, result, cached_hit: bool
    ) -> Dict[str, object]:
        frame: Dict[str, object] = {
            "ok": True,
            "op": "result",
            "index": index,
            "digest": digest,
            "cached": cached_hit,
            "result": result.to_json_dict(),
        }
        kind = getattr(result, "journal_kind", None)
        if kind is not None:
            frame["kind"] = kind
        return frame

    # --- scheduling ---------------------------------------------------------

    def _enqueue(self, job: _Job) -> None:
        self._jobs[job.digest] = job
        queue = self._queues.get(job.owner)
        if queue is None:
            queue = self._queues[job.owner] = deque()
            self._rr.append(job.owner)
        queue.append(job)
        self._queued_total += 1
        self.refresh_gauges()

    def _pop_next_job(self) -> Optional[_Job]:
        """Next job under per-client round-robin: take the head of the
        front client's queue, then move that client to the back."""
        if not self._rr:
            return None
        cid = self._rr[0]
        queue = self._queues[cid]
        job = queue.popleft()
        if queue:
            self._rr.rotate(-1)
        else:
            self._rr.popleft()
            del self._queues[cid]
        self._queued_total -= 1
        self.refresh_gauges()
        return job

    def _remove_queued(self, job: _Job) -> None:
        queue = self._queues.get(job.owner)
        if queue is None:  # pragma: no cover - bookkeeping invariant
            return
        queue.remove(job)
        if not queue:
            self._rr.remove(job.owner)
            del self._queues[job.owner]
        self._queued_total -= 1
        self.refresh_gauges()

    async def _cancel_queued_for(self, conn: _Connection) -> None:
        """Client gone: cancel its *queued* jobs.  A running job always
        completes (the result is cached for whoever asks next), and a
        queued job another client also waits on survives -- only this
        client's interest is withdrawn."""
        for digest, job in list(self._jobs.items()):
            before = len(job.waiters)
            job.waiters = [
                (c, i) for c, i in job.waiters if c is not conn
            ]
            if len(job.waiters) == before or job.state != "queued":
                continue
            if job.waiters:
                continue
            self._remove_queued(job)
            del self._jobs[digest]
            self.cancelled += 1
            self._count("cancelled")
            self._event(
                "service.job_cancelled", digest=digest, client=conn.id
            )

    async def _next_job(self) -> Optional[_Job]:
        while True:
            if self._draining:
                await self._refuse_queued()
                return None
            job = self._pop_next_job()
            if job is not None:
                return job
            self._wake.clear()
            # Re-check under the cleared event: an enqueue or drain
            # racing the clear sets it again and we fall through.
            if self._draining or self._rr:
                continue
            await self._wake.wait()

    async def _refuse_queued(self) -> None:
        """Drain semantics for queued-but-unstarted jobs: tell every
        waiter explicitly instead of going dark."""
        while True:
            job = self._pop_next_job()
            if job is None:
                return
            del self._jobs[job.digest]
            self.cancelled += 1
            self._record_finished(job, "refused", error="server draining")
            for conn, index in job.waiters:
                await conn.send(
                    {"ok": False, "op": "result", "index": index,
                     "digest": job.digest, "cached": False,
                     "error": "server draining before this job started; "
                              "resubmit after restart"}
                )

    # --- execution ----------------------------------------------------------

    async def _executor_loop(self) -> None:
        while True:
            job = await self._next_job()
            if job is None:
                return
            job.state = "running"
            job.started_at = time.time()
            self._running = job
            self.refresh_gauges()
            self._event(
                "service.run_start",
                digest=job.digest,
                benchmark=job.spec.workload_name,
            )
            try:
                outcome = await self._loop.run_in_executor(
                    None, self._execute, job.spec
                )
            except BaseException as exc:  # noqa: BLE001 - runner seam
                outcome = exc
            self._running = None
            await self._finish_job(job, outcome)

    def _execute(self, spec):
        """Blocking execution of one job (runs on a worker thread)."""
        if self.config.runner is not None:
            return self.config.runner(spec)
        from repro.sim.batch import run_many

        return run_many(
            [spec],
            processes=self.config.processes,
            lockstep=False,
            timeout_s=self.config.timeout_s,
            retries=self.config.retries,
            backoff_s=self.config.backoff_s,
            backoff_max_s=self.config.backoff_max_s,
            partial_results=True,
            journal=str(self.journal_path),
        )[0]

    async def _finish_job(self, job: _Job, outcome) -> None:
        del self._jobs[job.digest]
        job.state = "done"
        if isinstance(outcome, RunFailure):
            error = f"{outcome.error_type}: {outcome.message}"
        elif isinstance(outcome, BaseException):
            error = f"{type(outcome).__name__}: {outcome}"
        else:
            error = None
        self._record_finished(
            job, "failed" if error is not None else "done", error=error
        )
        self.refresh_gauges()
        if error is not None:
            # Failures are answered but never cached: a resubmission
            # after the fault clears must re-execute, not replay the
            # failure.
            self.jobs_failed += 1
            self._count("jobs_failed")
            self._event(
                "service.job_failed", digest=job.digest, error=error
            )
            for conn, index in job.waiters:
                await conn.send(
                    {"ok": False, "op": "result", "index": index,
                     "digest": job.digest, "cached": False, "error": error}
                )
            return
        self.cache.put(job.digest, outcome)
        self.jobs_done += 1
        self._count("jobs_done")
        self._event("service.job_done", digest=job.digest)
        for conn, index in job.waiters:
            await conn.send(
                self._result_frame(index, job.digest, outcome,
                                   cached_hit=False)
            )

    def _record_finished(
        self, job: _Job, state: str, error: Optional[str] = None
    ) -> None:
        entry: Dict[str, object] = {
            "digest": job.digest,
            "state": state,
            "benchmark": str(getattr(job.spec, "workload_name", "?")),
            "policy": str(getattr(job.spec, "policy", "?")),
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": time.time(),
            "percent": 100.0 if state == "done" else None,
        }
        if error is not None:
            entry["error"] = error
        self._finished[job.digest] = entry
        self._finished.move_to_end(job.digest)
        while len(self._finished) > self._finished_limit:
            self._finished.popitem(last=False)

    # --- status -------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """The ``/healthz``-style liveness snapshot the STATUS verb
        returns."""
        return {
            "pid": os.getpid(),
            "address": self.address,
            "uptime_s": time.monotonic() - self._started,
            "draining": self._draining,
            "queue_depth": self._queued_total,
            "running": self._running.digest if self._running else None,
            "clients": len(self._connections),
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "cancelled": self.cancelled,
            "shed": self.shed,
            "dedup_joins": self.dedup_joins,
            "protocol_errors": self.protocol_errors,
            "cache": self.cache.stats(),
            "journal": str(self.journal_path),
            "http": self.http_address,
            "version": protocol.PROTOCOL_VERSION,
        }

    def jobs(self) -> List[Dict[str, object]]:
        """Every queued/running job plus the recently finished tail.

        Running (and queued) entries are merged with the heartbeat
        snapshot by digest, so a mid-run entry carries live
        ``percent`` / ``time_s`` / ``peak_temp_c`` / ``dtm_state``
        fields.  This is the payload behind ``/jobs``, the ``jobs``
        verb and the streamed ``progress`` frames."""
        progress = obs_heartbeat.snapshot()
        out = [self._job_entry(job, progress) for job in self._jobs.values()]
        out.extend(dict(entry) for entry in reversed(self._finished.values()))
        return out

    def job_status(self, digest: str) -> Optional[Dict[str, object]]:
        """One job's status by digest, or ``None`` when unknown.

        Resolution order: live jobs (queued/running, with heartbeat
        progress), recently finished, then the result cache (a job may
        be long gone from memory yet still answerable)."""
        job = self._jobs.get(digest)
        if job is not None:
            return self._job_entry(job, obs_heartbeat.snapshot())
        entry = self._finished.get(digest)
        if entry is not None:
            return dict(entry)
        if digest in self.cache:
            return {"digest": digest, "state": "done", "cached": True,
                    "percent": 100.0}
        return None

    def _job_entry(
        self, job: _Job, progress: Dict[str, Dict[str, object]]
    ) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "digest": job.digest,
            "state": job.state,
            "benchmark": str(getattr(job.spec, "workload_name", "?")),
            "policy": str(getattr(job.spec, "policy", "?")),
            "waiters": len(job.waiters),
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "percent": 0.0,
        }
        record = progress.get(job.digest)
        if record is not None and job.state == "running":
            entry["percent"] = record.get("percent")
            entry["progress"] = {
                key: record.get(key)
                for key in (
                    "done", "total", "time_s", "steps",
                    "peak_temp_c", "dtm_state", "ts",
                )
            }
        return entry

    def readiness(self) -> Tuple[bool, Dict[str, object]]:
        """``/readyz`` provider: can this server admit a submission now?

        False (HTTP 503) while draining or while the admission queue is
        full (shedding) -- the two states in which a submit would be
        refused."""
        shedding = self._queued_total >= self.config.max_queue
        ready = self.ready.is_set() and not self._draining and not shedding
        return ready, {
            "draining": self._draining,
            "shedding": shedding,
            "queue_depth": self._queued_total,
            "max_queue": self.config.max_queue,
        }

    def _health(self) -> Dict[str, object]:
        """``/healthz`` provider: alive if we can answer at all."""
        return {
            "ok": True,
            "pid": os.getpid(),
            "uptime_s": time.monotonic() - self._started,
            "draining": self._draining,
        }

    def _metrics_text(self) -> str:
        """``/metrics`` provider: refresh the service gauges, then
        render whatever the registry holds."""
        self.refresh_gauges()
        return obs_export.prometheus_text()

    async def _monitor_loop(self) -> None:
        """Continuous publication: gauges every interval, plus one
        ``progress`` frame to each watching client while work is in
        flight.  Cancelled (not joined) at shutdown."""
        while True:
            await asyncio.sleep(self.config.progress_interval_s)
            self.refresh_gauges()
            if self._running is None and not self._queued_total:
                continue
            watchers = [
                conn for conn in self._connections.values()
                if conn.watching and conn.open
            ]
            if not watchers:
                continue
            frame = {
                "ok": True,
                "op": "progress",
                "ts": time.time(),
                "jobs": self.jobs(),
            }
            for conn in watchers:
                await conn.send(frame)


class ServerThread:
    """A :class:`SweepService` on a background thread's event loop.

    The embedding used by the test suite (and available to library
    callers): start, talk to it over its socket from the calling
    thread, then :meth:`stop` for a graceful drain.
    """

    def __init__(self, config: ServiceConfig):
        self.service = SweepService(config)
        self.exit_code: Optional[int] = None
        self.error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def _run(self) -> None:
        try:
            self.exit_code = asyncio.run(self.service.run())
        except BaseException as exc:  # noqa: BLE001 - surfaced by start()
            self.error = exc

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread.start()
        deadline = time.monotonic() + timeout
        while not self.service.ready.wait(0.05):
            if not self._thread.is_alive():
                if self.error is not None:
                    raise self.error
                raise SimulationError("service thread died during startup")
            if time.monotonic() > deadline:
                raise SimulationError("service failed to start listening")
        return self

    def stop(self, timeout: float = 60.0) -> Optional[int]:
        """Graceful drain; returns the exit code (None on join timeout)."""
        self.service.request_drain_threadsafe()
        self._thread.join(timeout)
        return self.exit_code

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
