"""Experiment runners (scaled-down budgets; full scale lives in
benchmarks/)."""

import pytest

from repro.analysis import (
    fig3b_fg_vs_dvs,
    t1_dvs_step_sensitivity,
    t2_voltage_floor,
    t4_benchmark_characterisation,
)

FAST_N = 2_000_000


class TestFig3b:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3b_fg_vs_dvs(
            duty_cycles=(20.0, 1.5), instructions=FAST_N
        )

    def test_mild_fg_cheap_but_leaky(self, result):
        # Duty 20 barely slows anything down -- and barely cools: it
        # cannot eliminate all violations for the hottest benchmarks.
        assert result.fg_mean_slowdowns[20.0] < 1.02

    def test_deep_fg_expensive(self, result):
        assert result.fg_mean_slowdowns[1.5] > result.fg_mean_slowdowns[20.0]

    def test_dvs_reference_line_present(self, result):
        assert result.dvs_mean_slowdown > 1.0
        assert result.dvs_violations == 0


class TestT1StepSensitivity:
    def test_binary_dvs_is_as_good_as_multistep(self):
        results = t1_dvs_step_sensitivity(
            step_counts=(2, 5), dvs_modes=("ideal",), instructions=FAST_N
        )
        means = results["ideal"]
        spread = abs(means[2] - means[5])
        # The paper: below 0.4 % (stall) / 0.01 % (ideal); allow slack at
        # this reduced budget.
        assert spread < 0.02


class TestT2VoltageFloor:
    @pytest.fixture(scope="class")
    def result(self):
        return t2_voltage_floor(
            ratios=(0.85, 0.95), instructions=FAST_N
        )

    def test_085_is_safe(self, result):
        assert result.violations[0.85] == 0

    def test_too_high_floor_fails_to_protect(self, result):
        assert result.violations[0.95] > 0

    def test_largest_safe_ratio(self, result):
        assert result.largest_safe_ratio == 0.85


class TestT4Characterisation:
    @pytest.fixture(scope="class")
    def rows(self):
        return t4_benchmark_characterisation(instructions=FAST_N)

    def test_covers_all_nine_benchmarks(self, rows):
        assert len(rows) == 9

    def test_integer_register_file_always_hottest(self, rows):
        for row in rows:
            assert row.hottest_block == "IntReg", row.benchmark

    def test_all_above_trigger_most_of_the_time(self, rows):
        for row in rows:
            assert row.fraction_above_trigger > 0.85, row.benchmark

    def test_severity_spread_matches_calibration(self, rows):
        temps = {row.benchmark: row.max_temp_c for row in rows}
        hottest = max(temps, key=temps.get)
        assert hottest in ("crafty", "art")
        # Mild and severe benchmarks are both represented.
        assert temps["eon"] < 83.0
        assert temps[hottest] > 85.5
