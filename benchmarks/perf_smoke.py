"""Throughput regression gate against the committed baseline.

Runs one bench (default ``fig3b``) through the harness and compares its
thermal-step throughput with the same bench's entry in the committed
``BENCH_results.json``.  Exits non-zero when throughput drops more than
``--max-drop`` (default 30 %) below the baseline -- the CI perf-smoke
job runs this on every pull request (skippable with the
``skip-perf-smoke`` label for changes where a throughput delta is
expected and the baseline will be regenerated).

Throughput is per-run steps/second, so it is only weakly sensitive to
the instruction budget; CI uses a reduced budget and the slack in
``--max-drop`` absorbs the residual difference plus runner noise.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py
    PYTHONPATH=src python benchmarks/perf_smoke.py --bench fig4a --max-drop 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

sys.path.insert(0, str(Path(__file__).parent))

from run_all import BENCHES, DEFAULT_JSON_PATH, _run_bench


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench", default="fig3b", choices=sorted(BENCHES),
        help="bench to gate on (default %(default)s)",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_JSON_PATH), metavar="PATH",
        help="committed results file (default %(default)s)",
    )
    parser.add_argument(
        "--max-drop", type=float, default=0.30, metavar="FRACTION",
        help="largest tolerated relative throughput drop "
             "(default %(default)s)",
    )
    options = parser.parse_args(argv)

    baseline_path = Path(options.baseline)
    if not baseline_path.is_file():
        print(f"perf-smoke: no baseline at {baseline_path}; nothing to "
              f"gate against", file=sys.stderr)
        return 0
    baseline = json.loads(baseline_path.read_text())
    records = {r["bench"]: r for r in baseline.get("benches", [])}
    base = records.get(options.bench)
    if base is None:
        print(f"perf-smoke: baseline has no entry for {options.bench!r}; "
              f"nothing to gate against", file=sys.stderr)
        return 0
    base_sps = float(base["steps_per_second"])

    record = _run_bench(options.bench)
    sps = float(record["steps_per_second"])
    floor = base_sps * (1.0 - options.max_drop)
    ratio = sps / base_sps if base_sps > 0 else float("inf")
    print(
        f"\n[perf-smoke: {options.bench} at {sps:,.0f} steps/s vs "
        f"baseline {base_sps:,.0f} ({ratio:.2f}x); floor "
        f"{floor:,.0f} at max drop {options.max_drop:.0%}]"
    )
    if sps < floor:
        print(
            f"perf-smoke: FAIL -- {options.bench} throughput dropped "
            f"{1.0 - ratio:.0%}, more than the tolerated "
            f"{options.max_drop:.0%}",
            file=sys.stderr,
        )
        return 1
    print("perf-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
