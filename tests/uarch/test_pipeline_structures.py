"""Structural backpressure in the detailed core.

These tests shrink individual machine structures and verify the expected
bottleneck appears -- evidence that each structure actually constrains the
pipeline rather than being decorative state.
"""

import pytest

from repro.uarch import DetailedCore, MachineParameters
from repro.uarch.trace import TraceParameters

PARAMS = TraceParameters(
    working_set_bytes=64 * 1024,
    sequential_fraction=0.8,
    dep_distance_mean=10.0,
    branch_predictability=0.95,
)


def run_ipc(machine=None, trace_params=PARAMS, cycles=12_000, seed=1):
    core = DetailedCore.warmed(trace_params, seed=seed, machine=machine)
    core.run(max_cycles=3_000)
    core.reset_statistics()
    return core.run(max_cycles=cycles).ipc


@pytest.fixture(scope="module")
def baseline_ipc():
    return run_ipc()


def test_tiny_rob_limits_mlp(baseline_ipc):
    small_rob = MachineParameters(rob_size=8)
    assert run_ipc(machine=small_rob) < 0.8 * baseline_ipc


def test_tiny_issue_queue_limits_ilp(baseline_ipc):
    small_iq = MachineParameters(int_queue_size=2)
    assert run_ipc(machine=small_iq) < 0.9 * baseline_ipc


def test_single_entry_lsq_serialises_memory(baseline_ipc):
    small_lsq = MachineParameters(load_store_queue_size=1)
    assert run_ipc(machine=small_lsq) < 0.85 * baseline_ipc


def test_narrow_issue_caps_throughput(baseline_ipc):
    narrow = MachineParameters(int_issue_width=1)
    ipc = run_ipc(machine=narrow)
    assert ipc < baseline_ipc
    assert ipc <= 1.05  # cannot sustain more than ~1 integer op/cycle


def test_long_mispredict_penalty_hurts(baseline_ipc):
    slow_redirect = MachineParameters(branch_mispredict_penalty=60)
    assert run_ipc(machine=slow_redirect) < baseline_ipc


def test_dependency_chains_limit_ipc(baseline_ipc):
    serial = TraceParameters(
        working_set_bytes=64 * 1024,
        sequential_fraction=0.8,
        dep_distance_mean=1.2,  # nearly every op depends on the previous
        branch_predictability=0.95,
    )
    assert run_ipc(trace_params=serial) < 0.75 * baseline_ipc


def test_unpredictable_branches_limit_ipc(baseline_ipc):
    chaotic = TraceParameters(
        working_set_bytes=64 * 1024,
        sequential_fraction=0.8,
        dep_distance_mean=10.0,
        branch_predictability=0.6,
    )
    assert run_ipc(trace_params=chaotic) < 0.8 * baseline_ipc
