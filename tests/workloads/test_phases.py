"""Workload phases."""

import pytest

from repro.errors import WorkloadError
from repro.uarch import AnalyticIlpResponse, IlpResponse, IlpResponsePoint
from repro.workloads import Phase, make_activity_profile


def make_phase(**overrides):
    defaults = dict(
        name="p",
        instructions=1_000_000,
        base_ipc=2.0,
        memory_cpi_fraction=0.15,
        fetch_supply_ipc=3.1,
        speculation_waste=0.2,
        base_activities=make_activity_profile(0.8, 0.1, 0.5, 0.7, 0.2),
    )
    defaults.update(overrides)
    return Phase(**defaults)


class TestValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(WorkloadError):
            make_phase(name="")

    def test_rejects_zero_instructions(self):
        with pytest.raises(WorkloadError):
            make_phase(instructions=0)

    def test_rejects_non_positive_ipc(self):
        with pytest.raises(WorkloadError):
            make_phase(base_ipc=0.0)

    def test_rejects_memory_fraction_of_one(self):
        with pytest.raises(WorkloadError):
            make_phase(memory_cpi_fraction=1.0)

    def test_rejects_supply_below_ipc(self):
        with pytest.raises(WorkloadError):
            make_phase(base_ipc=2.0, fetch_supply_ipc=1.8)

    def test_rejects_negative_waste(self):
        with pytest.raises(WorkloadError):
            make_phase(speculation_waste=-0.1)


class TestDerivedModels:
    def test_default_ilp_response_is_analytic(self):
        phase = make_phase()
        assert isinstance(phase.ilp_response, AnalyticIlpResponse)
        assert phase.ilp_response.base_ipc == phase.base_ipc

    def test_ilp_response_is_cached(self):
        phase = make_phase()
        assert phase.ilp_response is phase.ilp_response

    def test_activity_model_reflects_base_and_waste(self):
        phase = make_phase(speculation_waste=0.3)
        model = phase.activity_model
        assert model.speculation_waste == 0.3
        assert model.base_activities == phase.base_activities

    def test_with_measured_response(self):
        phase = make_phase()
        measured = IlpResponse(
            [IlpResponsePoint(0.0, 2.0), IlpResponsePoint(0.5, 1.0)]
        )
        replaced = phase.with_measured_response(measured)
        assert replaced.ilp_response is measured
        assert replaced.name == phase.name
        # The original is untouched.
        assert phase.ilp_response is not measured

    def test_scaled_activities_clamped(self):
        phase = make_phase()
        scaled = phase.scaled_activities(2.0)
        assert all(v <= 1.0 for v in scaled.values())
        with pytest.raises(WorkloadError):
            phase.scaled_activities(-1.0)
