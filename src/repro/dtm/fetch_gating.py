"""Fetch gating under integral control.

Fetch is prevented at some duty cycle, reducing the instruction flow and
hence unit activities and power densities.  The duty cycle is a
feedback-control problem; the paper uses an integral controller ("a few
registers, an adder, and a multiplier").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.dtm.base import DtmCommand, DtmPolicy
from repro.dtm.controllers import IntegralController
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import DtmConfigError


def duty_cycle_to_gating_fraction(duty_cycle: float) -> float:
    """Convert the paper's duty-cycle convention to a gating fraction.

    A duty cycle of x means "skip fetch once every x cycles", i.e. a
    gating fraction of 1/x; x = 0.33 gates fetch two out of every three
    cycles (fraction 2/3).
    """
    if duty_cycle <= 1.0:
        # x <= 1 means gating more often than every cycle; the paper's
        # x = 0.33 notation extends the convention below 1.
        if duty_cycle <= 0.0:
            raise DtmConfigError("duty cycle must be > 0")
    fraction = 1.0 / duty_cycle
    if fraction >= 1.0:
        raise DtmConfigError(
            f"duty cycle {duty_cycle} would gate every cycle (fraction >= 1)"
        )
    return fraction


def gating_fraction_to_duty_cycle(fraction: float) -> float:
    """Inverse of :func:`duty_cycle_to_gating_fraction`."""
    if not 0.0 < fraction < 1.0:
        raise DtmConfigError("gating fraction must be in (0, 1)")
    return 1.0 / fraction


@dataclass(frozen=True)
class FetchGatingConfig:
    """Configuration of the integral-controlled fetch-gating policy.

    Parameters
    ----------
    ki:
        Integral gain in gating-fraction units per Kelvin-second.
    max_gating_fraction:
        Saturation limit of the controller; the paper finds 2/3 (duty
        cycle 0.33) is required for stand-alone FG to eliminate all
        violations.
    nominal_voltage:
        Supply voltage (FG never touches it).
    """

    ki: float = 600.0
    max_gating_fraction: float = 2.0 / 3.0
    nominal_voltage: float = 1.3

    def __post_init__(self) -> None:
        if self.ki <= 0.0:
            raise DtmConfigError("ki must be > 0")
        if not 0.0 < self.max_gating_fraction < 1.0:
            raise DtmConfigError("max gating fraction must be in (0, 1)")
        if self.nominal_voltage <= 0.0:
            raise DtmConfigError("voltage must be > 0")


class FixedFetchGatingPolicy(DtmPolicy):
    """Fetch gating at one fixed duty cycle, engaged above the trigger.

    This is the stand-alone-FG configuration of the paper's Figure 3b
    sweep: a single gating level applied whenever the observed temperature
    demands a response (most such levels are insufficient to eliminate
    violations -- that is the point of the figure).  De-escalation goes
    through a low-pass filter like the hybrid's.
    """

    name = "FG-fixed"
    hottest_only = True

    def __init__(
        self,
        gating_fraction: float,
        thresholds: Optional[ThermalThresholds] = None,
        nominal_voltage: float = 1.3,
        release_filter_alpha: float = 0.25,
        release_margin_c: float = 0.3,
    ):
        if not 0.0 < gating_fraction < 1.0:
            raise DtmConfigError("gating fraction must be in (0, 1)")
        self._fraction = gating_fraction
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        self._voltage = nominal_voltage
        self._margin = release_margin_c
        from repro.dtm.controllers import LowPassFilter

        self._filter = LowPassFilter(release_filter_alpha)
        self._engaged = False

    @property
    def gating_fraction(self) -> float:
        """The fixed duty level."""
        return self._fraction

    @property
    def engaged(self) -> bool:
        """Whether gating is currently applied."""
        return self._engaged

    def update(
        self, readings: Mapping[str, float], time_s: float, dt_s: float
    ) -> DtmCommand:
        """Comparator against the trigger; filtered release."""
        return self.update_hottest(self.hottest(readings), time_s, dt_s)

    def update_hottest(
        self, hottest: float, time_s: float, dt_s: float
    ) -> DtmCommand:
        """Comparator against the trigger; filtered release."""
        filtered = self._filter.update(hottest)
        if hottest > self._thresholds.trigger_c:
            self._engaged = True
        elif filtered < self._thresholds.trigger_c - self._margin:
            self._engaged = False
        return DtmCommand(
            gating_fraction=self._fraction if self._engaged else 0.0,
            voltage=self._voltage,
        )

    def reset(self) -> None:
        """Disengage and clear the filter."""
        self._engaged = False
        self._filter.reset()


class FetchGatingPolicy(DtmPolicy):
    """Integral-controlled fetch gating at nominal voltage."""

    name = "FG"
    hottest_only = True

    def __init__(
        self,
        config: Optional[FetchGatingConfig] = None,
        thresholds: Optional[ThermalThresholds] = None,
    ):
        self._config = config if config is not None else FetchGatingConfig()
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        self._controller = IntegralController(
            ki=self._config.ki,
            setpoint=self._thresholds.trigger_c,
            output_min=0.0,
            output_max=self._config.max_gating_fraction,
        )
        self._fraction = 0.0

    @property
    def config(self) -> FetchGatingConfig:
        """The policy configuration."""
        return self._config

    @property
    def gating_fraction(self) -> float:
        """Current commanded gating fraction."""
        return self._fraction

    def update(
        self, readings: Mapping[str, float], time_s: float, dt_s: float
    ) -> DtmCommand:
        """Integrate the temperature error into a new duty cycle."""
        return self.update_hottest(self.hottest(readings), time_s, dt_s)

    def update_hottest(
        self, hottest: float, time_s: float, dt_s: float
    ) -> DtmCommand:
        """Integrate the temperature error into a new duty cycle."""
        self._fraction = self._controller.update(hottest, dt_s)
        # Guard against float drift pushing the fraction to 1.0.
        self._fraction = min(self._fraction, math.nextafter(1.0, 0.0) * 0.999)
        return DtmCommand(
            gating_fraction=self._fraction,
            voltage=self._config.nominal_voltage,
        )

    def reset(self) -> None:
        """Stop gating and clear the integral state."""
        self._controller.reset()
        self._fraction = 0.0
