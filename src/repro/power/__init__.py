"""Wattch-style block-level power model with temperature-dependent leakage.

Per-block dynamic power scales with activity, voltage squared, and
frequency; leakage scales exponentially with temperature (ITRS 130 nm
projections, as in the paper's updated Wattch leakage model).  The
voltage-to-frequency relation uses the alpha-power MOSFET delay law in place
of the paper's Cadence/BSIM ring-oscillator characterisation.
"""

from repro.power.technology import Technology, default_technology
from repro.power.vf_curve import VoltageFrequencyCurve
from repro.power.leakage import LeakageParameters, leakage_power
from repro.power.dynamic import BlockPowerSpec, dynamic_power
from repro.power.budget import (
    default_power_specs,
    migration_power_specs,
    total_peak_dynamic_power,
)
from repro.power.model import PowerModel

__all__ = [
    "Technology",
    "default_technology",
    "VoltageFrequencyCurve",
    "LeakageParameters",
    "leakage_power",
    "BlockPowerSpec",
    "dynamic_power",
    "default_power_specs",
    "migration_power_specs",
    "total_peak_dynamic_power",
    "PowerModel",
]
