"""Zero-copy sweep dispatch over POSIX shared memory.

The pool path of :func:`repro.sim.batch.run_many` used to pickle one
full :class:`~repro.sim.batch.RunSpec` per submitted run -- workload,
policy factory, engine configuration and the warmup temperature vector
-- and pickle one full :class:`~repro.sim.results.RunResult` back.  For
sweep-heavy reproductions (every figure is a grid of runs over a shared
substrate) almost all of that traffic is identical between specs.

This module moves the shared part out of the per-task pickle stream:

* :class:`SweepContext` packs the sweep's *immutable context* -- the
  deduplicated engine configurations, workloads, policy factories,
  per-spec scalar deltas and the deduplicated warmup temperature
  vectors -- into a single :class:`multiprocessing.shared_memory`
  segment, written once by the parent;
* workers attach the segment read-only (cached per process, so a
  worker maps it once per sweep, not once per run) and rebuild each
  spec from an integer index -- the per-task payload is just
  ``(descriptor, index)``;
* numeric results return through a preallocated float64 result table
  in the same segment: the worker writes its spec's row and returns a
  tiny string stub, and the parent reassembles the
  :class:`~repro.sim.results.RunResult` from the row.  Float64 slots
  hold every numeric field exactly, so the round trip is bit-identical
  to the pickle path (the equivalence tests assert it).

The path is governed by the ``REPRO_SHM_SWEEPS`` environment variable
(default on) and degrades transparently: if the segment cannot be
created (no /dev/shm, permissions), or an individual spec stops
matching its registered context entry (e.g. a chaos retry stripped its
fault plan), the affected submission falls back to the classic pickle
path with identical results.

A note on the resource tracker (bpo-39959): CPython < 3.13 registers
*attached* segments too.  The pool here uses forked workers, which
share the parent's tracker process, so a worker's attach-time
registration is an idempotent set-add of a name the parent already
registered -- the parent's single ``unlink`` on close retires it
cleanly.  Do not "fix" this by unregistering in the worker: with a
shared tracker that removes the *parent's* registration and the final
unlink trips a KeyError in the tracker loop.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.results import RunResult

SHM_SWEEPS_ENV = "REPRO_SHM_SWEEPS"
"""Set to ``0`` to disable shared-memory dispatch and force the classic
per-spec pickle path (``1``/unset: shared memory when available)."""

RESULT_FIELDS = (
    "instructions",
    "elapsed_s",
    "cycles",
    "violations",
    "max_true_temp_c",
    "time_above_trigger_s",
    "dvs_switches",
    "dvs_low_time_s",
    "stall_time_s",
    "mean_gating_fraction",
    "mean_power_w",
    "migrations",
    "trigger_crossings",
)
"""Numeric :class:`RunResult` fields carried in the shared result
table, in slot order.  Every one is either a double already or an
integer far below 2**53, so a float64 slot stores it exactly."""

_INT_FIELDS = frozenset(
    ("cycles", "violations", "dvs_switches", "migrations",
     "trigger_crossings")
)

_ALIGN = 8


def shm_sweeps_enabled() -> bool:
    """True unless ``REPRO_SHM_SWEEPS`` disables the shared path."""
    return os.environ.get(SHM_SWEEPS_ENV, "1").strip().lower() not in (
        "0",
        "off",
        "false",
    )


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ShmDescriptor:
    """Everything a worker needs to map one sweep context segment."""

    name: str
    payload_size: int
    n_initials: int
    n_nodes: int
    n_specs: int

    @property
    def initials_offset(self) -> int:
        return _aligned(self.payload_size)

    @property
    def results_offset(self) -> int:
        return self.initials_offset + self.n_initials * self.n_nodes * 8

    @property
    def total_size(self) -> int:
        return self.results_offset + self.n_specs * len(RESULT_FIELDS) * 8


@dataclass(frozen=True)
class ShmResultStub:
    """Tiny worker -> parent reply: the string fields of a result plus
    the slot holding its numbers.  ``trace`` never travels this way --
    traced runs return the full :class:`RunResult`."""

    slot: int
    benchmark: str
    policy: str
    dvs_mode: str
    hottest_block: str


def _views(
    descriptor: ShmDescriptor, shm: shared_memory.SharedMemory
) -> Tuple[np.ndarray, np.ndarray]:
    """(initials, results) array views over one mapped segment."""
    initials = np.ndarray(
        (descriptor.n_initials, descriptor.n_nodes),
        dtype=np.float64,
        buffer=shm.buf,
        offset=descriptor.initials_offset,
    )
    results = np.ndarray(
        (descriptor.n_specs, len(RESULT_FIELDS)),
        dtype=np.float64,
        buffer=shm.buf,
        offset=descriptor.results_offset,
    )
    return initials, results


class SweepContext:
    """Parent-side owner of one sweep's shared-memory segment.

    Built from the sweep's spec list (after warmup precomputation, so
    every spec carries its initial temperature vector).  Deduplicates
    configurations, workloads, policies and initial vectors, writes the
    segment, and serves per-spec submissions.
    """

    def __init__(self, specs: Sequence):
        """``specs`` is indexed by sweep position; ``None`` entries mark
        positions that will never be submitted (e.g. runs already
        satisfied from a resume journal)."""
        specs = list(specs)
        if not any(spec is not None for spec in specs):
            raise SimulationError("cannot build a sweep context for no specs")
        self._specs = specs

        configs: List = []
        config_index: Dict[int, int] = {}
        workloads: List = []
        workload_index: Dict[object, int] = {}
        policies: List = []
        policy_index: Dict[object, int] = {}
        initial_blobs: List[bytes] = []
        initial_index: Dict[bytes, int] = {}
        deltas: List[tuple] = []
        n_nodes: Optional[int] = None

        for spec in specs:
            if spec is None:
                deltas.append(None)
                continue
            if spec.initial is None:
                raise SimulationError(
                    "sweep context requires precomputed initial vectors"
                )
            initial = np.ascontiguousarray(spec.initial, dtype=np.float64)
            if initial.ndim != 1:
                raise SimulationError("initial vector must be 1-D")
            if n_nodes is None:
                n_nodes = initial.size
            elif initial.size != n_nodes:
                raise SimulationError(
                    "sweep context requires one thermal network: initial "
                    "vectors differ in length"
                )
            blob = initial.tobytes()
            i_idx = initial_index.get(blob)
            if i_idx is None:
                i_idx = len(initial_blobs)
                initial_index[blob] = i_idx
                initial_blobs.append(blob)

            c_key = id(spec.engine_config)
            c_idx = config_index.get(c_key)
            if c_idx is None or configs[c_idx] is not spec.engine_config:
                c_idx = len(configs)
                config_index[c_key] = c_idx
                configs.append(spec.engine_config)

            w_key = (
                spec.workload
                if isinstance(spec.workload, str)
                else id(spec.workload)
            )
            w_idx = workload_index.get(w_key)
            if w_idx is None:
                w_idx = len(workloads)
                workload_index[w_key] = w_idx
                workloads.append(spec.workload)

            p_key = (
                spec.policy
                if isinstance(spec.policy, str)
                else id(spec.policy)
            )
            p_idx = policy_index.get(p_key)
            if p_idx is None:
                p_idx = len(policies)
                policy_index[p_key] = p_idx
                policies.append(spec.policy)

            deltas.append(
                (
                    w_idx,
                    p_idx,
                    c_idx,
                    spec.instructions,
                    spec.settle_time_s,
                    spec.dvs_mode,
                    spec.seed,
                    i_idx,
                )
            )

        payload = pickle.dumps(
            {
                "configs": configs,
                "workloads": workloads,
                "policies": policies,
                "deltas": deltas,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        probe = ShmDescriptor(
            name="probe",
            payload_size=len(payload),
            n_initials=len(initial_blobs),
            n_nodes=int(n_nodes),
            n_specs=len(specs),
        )
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(probe.total_size, 1)
        )
        self.descriptor = ShmDescriptor(
            name=self._shm.name,
            payload_size=probe.payload_size,
            n_initials=probe.n_initials,
            n_nodes=probe.n_nodes,
            n_specs=probe.n_specs,
        )
        self._shm.buf[: len(payload)] = payload
        initials, self._results = _views(self.descriptor, self._shm)
        for i, blob in enumerate(initial_blobs):
            initials[i, :] = np.frombuffer(blob, dtype=np.float64)

    def submit(self, pool, index: int, spec):
        """Submit spec ``index`` to ``pool``.

        When ``spec`` is still the object registered at context build
        the task ships as ``(descriptor, index)``; a spec mutated since
        (e.g. a retry with its transient faults stripped) silently takes
        the classic pickle path instead -- the context is immutable.
        """
        from repro.sim.batch import run_one

        if 0 <= index < len(self._specs) and spec is self._specs[index]:
            return pool.submit(run_one_shm, self.descriptor, index)
        return pool.submit(run_one, spec)

    def resolve(self, raw):
        """Translate one worker reply into a :class:`RunResult`."""
        if isinstance(raw, ShmResultStub):
            row = self._results[raw.slot]
            values = {}
            for column, field in enumerate(RESULT_FIELDS):
                value = float(row[column])
                values[field] = (
                    int(value) if field in _INT_FIELDS else value
                )
            return RunResult(
                benchmark=raw.benchmark,
                policy=raw.policy,
                dvs_mode=raw.dvs_mode,
                hottest_block=raw.hottest_block,
                trace=None,
                **values,
            )
        return raw

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        self._results = None
        try:
            shm.close()
        except Exception:  # pragma: no cover - defensive
            pass
        try:
            shm.unlink()
        except Exception:  # pragma: no cover - already gone
            pass


def create_context(specs: Sequence) -> Optional[SweepContext]:
    """A :class:`SweepContext` for ``specs``, or ``None`` when disabled
    or unavailable -- no /dev/shm, unpicklable context, missing warmup
    vectors -- in which case the caller keeps the pickle path."""
    if not shm_sweeps_enabled():
        return None
    try:
        return SweepContext(specs)
    except Exception:
        return None


# --- worker side ------------------------------------------------------------

# One cached attachment per worker process.  A worker services one
# sweep generation at a time, so when a task arrives for a different
# segment the stale mapping is dropped first (its buffers must not be
# referenced once closed).
_ATTACHED: Dict[str, tuple] = {}


def _attach(descriptor: ShmDescriptor) -> tuple:
    entry = _ATTACHED.get(descriptor.name)
    if entry is None:
        for stale in list(_ATTACHED):
            old = _ATTACHED.pop(stale)
            try:
                old[0].close()
            except Exception:  # pragma: no cover - defensive
                pass
        shm = shared_memory.SharedMemory(name=descriptor.name)
        context = pickle.loads(bytes(shm.buf[: descriptor.payload_size]))
        initials, results = _views(descriptor, shm)
        entry = (shm, context, initials, results)
        _ATTACHED[descriptor.name] = entry
    return entry


def run_one_shm(descriptor: ShmDescriptor, index: int):
    """Worker entry point: rebuild spec ``index`` from the shared
    context, run it, write its numbers to the shared result table, and
    return a stub (or the full result when it carries a trace)."""
    from repro.sim.batch import RunSpec, run_one

    _, context, initials, results = _attach(descriptor)
    (
        w_idx,
        p_idx,
        c_idx,
        instructions,
        settle_time_s,
        dvs_mode,
        seed,
        i_idx,
    ) = context["deltas"][index]
    spec = RunSpec(
        workload=context["workloads"][w_idx],
        policy=context["policies"][p_idx],
        instructions=instructions,
        settle_time_s=settle_time_s,
        dvs_mode=dvs_mode,
        engine_config=context["configs"][c_idx],
        seed=seed,
        initial=np.array(initials[i_idx], dtype=float, copy=True),
    )
    result = run_one(spec)
    row = results[index]
    for column, field in enumerate(RESULT_FIELDS):
        row[column] = getattr(result, field)
    if result.trace is not None:
        return result
    return ShmResultStub(
        slot=index,
        benchmark=result.benchmark,
        policy=result.policy,
        dvs_mode=result.dvs_mode,
        hottest_block=result.hottest_block,
    )
