"""Beyond the paper: the excluded techniques and future-work extensions.

Runs, on one severe benchmark, the techniques the paper mentions but does
not evaluate -- local toggling and activity migration -- alongside the
forecast-driven predictive hybrid, and compares them with the paper's own
line-up.

Run:  python examples/beyond_the_paper.py
"""

from repro import SimulationEngine, build_benchmark, make_policy
from repro.dtm import LocalTogglingPolicy, MigrationPolicy, PredictiveHybPolicy
from repro.floorplan import build_migration_floorplan
from repro.power import PowerModel, migration_power_specs

INSTRUCTIONS = 6_000_000
SETTLE_S = 2.0e-3


def main() -> None:
    workload = build_benchmark("crafty")
    print(f"benchmark: {workload.name} ({workload.description})\n")

    # Standard floorplan: the paper's techniques plus LT and Pred-Hyb.
    baseline_engine = SimulationEngine(workload, policy=make_policy("none"))
    initial = baseline_engine.compute_initial_temperatures()
    baseline = baseline_engine.run(
        INSTRUCTIONS, initial=initial.copy(), settle_time_s=SETTLE_S
    )
    print(f"{'technique':<22} {'slowdown':>9} {'max C':>7} {'violations':>11}")
    candidates = [
        ("FG (paper)", make_policy("FG")),
        ("DVS (paper)", make_policy("DVS")),
        ("Hyb (paper)", make_policy("Hyb")),
        ("local toggling", LocalTogglingPolicy()),
        ("predictive hybrid", PredictiveHybPolicy()),
    ]
    for label, policy in candidates:
        run = SimulationEngine(workload, policy=policy).run(
            INSTRUCTIONS, initial=initial.copy(), settle_time_s=SETTLE_S
        )
        print(f"{label:<22} {run.elapsed_s / baseline.elapsed_s:>9.4f} "
              f"{run.max_true_temp_c:>7.2f} {run.violations:>11d}")

    # Migration needs its own floorplan (the spare register file).
    floorplan = build_migration_floorplan()
    power = PowerModel(floorplan, specs=migration_power_specs())
    mig_baseline_engine = SimulationEngine(
        workload, policy=make_policy("none"), floorplan=floorplan,
        power_model=power,
    )
    mig_initial = mig_baseline_engine.compute_initial_temperatures()
    mig_baseline = mig_baseline_engine.run(
        INSTRUCTIONS, initial=mig_initial.copy(), settle_time_s=SETTLE_S
    )
    run = SimulationEngine(
        workload, policy=MigrationPolicy(), floorplan=floorplan,
        power_model=power,
    ).run(INSTRUCTIONS, initial=mig_initial.copy(), settle_time_s=SETTLE_S)
    print(f"{'activity migration*':<22} "
          f"{run.elapsed_s / mig_baseline.elapsed_s:>9.4f} "
          f"{run.max_true_temp_c:>7.2f} {run.violations:>11d}")
    print("\n* on the duplicated-register-file floorplan variant "
          f"({run.migrations} migrations)")


if __name__ == "__main__":
    main()
