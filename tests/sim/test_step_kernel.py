"""Fused step kernel and event-driven stride edge cases.

The fused kernel (``EngineConfig.step_kernel``) executes decision-free
dense spans inside the engine's frame instead of yielding one request
per step; its claim is *bit-identity* with the per-step anchor path
(``step_kernel="off"``), because it runs the same float operations on
the same buffers in the same order.  The event-driven stride replaces
dense spans with closed-form jumps whose claim is threshold safety: no
trigger or emergency crossing is ever skipped or invented, even when
the trajectory grazes a threshold exactly.  Both claims are pinned
here, across every benchmark scenario and both steppers.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.dtm import FetchGatingPolicy, NoDtmPolicy
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import NumericalError, SimulationError
from repro.sensors.faults import SensorFault
from repro.sim import EngineConfig, SimulationEngine
from repro.sim.config import STEP_KERNEL_ENV
from repro.sim.faults import FaultPlan
from repro.sim.kernel import DenseSpanTask, numba_available, resolve_step_kernel
from repro.thermal import ExponentialSolver
from repro.workloads import build_benchmark
from repro.workloads.spec import SPEC_BENCHMARK_NAMES

FAST_N = 800_000


@pytest.fixture(scope="module")
def gcc():
    return build_benchmark("gcc")


def _run(
    workload,
    policy_factory=FetchGatingPolicy,
    instructions=FAST_N,
    thresholds=None,
    initial_offset_c=None,
    **config_kwargs,
):
    engine = SimulationEngine(
        workload,
        policy=policy_factory(),
        config=EngineConfig(**config_kwargs),
        thresholds=thresholds,
        seed=3,
    )
    init = engine.compute_initial_temperatures()
    if initial_offset_c is not None:
        init = init + initial_offset_c
    return engine.run(instructions, initial=init, settle_time_s=2.0e-4)


def _assert_bit_identical(result, anchor):
    got, want = asdict(result), asdict(anchor)
    for field in want:
        assert got[field] == want[field], field


class TestKernelBitIdentity:
    """step_kernel="numpy" == step_kernel="off", float for float."""

    @pytest.mark.parametrize("bench_name", SPEC_BENCHMARK_NAMES)
    @pytest.mark.parametrize("stepper", ["expm", "be"])
    def test_matches_anchor_dense(self, bench_name, stepper):
        # fast_forward off forces every span through the dense path, so
        # the kernel executes essentially the whole run.
        workload = build_benchmark(bench_name)
        kwargs = dict(thermal_stepper=stepper, fast_forward=False)
        fused = _run(workload, step_kernel="numpy", **kwargs)
        anchor = _run(workload, step_kernel="off", **kwargs)
        _assert_bit_identical(fused, anchor)

    def test_matches_anchor_with_stride_enabled(self, gcc):
        # With the stride on, the kernel only covers the dense residue
        # (rejected spans, settle lead-in); decisions are unchanged, so
        # identity still holds bit for bit.
        fused = _run(gcc, step_kernel="numpy", fast_forward=True)
        anchor = _run(gcc, step_kernel="off", fast_forward=True)
        _assert_bit_identical(fused, anchor)

    def test_matches_anchor_under_sensor_faults(self, gcc):
        # Plant-level sensor degradation changes the control trajectory
        # but not the kernel's equivalence claim.
        from repro.floorplan.alpha21364 import build_alpha21364_floorplan

        block = build_alpha21364_floorplan().block_names[0]
        plan = FaultPlan(sensor_faults=(SensorFault.stuck(block, 70.0),))
        kwargs = dict(fast_forward=False, fault_plan=plan)
        fused = _run(gcc, step_kernel="numpy", **kwargs)
        anchor = _run(gcc, step_kernel="off", **kwargs)
        _assert_bit_identical(fused, anchor)

    def test_power_corruption_raises_identically(self, gcc):
        # A poisoned power vector trips the solver health guard the same
        # way in both modes (the kernel is disabled under corruption
        # faults, so both runs step densely through the contract).
        plan = FaultPlan(corrupt_power_at_step=5)
        for mode in ("numpy", "off"):
            with pytest.raises(NumericalError):
                _run(
                    gcc,
                    step_kernel=mode,
                    fast_forward=False,
                    fault_plan=plan,
                )

    def test_kernel_actually_engages(self, gcc, monkeypatch):
        # Guard against the identity tests passing vacuously.
        spans = []
        original = DenseSpanTask.run

        def counting(self, solver):
            spans.append(self.count)
            return original(self, solver)

        monkeypatch.setattr(DenseSpanTask, "run", counting)
        _run(gcc, step_kernel="numpy", fast_forward=False)
        assert spans, "no fused span executed in a dense run"
        assert all(count >= 2 for count in spans)

    def test_kernel_off_never_fuses(self, gcc, monkeypatch):
        spans = []
        original = DenseSpanTask.run

        def counting(self, solver):
            spans.append(self.count)
            return original(self, solver)

        monkeypatch.setattr(DenseSpanTask, "run", counting)
        _run(gcc, step_kernel="off", fast_forward=False)
        assert not spans


class TestStrideThresholdEdgeCases:
    """Event-driven jumps near the trigger and under perturbed starts."""

    EXACT = ("violations", "trigger_crossings", "hottest_block", "cycles")

    @pytest.mark.parametrize("bench_name", ["bzip2", "gcc", "mesa"])
    def test_stride_never_overshoots_instruction_budget(self, bench_name):
        # Regression: the jump's budget cap was sized with the *last*
        # dense sample's commit, which on a phase-boundary step is a
        # blend of two phases' rates; when IPC rises across the
        # boundary the span's clean rate overshot the budget (bzip2 at
        # 4M instructions committed 4,001,368).  The cap must use the
        # span's own per-interval rate so every run ends on the exact,
        # interpolated final step.
        budget = 4_000_000
        result = _run(
            build_benchmark(bench_name),
            policy_factory=NoDtmPolicy,
            instructions=budget,
            fast_forward=True,
        )
        assert result.instructions == budget

    def _thresholds_at(self, trigger_c):
        return ThermalThresholds(
            trigger_c=trigger_c,
            practical_limit_c=trigger_c + 0.2,
            emergency_c=trigger_c + 3.0,
        )

    def test_trajectory_peaking_exactly_at_trigger(self, gcc):
        # Place the trigger exactly at the unmanaged dense-run peak --
        # the one adversarial (measure-zero) choice where the stride's
        # documented ~1e-3 C trajectory tolerance can flip a strict
        # comparator.  The contract here is conservatism, not
        # bit-identity: the stride may disagree about the grazing touch
        # by at most one crossing and one decision interval of
        # above-trigger time, and must agree exactly on everything a
        # real threshold (with margin) would see.
        peak = _run(gcc, NoDtmPolicy, fast_forward=False).max_true_temp_c
        thresholds = self._thresholds_at(peak)
        jumped = _run(
            gcc, NoDtmPolicy, thresholds=thresholds, fast_forward=True
        )
        dense = _run(
            gcc, NoDtmPolicy, thresholds=thresholds, fast_forward=False
        )
        assert jumped.violations == dense.violations == 0
        assert jumped.hottest_block == dense.hottest_block
        assert jumped.cycles == dense.cycles
        assert abs(jumped.trigger_crossings - dense.trigger_crossings) <= 1
        assert abs(
            jumped.time_above_trigger_s - dense.time_above_trigger_s
        ) <= 5.0e-4
        assert jumped.max_true_temp_c == pytest.approx(
            dense.max_true_temp_c, abs=1e-3
        )

    def test_trigger_hair_below_peak_is_crossed_in_both_modes(self, gcc):
        # A trigger epsilon below the peak must be crossed -- the jump
        # envelope may not swallow the excursion.
        peak = _run(gcc, NoDtmPolicy, fast_forward=False).max_true_temp_c
        thresholds = self._thresholds_at(peak - 1.0e-6)
        jumped = _run(
            gcc, NoDtmPolicy, thresholds=thresholds, fast_forward=True
        )
        dense = _run(
            gcc, NoDtmPolicy, thresholds=thresholds, fast_forward=False
        )
        assert dense.time_above_trigger_s > 0.0
        for field in self.EXACT:
            assert getattr(jumped, field) == getattr(dense, field), field
        assert jumped.time_above_trigger_s == pytest.approx(
            dense.time_above_trigger_s, rel=1e-9, abs=1e-12
        )

    @pytest.mark.parametrize("offset_c", [5.0, -5.0])
    def test_drift_sign_flip_from_perturbed_start(self, gcc, offset_c):
        # Starting above (below) the steady state, leakage drifts down
        # (up) across every early span -- both drift directions, and the
        # sign flip as the trajectory settles, must close rigorously.
        jumped = _run(
            gcc,
            NoDtmPolicy,
            initial_offset_c=offset_c,
            fast_forward=True,
        )
        dense = _run(
            gcc,
            NoDtmPolicy,
            initial_offset_c=offset_c,
            fast_forward=False,
        )
        for field in self.EXACT:
            assert getattr(jumped, field) == getattr(dense, field), field
        assert jumped.max_true_temp_c == pytest.approx(
            dense.max_true_temp_c, abs=1e-3
        )
        assert jumped.elapsed_s == pytest.approx(
            dense.elapsed_s, rel=1e-9, abs=1e-12
        )

    def test_power_corruption_forces_dense_stepping(self, gcc, monkeypatch):
        # A fault-corrupted power vector must disqualify both the stride
        # and the fused kernel: the poisoned step has to execute (and
        # trip the health guard) densely, never inside a jump.
        jumps = []
        original = ExponentialSolver.fast_forward

        def counting(self, power, dt, steps, copy=True):
            jumps.append(steps)
            return original(self, power, dt, steps, copy=copy)

        monkeypatch.setattr(ExponentialSolver, "fast_forward", counting)

        spans = []
        run_original = DenseSpanTask.run

        def counting_run(self, solver):
            spans.append(self.count)
            return run_original(self, solver)

        monkeypatch.setattr(DenseSpanTask, "run", counting_run)
        plan = FaultPlan(corrupt_power_at_step=5)
        with pytest.raises(NumericalError):
            _run(gcc, fast_forward=True, fault_plan=plan)
        assert not jumps
        assert not spans


class TestOperatorCacheAudit:
    """Variable-stride spans must never alias cached operators."""

    def test_propagator_power_key_includes_stride(self, gcc):
        # (2dt, k) and (dt, 2k) describe the same span duration; a cache
        # keyed by span length alone would collide them.  Both entries
        # must coexist, and the per-stride operators must be the
        # distinct matrices (equal only in exact arithmetic).
        engine = SimulationEngine(gcc, policy=NoDtmPolicy(), seed=0)
        network = engine._hotspot.network
        solver = ExponentialSolver(
            network, np.full(network.size, 45.0)
        )
        dt = 1.0e-6
        a_fine, b_fine = solver._propagator_power(dt, 8)
        a_coarse, b_coarse = solver._propagator_power(2.0 * dt, 4)
        assert solver._power_cache.get((solver._dt_key(dt), 8)) is not None
        assert (
            solver._power_cache.get((solver._dt_key(2.0 * dt), 4)) is not None
        )
        # Same span: the operators agree to float error...
        np.testing.assert_allclose(a_fine, a_coarse, rtol=1e-9)
        # ...but are separately cached objects, not one aliased entry.
        assert a_fine is not a_coarse
        assert b_fine is not b_coarse

    def test_segmented_spans_round_trip_through_cache(self, gcc):
        # The stride splits a span into n equal segments plus a
        # remainder; re-requesting each (dt, k_i) must reproduce the
        # first computation exactly (cache hit, same object).
        engine = SimulationEngine(gcc, policy=NoDtmPolicy(), seed=0)
        network = engine._hotspot.network
        solver = ExponentialSolver(
            network, np.full(network.size, 45.0)
        )
        dt = 3.3e-6
        first = [solver._propagator_power(dt, k) for k in (7, 7, 9)]
        second = [solver._propagator_power(dt, k) for k in (7, 7, 9)]
        for (a1, b1), (a2, b2) in zip(first, second):
            assert a1 is a2
            assert b1 is b2


class TestStepKernelKnob:
    def test_resolve_modes(self):
        assert resolve_step_kernel("off") is None
        assert resolve_step_kernel("numpy") == "numpy"
        expected = "numba" if numba_available() else "numpy"
        assert resolve_step_kernel("auto") == expected

    @pytest.mark.skipif(
        numba_available(), reason="numba installed: explicit mode is valid"
    )
    def test_explicit_numba_without_numba_fails_loudly(self):
        with pytest.raises(SimulationError, match="numba"):
            resolve_step_kernel("numba")

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            resolve_step_kernel("cuda")
        with pytest.raises(SimulationError):
            EngineConfig(step_kernel="cuda")

    def test_env_default_resolution(self, monkeypatch):
        monkeypatch.delenv(STEP_KERNEL_ENV, raising=False)
        assert EngineConfig().resolved_step_kernel() == "auto"
        monkeypatch.setenv(STEP_KERNEL_ENV, "numpy")
        assert EngineConfig().resolved_step_kernel() == "numpy"
        # The explicit field beats the environment.
        assert (
            EngineConfig(step_kernel="off").resolved_step_kernel() == "off"
        )
        monkeypatch.setenv(STEP_KERNEL_ENV, "sideways")
        with pytest.raises(SimulationError, match=STEP_KERNEL_ENV):
            EngineConfig().resolved_step_kernel()


class TestFusedSensing:
    def test_hottest_only_fast_path_matches_dict_path(self, gcc, monkeypatch):
        # hottest_only policies receive the sensor maximum directly;
        # forcing the per-block dict path must not change one bit of the
        # result (same noise stream, same comparator float).
        fast = _run(gcc, FetchGatingPolicy, fast_forward=False)
        monkeypatch.setattr(FetchGatingPolicy, "hottest_only", False)
        dict_path = _run(gcc, FetchGatingPolicy, fast_forward=False)
        _assert_bit_identical(fast, dict_path)
