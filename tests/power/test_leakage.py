"""Temperature-dependent leakage."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PowerModelError
from repro.power import LeakageParameters, leakage_power


@pytest.fixture(scope="module")
def params():
    return LeakageParameters()


def test_reference_point_is_identity(params):
    assert leakage_power(2.0, 1.0, params.reference_temp_c, params) == pytest.approx(2.0)


def test_exponential_growth_with_temperature(params):
    base = leakage_power(1.0, 1.0, 85.0, params)
    hot = leakage_power(1.0, 1.0, 125.0, params)
    assert hot / base == pytest.approx(math.exp(params.beta_per_k * 40.0))


def test_roughly_doubles_per_40_kelvin(params):
    # ITRS-style 130 nm sensitivity.
    ratio = leakage_power(1.0, 1.0, 125.0, params) / leakage_power(
        1.0, 1.0, 85.0, params
    )
    assert 1.7 < ratio < 2.3


def test_scales_with_voltage(params):
    assert leakage_power(1.0, 0.85, 85.0, params) == pytest.approx(0.85)


def test_zero_reference_gives_zero(params):
    assert leakage_power(0.0, 1.0, 125.0, params) == 0.0


def test_rejects_negative_reference(params):
    with pytest.raises(PowerModelError):
        leakage_power(-1.0, 1.0, 85.0, params)


def test_rejects_non_positive_voltage(params):
    with pytest.raises(PowerModelError):
        leakage_power(1.0, 0.0, 85.0, params)


def test_rejects_bad_parameters():
    with pytest.raises(PowerModelError):
        LeakageParameters(beta_per_k=0.0)
    with pytest.raises(PowerModelError):
        LeakageParameters(voltage_exponent=-1.0)


@given(
    t1=st.floats(40.0, 120.0),
    t2=st.floats(40.0, 120.0),
)
def test_property_monotone_in_temperature(t1, t2):
    params = LeakageParameters()
    lo, hi = sorted((t1, t2))
    p_lo = leakage_power(1.0, 1.0, lo, params)
    p_hi = leakage_power(1.0, 1.0, hi, params)
    assert p_lo <= p_hi + 1e-12


@given(ref=st.floats(0.0, 10.0), v=st.floats(0.5, 1.0))
def test_property_linear_in_reference(ref, v):
    params = LeakageParameters()
    assert leakage_power(ref, v, 95.0, params) == pytest.approx(
        ref * leakage_power(1.0, v, 95.0, params)
    )
