"""The coupled simulation engine."""

from __future__ import annotations

import os
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dtm.base import DtmCommand, DtmPolicy
from repro.dtm.none import NoDtmPolicy
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import SimulationError, ThermalViolationError
from repro.obs import events as obs_events
from repro.obs import heartbeat as obs_heartbeat
from repro.obs import metrics as obs_metrics
from repro.obs import runctx as obs_runctx
from repro.obs import trace as obs_trace
from repro.floorplan.alpha21364 import build_alpha21364_floorplan
from repro.floorplan.floorplan import Floorplan
from repro.power.model import PowerModel
from repro.sensors.array import SensorArray
from repro.sim.config import (
    COMPILED_TRACE_OFF,
    COMPILED_TRACE_VERIFY,
    DVS_MODE_STALL,
    POWER_PATH_VECTOR,
    STEP_KERNEL_NUMBA,
    EngineConfig,
)
from repro.sim.contract import SimEngine, drive
from repro.sim.kernel import DenseSpanTask, resolve_step_kernel
from repro.sim.results import RunResult, TracePoint
from repro.sim.warmup import initial_temperatures
from repro.thermal.hotspot import HotSpotModel
from repro.thermal.package import ThermalPackage
from repro.uarch.interval import DtmActuation, IntervalPerformanceModel
from repro.workloads.compiler import CompiledIntervalModel, compile_workload
from repro.workloads.workload import Workload

STEP_TIMING_ENV = "REPRO_STEP_TIMING"
"""Back-compat alias: forces the per-section step-timing breakdown
(sense / policy / perf / power / thermal) on even when the wider
observability layer is off.  The timings now record through
:mod:`repro.obs.trace` as ``step.<section>`` spans; :func:`step_timers`
reads the same table.  Enabling ``REPRO_OBS`` switches the breakdown on
too; the env var remains for ``python -m repro bench --profile``
workflows that want timings without the rest of the telemetry."""

STEP_SECTIONS = ("sense", "policy", "perf", "power", "thermal", "kernel")
"""The per-section names :func:`step_timers` reports.

``kernel`` is a *boundary* span: it covers whole fused dense spans
(:class:`~repro.sim.kernel.DenseSpanTask` requests) whose inner
perf/power/thermal work records under the other sections too, so it
must not be added to them when computing a total."""


def step_timing_enabled() -> bool:
    """True when the per-section step-timing breakdown is switched on
    (``REPRO_STEP_TIMING=1`` or the observability layer is enabled)."""
    if os.environ.get(STEP_TIMING_ENV, "") not in ("", "0"):
        return True
    return obs_metrics.enabled()


def _timed(section: str, fn):
    """Wrap a hot-loop callable so its cumulative time and call count
    land in the ``step.<section>`` span totals.  Only installed when
    timing is enabled, so the normal hot loop carries no
    instrumentation branches at all."""
    name = "step." + section
    record = obs_trace.record

    def wrapper(*args, **kwargs):
        t0 = perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            record(name, perf_counter() - t0)

    return wrapper


def step_timers() -> Dict[str, Tuple[float, int]]:
    """Accumulated ``{section: (seconds, calls)}`` since the last reset.

    A back-compat view over :func:`repro.obs.trace.totals` restricted
    to the ``step.*`` spans, with the prefix stripped.
    """
    totals = obs_trace.totals()
    return {
        section: totals["step." + section]
        for section in STEP_SECTIONS
        if "step." + section in totals
    }


def reset_step_timers() -> None:
    """Zero the step-timing accumulators (all span totals)."""
    obs_trace.reset_totals()


class TraceBuffer:
    """Growable chunked column store for the per-step trace.

    ``record_trace`` runs used to append one :class:`TracePoint`
    dataclass per thermal step -- hundreds of thousands of small Python
    objects per run.  This buffer stores the numeric columns in
    preallocated array chunks (the hottest block as its index into the
    engine's block order) and materialises the ``TracePoint`` list once
    at the end of the run.

    The class-level ``created`` counter exists for the regression test
    asserting that runs with tracing *disabled* never construct a
    buffer (zero trace-buffer growth on the default path).
    """

    CHUNK = 4096
    COLUMNS = 7  # time, hot index, hot temp, gating, voltage, enabled, instr

    created = 0

    def __init__(self, block_names: Tuple[str, ...]):
        type(self).created += 1
        self._block_names = block_names
        self._chunks: List[np.ndarray] = []
        self._fill = TraceBuffer.CHUNK  # force a chunk on first append

    def append(
        self,
        time_s: float,
        hot_index: int,
        hot_temp_c: float,
        gating_fraction: float,
        voltage: float,
        clock_enabled_fraction: float,
        instructions: float,
    ) -> None:
        fill = self._fill
        if fill == TraceBuffer.CHUNK:
            self._chunks.append(
                np.empty((TraceBuffer.CHUNK, TraceBuffer.COLUMNS))
            )
            fill = 0
        row = self._chunks[-1][fill]
        row[0] = time_s
        row[1] = hot_index
        row[2] = hot_temp_c
        row[3] = gating_fraction
        row[4] = voltage
        row[5] = clock_enabled_fraction
        row[6] = instructions
        self._fill = fill + 1

    def __len__(self) -> int:
        if not self._chunks:
            return 0
        return (len(self._chunks) - 1) * TraceBuffer.CHUNK + self._fill

    def points(self) -> List[TracePoint]:
        """Materialise the stored rows as :class:`TracePoint` objects."""
        names = self._block_names
        out: List[TracePoint] = []
        last = len(self._chunks) - 1
        for index, chunk in enumerate(self._chunks):
            rows = self._fill if index == last else TraceBuffer.CHUNK
            for r in range(rows):
                row = chunk[r]
                out.append(
                    TracePoint(
                        time_s=float(row[0]),
                        hottest_block=names[int(row[1])],
                        hottest_temp_c=float(row[2]),
                        gating_fraction=float(row[3]),
                        voltage=float(row[4]),
                        clock_enabled_fraction=float(row[5]),
                        instructions=float(row[6]),
                    )
                )
        return out


class SimulationEngine(SimEngine):
    """Runs one workload under one DTM policy.

    All substrate objects can be injected for experiments; the defaults
    reproduce the paper's setup (Alpha 21364 floorplan, low-cost package,
    Alpha power budget, 10 kHz noisy sensors).

    The inner loop is array-native: temperatures stay in the thermal
    solver's node vector, per-block power is evaluated with
    :meth:`~repro.power.model.PowerModel.block_powers_vector`, and block
    names are translated to vector indices exactly once per run.  Per-block
    ``{name: value}`` mappings are built only at the 10 kHz sensor sampling
    boundary (and in the ``power_path="mapping"`` regression mode).
    """

    def __init__(
        self,
        workload: Workload,
        policy: Optional[DtmPolicy] = None,
        floorplan: Optional[Floorplan] = None,
        package: Optional[ThermalPackage] = None,
        power_model: Optional[PowerModel] = None,
        hotspot: Optional[HotSpotModel] = None,
        sensors: Optional[SensorArray] = None,
        thresholds: Optional[ThermalThresholds] = None,
        config: Optional[EngineConfig] = None,
        seed: int = 0,
    ):
        self._workload = workload
        self._floorplan = (
            floorplan if floorplan is not None else build_alpha21364_floorplan()
        )
        # An injected HotSpotModel (read-only after construction) lets
        # batch runners share one thermal network across many engines
        # instead of re-assembling it per run; it must have been built
        # from the same floorplan.
        self._hotspot = (
            hotspot if hotspot is not None else HotSpotModel(self._floorplan, package)
        )
        self._power = (
            power_model if power_model is not None else PowerModel(self._floorplan)
        )
        self._config = config if config is not None else EngineConfig()
        self._seed = seed
        # A fault plan's sensor degradation applies to the default array
        # of targeted runs only; an explicitly injected array is the
        # caller's responsibility.
        plan = self._config.fault_plan
        sensor_faults = (
            plan.sensor_faults
            if plan is not None and plan.targets(seed)
            else ()
        )
        self._sensors = (
            sensors
            if sensors is not None
            else SensorArray(
                self._floorplan, seed=seed, faults=sensor_faults or None
            )
        )
        self._policy = policy if policy is not None else NoDtmPolicy(
            self._power.technology.vdd_nominal
        )
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        self._tech = self._power.technology
        self._vf = self._power.vf_curve
        network = self._hotspot.network
        if self._power.block_names != network.block_names:
            raise SimulationError(
                "power model and thermal network disagree on the block set"
            )
        # Name -> index translation, computed exactly once per engine: the
        # inner loop only ever touches arrays in this order.
        self._block_names = network.block_names
        self._block_pos: Dict[str, int] = {
            name: i for i, name in enumerate(self._block_names)
        }
        self._node_idx = network.block_node_indices
        self._domain_pos: Dict[str, np.ndarray] = {}

    @property
    def workload(self) -> Workload:
        """The workload under simulation."""
        return self._workload

    @property
    def hotspot(self) -> HotSpotModel:
        """The thermal model."""
        return self._hotspot

    @property
    def power_model(self) -> PowerModel:
        """The power model."""
        return self._power

    @property
    def policy(self) -> DtmPolicy:
        """The DTM policy under test."""
        return self._policy

    @property
    def config(self) -> EngineConfig:
        """Engine configuration."""
        return self._config

    def compute_initial_temperatures(self) -> np.ndarray:
        """No-DTM steady-state node temperatures for this workload."""
        return initial_temperatures(self._workload, self._hotspot, self._power)

    def _domain_positions(self, domain: str) -> np.ndarray:
        """Vector positions of a clock domain's blocks (cached)."""
        cached = self._domain_pos.get(domain)
        if cached is None:
            from repro.dtm.domains import CLOCK_DOMAINS

            cached = np.array(
                [
                    self._block_pos[block]
                    for block in CLOCK_DOMAINS[domain]
                    if block in self._block_pos
                ],
                dtype=np.intp,
            )
            self._domain_pos[domain] = cached
        return cached

    # --- main loop ---------------------------------------------------------------

    def run(
        self,
        instructions: int,
        initial: Optional[np.ndarray] = None,
        settle_time_s: float = 0.0,
    ) -> RunResult:
        """Simulate until ``instructions`` have committed.

        Parameters
        ----------
        instructions:
            Commit budget; the run's elapsed time is interpolated within
            the final step so slowdown comparisons are exact.
        initial:
            Node temperature vector to start from; defaults to the
            workload's no-DTM steady state.
        settle_time_s:
            Length of an unmeasured lead-in with the policy active,
            standing in for the tail of the paper's 300 M-cycle warmup:
            statistics (including violations) start once the policy has
            pulled the chip from its unmanaged steady state into the
            regulated band.
        """
        return drive(self.iter_run(instructions, initial, settle_time_s))

    def reset(self) -> None:
        """Restore run-to-run mutable state to construction values.

        The solver and performance model are rebuilt inside every
        :meth:`iter_run`; the only state that persists across runs is
        the sensor array's noise-stream position and the policy, so a
        ``reset()`` makes a repeated run bit-identical to the first.
        """
        self._sensors.reset()
        self._policy.reset()

    def iter_run(
        self,
        instructions: int,
        initial: Optional[np.ndarray] = None,
        settle_time_s: float = 0.0,
    ):
        """Generator form of :meth:`run` for lockstep batch execution.

        Yields one thermal-step request ``(solver, power, dt, count)``
        per suspension -- ``count == 1`` for a plain step, ``count > 1``
        for a constant-power fast-forward -- and expects the stepped
        node-temperature vector to be sent back (the solver's own state
        array, as returned by ``step(..., copy=False)``).  Everything
        else (sensing, policy, power, accounting) runs inside the
        generator, so a driver that services requests from many runs
        with one batched operation (see :mod:`repro.sim.lockstep`)
        produces results identical to :meth:`run`.  The :class:`RunResult`
        is the generator's return value (``StopIteration.value``).
        """
        if instructions <= 0:
            raise SimulationError("instruction budget must be > 0")
        if settle_time_s < 0.0:
            raise SimulationError("settle time must be >= 0")
        if initial is None:
            initial = self.compute_initial_temperatures()
        network = self._hotspot.network
        solver_temps = np.array(initial, dtype=float, copy=True)
        from repro.thermal.solver import ExponentialSolver, make_transient_solver

        solver = make_transient_solver(
            network, solver_temps, self._config.thermal_stepper
        )
        self._policy.reset()
        self._emit(
            "run.start",
            0.0,
            instructions=float(instructions),
            settle_time_s=settle_time_s,
        )

        block_names = self._block_names
        n_blocks = len(block_names)
        pos = self._block_pos
        node_idx = self._node_idx
        use_vector = self._config.power_path == POWER_PATH_VECTOR
        # Compiled step pipeline: lower the workload's phase schedule to
        # contiguous arrays once per run and drive the loop from reused
        # CompiledSample activity vectors (bit-identical to the
        # interpreted path; see repro/workloads/compiler.py).  The
        # mapping power path keeps the interpreted model -- it consumes
        # per-block dicts by design.
        trace_mode = self._config.resolved_compiled_trace()
        compiled = use_vector and trace_mode != COMPILED_TRACE_OFF
        verify_compiled = trace_mode == COMPILED_TRACE_VERIFY
        if compiled:
            schedule = compile_workload(self._workload, block_names)
            perf: IntervalPerformanceModel = CompiledIntervalModel(
                schedule, loop=True, verify=verify_compiled
            )
        else:
            schedule = None
            perf = IntervalPerformanceModel(self._workload.phases, loop=True)

        nominal_v = self._tech.vdd_nominal
        command = DtmCommand(gating_fraction=0.0, voltage=nominal_v)
        voltage = nominal_v
        frequency = self._tech.frequency_nominal
        pending_voltage: Optional[float] = None
        pending_effective_s = 0.0

        time_s = 0.0
        measure_start_s = 0.0
        measuring = settle_time_s == 0.0
        done = 0.0
        cycles_f = 0.0
        violations = 0
        max_temp = -1e9
        hottest_block = block_names[0]
        above_trigger_s = 0.0
        # Always-on local telemetry: plain int/bool/float updates on
        # quantities the loop already computes, so the disabled path
        # stays bit-identical and allocation-free.  Published into the
        # obs registry in one batch after the loop.
        above_trigger = False
        trigger_crossings = 0
        cmd_active = False
        dtm_engagements = 0
        engaged_s = 0.0
        ff_spans_taken = 0
        ff_spans_rejected = 0
        sensor_samples = 0
        switches = 0
        migrations = 0
        previous_migration = None
        low_time_s = 0.0
        stall_s = 0.0
        gating_time_weighted = 0.0
        energy_j = 0.0
        no_progress_steps = 0
        trace = TraceBuffer(block_names) if self._config.record_trace else None
        actuation: Optional[DtmActuation] = None
        actuation_cmd: Optional[DtmCommand] = None
        actuation_f_rel = -1.0
        gate_cmd: Optional[DtmCommand] = None
        gate_vec: Optional[np.ndarray] = None

        step_cycles = self._config.thermal_step_cycles
        switch_time = self._config.dvs_switch_time_s
        stall_mode = self._config.dvs_mode == DVS_MODE_STALL
        max_no_progress = self._config.max_no_progress_steps
        raise_on_violation = self._config.raise_on_violation
        trigger_c = self._thresholds.trigger_c
        emergency_c = self._thresholds.emergency_c

        # Bound methods and constants hoisted out of the loop: at ~10 us
        # of work per thermal step, repeated attribute lookups are a
        # measurable fraction of the whole run.
        sensors_due = self._sensors.due
        sensors_sample = self._sensors.sample
        sampling_period_s = self._sensors.sampling_period_s
        policy_update = self._policy.update
        vf_frequency = self._vf.frequency
        f_nominal = self._tech.frequency_nominal
        power_vector_fn = self._power.block_powers_vector
        perf_advance = perf.advance
        # Vectorized sensor sampling: the whole array is read with a few
        # NumPy ops straight from the block-temperature buffer, bit-
        # identical to per-sensor scalar reads.  Faulted arrays (and
        # injected arrays in a different block order) keep the scalar
        # path with its per-sensor fault handling.
        vector_sensors = (
            use_vector
            and self._sensors.vector_eligible
            and tuple(self._sensors.block_names) == tuple(block_names)
        )
        sensors_sample_vector = (
            self._sensors.sample_vector if vector_sensors else None
        )
        # Fused sensing: a policy that consumes only the hottest reading
        # (every max-only comparator policy in the tree declares
        # ``hottest_only``) gets the array maximum directly -- same
        # per-sensor values, no per-sample dict.  Bit-identical because
        # the maximum of identical values is order-independent.
        hottest_policy = vector_sensors and self._policy.hottest_only
        sensors_sample_hottest = (
            self._sensors.sample_hottest if hottest_policy else None
        )
        policy_update_hottest = (
            self._policy.update_hottest if hottest_policy else None
        )
        timing = step_timing_enabled()
        if timing:
            sensors_sample = _timed("sense", sensors_sample)
            if sensors_sample_vector is not None:
                sensors_sample_vector = _timed("sense", sensors_sample_vector)
            if sensors_sample_hottest is not None:
                sensors_sample_hottest = _timed(
                    "sense", sensors_sample_hottest
                )
                policy_update_hottest = _timed("policy", policy_update_hottest)
            policy_update = _timed("policy", policy_update)
            power_vector_fn = _timed("power", power_vector_fn)
            perf_advance = _timed("perf", perf_advance)

        temps_vec = solver.temperatures
        # Preallocated buffers reused every step: block temperatures are
        # gathered with np.take(..., out=) instead of fancy indexing, so
        # the steady-state loop allocates no per-step arrays at all.
        block_temps = np.empty(n_blocks)
        temps_vec.take(node_idx, out=block_temps)
        act_vec = np.zeros(n_blocks)
        zero_acts = np.zeros(n_blocks)
        power_buffer = np.zeros(network.size)

        # Deterministic solver-corruption fault: poison the power vector
        # at one configured execution step so the solver's numerical
        # guards (and the sweep supervisor above) are exercised end to
        # end.  Counts execution steps only, like the plan documents.
        plan = self._config.fault_plan
        if (
            plan is not None
            and plan.targets(self._seed)
            and plan.corrupt_power_at_step is not None
        ):
            fault_corrupt_step: Optional[int] = plan.corrupt_power_at_step
            fault_poison = plan.poison
        else:
            fault_corrupt_step = None
            fault_poison = 0.0
        exec_steps = 0
        # Event-driven stepping: between DTM decision points (sensor
        # samples) the dynamic power cannot change -- same phase run,
        # actuation and operating point until the next sample -- so only
        # leakage drifts.  The stride below jumps such spans in closed
        # form after proving, via the solver's span envelope widened by
        # the worst-case leakage drift, that the jump crosses no
        # trigger/emergency threshold (docs/MODELING.md section 8).
        # One attempt is made per decision region: the flag arms at
        # every sensor sample and disarms when an attempt is rejected,
        # so a rejected region falls through to dense stepping (or the
        # fused kernel) instead of re-probing the envelope every step.
        ff_enabled = (
            self._config.fast_forward
            and isinstance(solver, ExponentialSolver)
            and trace is None
            and use_vector
            and fault_corrupt_step is None
        )
        stride_ok = True
        stride_tol = self._config.stride_drift_tol_w
        stride_slack_w = 1e-9
        if ff_enabled:
            probe = solver.span_probe(node_idx)
            dynamic_vector_fn = self._power.dynamic_vector_w
            leakage_vector_fn = self._power.leakage_vector_w
            stride_dyn_w = np.empty(n_blocks)
            stride_blocks = np.empty(n_blocks)
            stride_leak0_w = np.empty(n_blocks)
            stride_leak_hi = np.empty(n_blocks)
            stride_leak_lo = np.empty(n_blocks)
            stride_d_hi = np.empty(n_blocks)
            stride_d_lo = np.empty(n_blocks)
            stride_b_hi = np.empty(n_blocks)
            stride_b_lo = np.empty(n_blocks)
            stride_tmp = np.empty(n_blocks)
            # Drift-band cache: while consecutive attempts keep passing
            # the a-posteriori closure at an unchanged operating point,
            # the proven band in ``stride_d_hi``/``stride_d_lo`` is
            # reused instead of re-guessed from a fresh unwidened
            # envelope (the closure re-verifies it every attempt, so
            # the cache can go stale but never unsound).
            stride_band_ok = False
            stride_band_act = None
            stride_band_v = 0.0
            stride_band_f = 0.0
            stride_band_blocks = np.empty(n_blocks)
            # Stacked (upper; lower) rows so each envelope's leakage
            # evaluates in one broadcast call instead of two, and the
            # (hi; lo) perturbed node powers so both widened envelopes
            # come from one stacked probe pass.
            stride_pair = np.empty((2, n_blocks))
            stride_leak_pair = np.empty((2, n_blocks))
            stride_power_pair = np.zeros((2, network.size))
        # Fused dense spans: when no decision can occur before the next
        # sensor sample (the stride disarmed, so the remaining steps run
        # dense), the span executes as one DenseSpanTask request through
        # the contract instead of one generator round-trip per step.
        # Bit-identical to per-step dispatch by construction -- the task
        # body is the per-step pipeline below, verbatim.
        kernel_backend = resolve_step_kernel(
            self._config.resolved_step_kernel()
        )
        kernel_enabled = (
            kernel_backend is not None
            and use_vector
            and trace is None
            and not raise_on_violation
            and fault_corrupt_step is None
        )
        if kernel_enabled and kernel_backend == STEP_KERNEL_NUMBA:
            # numba is importable, but the JIT lowering of the solver
            # apply is still an open ROADMAP item: run the numpy span
            # loop and say so in telemetry rather than silently.
            if obs_metrics.enabled():
                obs_events.emit(
                    "engine.step_kernel_numba_fallback", backend="numpy"
                )
        solver_step_kernel = (
            _timed("thermal", solver.step) if timing else solver.step
        )
        # The interval model memoizes its activity dicts, so the same
        # dict object comes back for thousands of consecutive steps;
        # translating it to vector order once per distinct dict (keyed by
        # identity, with the dict itself pinned in the entry so ids stay
        # unique) removes a per-step Python loop over the blocks.
        act_cache: Dict[int, tuple] = {}

        def block_temps_mapping() -> Dict[str, float]:
            return {
                name: float(block_temps[i]) for i, name in enumerate(block_names)
            }

        def idle_step_power():
            """Full-node power vector (and block total) with zero
            switching activity at the current operating point."""
            if use_vector:
                blocks_w = power_vector_fn(
                    zero_acts, voltage, frequency, block_temps, check=False
                )
                power_buffer[node_idx] = blocks_w
                return power_buffer, float(blocks_w.sum())
            zero = {name: 0.0 for name in block_names}
            powers = self._power.block_powers_reference(
                zero, voltage, frequency, block_temps_mapping()
            )
            return network.power_vector(powers), float(sum(powers.values()))

        def account_thermal(dt_acct: float, power_sum_w: float) -> None:
            """Measured-window statistics shared by execution steps and
            stall/migration sub-steps (which the accounting previously
            skipped -- an emergency reached during a 10 us stall window
            was silently missed)."""
            nonlocal max_temp, hottest_block, violations
            nonlocal above_trigger_s, low_time_s, energy_j
            nonlocal above_trigger, trigger_crossings
            step_max = float(block_temps.max())
            if step_max > max_temp:
                # argmax only when the maximum moved: the hottest block's
                # identity changes rarely, its temperature every step.
                max_temp = step_max
                hottest_block = block_names[int(np.argmax(block_temps))]
            if step_max > emergency_c:
                violations += 1
                if raise_on_violation:
                    raise ThermalViolationError(
                        step_max,
                        emergency_c,
                        time_s,
                        block_names[int(np.argmax(block_temps))],
                    )
            if step_max > trigger_c:
                above_trigger_s += dt_acct
                if not above_trigger:
                    above_trigger = True
                    trigger_crossings += 1
            else:
                above_trigger = False
            if voltage < nominal_v - 1e-12:
                low_time_s += dt_acct
            energy_j += power_sum_w * dt_acct

        def append_trace() -> None:
            # Callers guard on ``trace is not None`` so the common
            # no-trace run pays no call at all; rows land in the chunked
            # TraceBuffer, not per-step Python objects.
            k = int(np.argmax(block_temps))
            trace.append(
                time_s,
                k,
                float(block_temps[k]),
                command.gating_fraction,
                voltage,
                command.clock_enabled_fraction,
                done,
            )

        def stalled_substep(dt_sub: float):
            """Advance the thermal state through a stall window (DVS
            switch or migration flush) at idle power, with full thermal
            accounting and trace coverage.  A sub-generator: callers
            ``yield from`` it so the thermal step is serviced by the
            outer driver like any other."""
            nonlocal time_s, stall_s
            power, power_sum = idle_step_power()
            stepped = yield (solver, power, dt_sub, 1)
            stepped.take(node_idx, out=block_temps)
            time_s += dt_sub
            if measuring:
                stall_s += dt_sub
                account_thermal(dt_sub, power_sum)
            if trace is not None:
                append_trace()

        def run_dense_span(count: int):
            """Execute ``count`` fused dense steps inside the engine.

            The body is the main loop's per-step pipeline, verbatim --
            same callables, same buffers, same order -- minus the events
            that cannot occur before the next sensor sample (sensing,
            policy updates, actuation rebuilds, voltage switches,
            migration transitions), which is exactly what the
            invocation guards exclude.  The step-kernel equivalence
            suite pins bit-identity against the per-step anchor
            (``step_kernel="off"``).
            """
            nonlocal time_s, done, cycles_f, exec_steps, no_progress_steps
            nonlocal gating_time_weighted, engaged_s
            stepped = temps_vec
            gating = command.gating_fraction
            for _ in range(count):
                span_sample = perf_advance(step_cycles, actuation)
                if compiled:
                    span_acts = span_sample.acts
                else:
                    acts_map = span_sample.activities
                    entry = act_cache.get(id(acts_map))
                    if entry is not None and entry[0] is acts_map:
                        span_acts = entry[1]
                    else:
                        span_acts = np.zeros(n_blocks)
                        for name, value in acts_map.items():
                            p = pos.get(name)
                            if p is not None:
                                span_acts[p] = value
                        if len(act_cache) >= 2048:
                            act_cache.clear()
                        act_cache[id(acts_map)] = (acts_map, span_acts)
                if command.migration is not None:
                    source, target, fraction = command.migration
                    act_vec[:] = span_acts
                    moved = act_vec[pos[source]] * fraction
                    act_vec[pos[source]] -= moved
                    act_vec[pos[target]] = min(
                        1.0, act_vec[pos[target]] + moved
                    )
                    span_acts = act_vec
                blocks = power_vector_fn(
                    span_acts, voltage, frequency, block_temps, clock_gate,
                    check=False,
                )
                power_buffer[node_idx] = blocks
                span_power_sum = float(blocks.sum())
                exec_steps += 1
                stepped = solver_step_kernel(power_buffer, dt, copy=False)
                stepped.take(node_idx, out=block_temps)
                if span_sample.instructions <= 0.0:
                    no_progress_steps += 1
                    if no_progress_steps >= max_no_progress:
                        raise SimulationError(
                            f"no instructions committed in "
                            f"{no_progress_steps} consecutive thermal "
                            f"steps (is the clock fully gated?); raise "
                            f"max_no_progress_steps if this workload "
                            f"legitimately idles this long"
                        )
                else:
                    no_progress_steps = 0
                remaining = instructions - done
                if span_sample.instructions <= 0.0:
                    dt_measured = dt
                    cycles_f += step_cycles
                elif span_sample.instructions >= remaining:
                    fraction = remaining / span_sample.instructions
                    dt_measured = dt * fraction
                    cycles_f += step_cycles * fraction
                    done = instructions
                else:
                    dt_measured = dt
                    cycles_f += step_cycles
                    done += span_sample.instructions
                time_s += dt_measured
                account_thermal(dt_measured, span_power_sum)
                gating_time_weighted += gating * dt_measured
                if cmd_active:
                    engaged_s += dt_measured
                if done >= instructions:
                    break
            return stepped

        # Progress heartbeat: the publisher (if a supervisor registered
        # one) is captured once per run; with heartbeats off the hook
        # below is a single ``is not None`` compare per sensor sample.
        # Publishing reads loop locals only -- no physics state is
        # touched, so results stay bit-identical either way.
        hb_pub = obs_heartbeat.active()
        hb_publish = hb_pub.publish if hb_pub is not None else None

        while done < instructions:
            # --- sensing and policy -------------------------------------------
            if sensors_due(time_s):
                sensor_samples += 1
                stride_ok = True
                # Every stride and fused dense span stops strictly
                # before the next sensor sample, so this branch is hit
                # on all execution paths, kernel or not.
                if hb_publish is not None:
                    hb_publish(done, time_s, exec_steps, max_temp, cmd_active)
                if sensors_sample_hottest is not None:
                    new_command = policy_update_hottest(
                        sensors_sample_hottest(block_temps, time_s),
                        time_s,
                        sampling_period_s,
                    )
                elif sensors_sample_vector is not None:
                    readings = sensors_sample_vector(block_temps, time_s)
                    new_command = policy_update(
                        readings, time_s, sampling_period_s
                    )
                else:
                    readings = sensors_sample(block_temps_mapping(), time_s)
                    new_command = policy_update(
                        readings, time_s, sampling_period_s
                    )
                new_active = (
                    new_command.gating_fraction > 0.0
                    or new_command.clock_enabled_fraction < 1.0
                    or bool(new_command.domain_gating)
                    or new_command.migration is not None
                    or abs(new_command.voltage - nominal_v) > 1e-12
                )
                if new_active and not cmd_active:
                    dtm_engagements += 1
                cmd_active = new_active
                if abs(new_command.voltage - voltage) > 1e-12 and (
                    pending_voltage is None
                    or abs(new_command.voltage - pending_voltage) > 1e-12
                ):
                    if measuring:
                        switches += 1
                    if stall_mode:
                        if switch_time > 0.0:
                            yield from stalled_substep(switch_time)
                        voltage = new_command.voltage
                        frequency = vf_frequency(voltage)
                        pending_voltage = None
                    else:
                        pending_voltage = new_command.voltage
                        pending_effective_s = time_s + switch_time
                command = new_command

            if pending_voltage is not None and time_s >= pending_effective_s:
                voltage = pending_voltage
                frequency = vf_frequency(voltage)
                pending_voltage = None

            # --- activity-migration transitions --------------------------------
            if command.migration != previous_migration:
                previous_migration = command.migration
                if measuring:
                    migrations += 1
                if self._config.migration_time_s > 0.0:
                    yield from stalled_substep(self._config.migration_time_s)

            # --- one thermal step of execution --------------------------------
            f_rel = frequency / f_nominal
            if command is not actuation_cmd or f_rel != actuation_f_rel:
                # The policy holds its command steady between 10 kHz sensor
                # samples (~30 thermal steps), so reuse the validated
                # actuation object while nothing changed.
                actuation = DtmActuation(
                    gating_fraction=command.gating_fraction,
                    relative_frequency=f_rel,
                    clock_enabled_fraction=command.clock_enabled_fraction,
                    domain_gating=command.domain_gating,
                )
                actuation_cmd = command
                actuation_f_rel = f_rel
            sample = perf_advance(step_cycles, actuation)
            dt = step_cycles / frequency

            if use_vector:
                if command.domain_gating:
                    if command is not gate_cmd:
                        clock_gate = np.ones(n_blocks)
                        for domain, duty in command.domain_gating.items():
                            clock_gate[self._domain_positions(domain)] = (
                                command.clock_enabled_fraction * (1.0 - duty)
                            )
                        gate_cmd = command
                        gate_vec = clock_gate
                    else:
                        clock_gate = gate_vec
                else:
                    clock_gate = command.clock_enabled_fraction
                if compiled:
                    # The compiled model already produced the activity
                    # vector in block order (cached and read-only).
                    step_acts = sample.acts
                else:
                    acts_map = sample.activities
                    entry = act_cache.get(id(acts_map))
                    if entry is not None and entry[0] is acts_map:
                        step_acts = entry[1]
                    else:
                        step_acts = np.zeros(n_blocks)
                        for name, value in acts_map.items():
                            p = pos.get(name)
                            if p is not None:
                                step_acts[p] = value
                        if len(act_cache) >= 2048:
                            act_cache.clear()
                        act_cache[id(acts_map)] = (acts_map, step_acts)
                if command.migration is not None:
                    source, target, fraction = command.migration
                    try:
                        si = pos[source]
                        ti = pos[target]
                    except KeyError as exc:
                        raise SimulationError(
                            f"migration names unknown block {exc.args[0]!r}"
                        ) from None
                    # Cached vectors are shared; mutate a scratch copy.
                    act_vec[:] = step_acts
                    moved = act_vec[si] * fraction
                    act_vec[si] -= moved
                    act_vec[ti] = min(1.0, act_vec[ti] + moved)
                    step_acts = act_vec
                blocks_w = power_vector_fn(
                    step_acts, voltage, frequency, block_temps, clock_gate,
                    check=False,
                )
                power_buffer[node_idx] = blocks_w
                step_power = power_buffer
                power_sum = float(blocks_w.sum())
            else:
                if command.domain_gating:
                    from repro.dtm.domains import CLOCK_DOMAINS

                    clock_gate = {
                        block: command.clock_enabled_fraction * (1.0 - duty)
                        for domain, duty in command.domain_gating.items()
                        for block in CLOCK_DOMAINS[domain]
                    }
                else:
                    clock_gate = command.clock_enabled_fraction
                activities = dict(sample.activities)
                for name in block_names:
                    activities.setdefault(name, 0.0)  # e.g. spare structures
                if command.migration is not None:
                    source, target, fraction = command.migration
                    moved = activities.get(source, 0.0) * fraction
                    activities[source] = activities.get(source, 0.0) - moved
                    activities[target] = min(
                        1.0, activities.get(target, 0.0) + moved
                    )
                powers = self._power.block_powers_reference(
                    activities,
                    voltage,
                    frequency,
                    block_temps_mapping(),
                    clock_gate,
                )
                step_power = network.power_vector(powers)
                power_sum = float(sum(powers.values()))

            if fault_corrupt_step is not None and exec_steps == fault_corrupt_step:
                # Poison a copy: the shared power buffer must stay clean
                # for any later (post-recovery) steps.
                step_power = np.array(step_power, dtype=float, copy=True)
                step_power[0] = fault_poison
            exec_steps += 1

            temps_vec = yield (solver, step_power, dt, 1)
            temps_vec.take(node_idx, out=block_temps)

            # --- accounting ----------------------------------------------------
            if sample.instructions <= 0.0:
                # Zero-progress step (e.g. a fully clock-gated interval):
                # the clock still runs wall-time forward, but interpolating
                # `remaining / sample.instructions` would divide by zero
                # and the commit counter would never advance.
                no_progress_steps += 1
                if no_progress_steps >= max_no_progress:
                    raise SimulationError(
                        f"no instructions committed in {no_progress_steps} "
                        f"consecutive thermal steps (is the clock fully "
                        f"gated?); raise max_no_progress_steps if this "
                        f"workload legitimately idles this long"
                    )
            else:
                no_progress_steps = 0

            if measuring:
                remaining = instructions - done
                if sample.instructions <= 0.0:
                    dt_measured = dt
                    cycles_f += step_cycles
                elif sample.instructions >= remaining:
                    # Interpolate the final partial step for exact elapsed
                    # time.
                    fraction = remaining / sample.instructions
                    dt_measured = dt * fraction
                    cycles_f += step_cycles * fraction
                    done = instructions
                else:
                    dt_measured = dt
                    cycles_f += step_cycles
                    done += sample.instructions
                time_s += dt_measured

                account_thermal(dt_measured, power_sum)
                gating_time_weighted += command.gating_fraction * dt_measured
                if cmd_active:
                    engaged_s += dt_measured
            else:
                time_s += dt
                if time_s >= settle_time_s:
                    measuring = True
                    measure_start_s = time_s
                    # Measure the same instruction window for every
                    # technique (the paper's fixed SimPoint sample): the
                    # settle lead-in warms the *thermal* state only.
                    if compiled:
                        perf = CompiledIntervalModel(
                            schedule, loop=True, verify=verify_compiled
                        )
                    else:
                        perf = IntervalPerformanceModel(
                            self._workload.phases, loop=True
                        )
                    perf_advance = (
                        _timed("perf", perf.advance) if timing
                        else perf.advance
                    )
                    # The step's sample came from the settle-phase
                    # model; disarm the stride so the next jump is sized
                    # from the fresh measurement model's samples.
                    stride_ok = False

            if trace is not None:
                append_trace()

            # --- event-driven stride ---------------------------------------
            # A solver that has fallen back to backward Euler after a
            # numerical-health trip loses stride eligibility for the
            # rest of the run (the expm operators are suspect).
            stride_taken = False
            if (
                ff_enabled
                and stride_ok
                and not solver.fallback_active
                and sample.instructions > 0.0
                and pending_voltage is None
                and done < instructions
            ):
                # Size the jump: stop strictly before the next sensor
                # sample, the current phase's boundary, the budget's
                # final (interpolated) step and the settle crossing, so
                # every event the dense path would handle still happens
                # on a densely stepped iteration.
                k = int(
                    np.ceil(
                        (self._sensors.next_due_s - 1e-12 - time_s) / dt
                    )
                )
                k = min(k, perf.run_length(step_cycles, actuation))
                if measuring:
                    # Cap with the span's own per-interval rate, not the
                    # last sample's: a boundary-crossing step commits a
                    # blend of two phases' rates, and the jump commits
                    # the current phase's clean rate.
                    span_instr = perf.span_instructions(
                        step_cycles, actuation
                    )
                    if span_instr <= 0.0:
                        k = 0
                    else:
                        k_budget = int(
                            (instructions - done) / span_instr
                        )
                        while (
                            k_budget > 0
                            and done + k_budget * span_instr
                            >= instructions
                        ):
                            k_budget -= 1
                        k = min(k, k_budget)
                else:
                    k_settle = int((settle_time_s - time_s) / dt)
                    while (
                        k_settle > 0
                        and time_s + k_settle * dt >= settle_time_s
                    ):
                        k_settle -= 1
                    k = min(k, k_settle)
                if k >= 2:
                    # Only leakage can move the power before the next
                    # decision point: freeze the dynamic part and take a
                    # drift band for the leakage.  The band is verified
                    # a posteriori below, so where it comes from affects
                    # stride length only, never correctness -- which
                    # lets consecutive attempts reuse the last proven
                    # band (warm path) instead of re-guessing from a
                    # fresh unwidened envelope every sensor period.
                    dynamic_vector_fn(
                        step_acts, voltage, frequency, clock_gate,
                        out=stride_dyn_w,
                    )
                    # Read the frozen step power back from the engine's
                    # own node buffer: the power model's vector buffer
                    # (``blocks_w``) is shared with other engines when a
                    # lockstep batch interleaves runs over one
                    # substrate, and they clobber it between our yield
                    # and this attempt.
                    np.take(power_buffer, node_idx, out=stride_blocks)
                    np.subtract(
                        stride_blocks, stride_dyn_w, out=stride_leak0_w
                    )
                    # The cached band only predicts this span when the
                    # operating point is the one it was proven under and
                    # the frozen power has barely moved; otherwise a
                    # warm attempt would mostly fail closure after
                    # paying for the widened pass (duty-cycled policies
                    # re-actuate every period, and thrash it).
                    warm = (
                        stride_band_ok
                        and actuation is stride_band_act
                        and voltage == stride_band_v
                        and frequency == stride_band_f
                    )
                    if warm:
                        np.subtract(
                            stride_blocks, stride_band_blocks,
                            out=stride_tmp,
                        )
                        np.abs(stride_tmp, out=stride_tmp)
                        warm = float(stride_tmp.max()) <= stride_tol
                    if not warm:
                        # Cold start: guess the band from the unwidened
                        # constant-power envelope.
                        stride_band_ok = False
                        lower, upper = probe.bounds(power_buffer, k * dt)
                        stride_pair[0] = upper
                        stride_pair[1] = lower
                        leakage_vector_fn(
                            stride_pair, voltage, frequency,
                            out=stride_leak_pair,
                        )
                        np.subtract(
                            stride_leak_pair[0], stride_leak0_w,
                            out=stride_d_hi,
                        )
                        np.maximum(stride_d_hi, 0.0, out=stride_d_hi)
                        np.subtract(
                            stride_leak0_w, stride_leak_pair[1],
                            out=stride_d_lo,
                        )
                        np.maximum(stride_d_lo, 0.0, out=stride_d_lo)
                    drift = max(
                        float(stride_d_hi.max()), float(stride_d_lo.max())
                    )
                    # Split the span so each segment's frozen-power
                    # error stays below the drift tolerance; the power
                    # is re-frozen from the jumped temperatures at each
                    # segment head (exactly the value the next dense
                    # step would compute).
                    n_seg = (
                        1
                        if drift <= stride_tol
                        else int(np.ceil(drift / stride_tol))
                    )
                    if k // n_seg < 2:
                        stride_ok = False
                        ff_spans_rejected += 1
                    else:
                        k_seg = k // n_seg
                        k_extra = k - k_seg * n_seg
                        for seg in range(n_seg):
                            k_i = k_seg + (1 if seg < k_extra else 0)
                            if seg > 0:
                                blocks_seg = power_vector_fn(
                                    step_acts, voltage, frequency,
                                    block_temps, clock_gate, check=False,
                                )
                                power_buffer[node_idx] = blocks_seg
                                stride_blocks[:] = blocks_seg
                                np.subtract(
                                    stride_blocks,
                                    stride_dyn_w,
                                    out=stride_leak0_w,
                                )
                                power_sum = float(blocks_seg.sum())
                            seg_s = k_i * dt
                            if n_seg > 1:
                                # Re-frozen power or shorter span: the
                                # guess envelope does not cover this
                                # segment, so re-bound and re-guess the
                                # drift band.
                                lower, upper = probe.bounds(
                                    power_buffer, seg_s
                                )
                                stride_pair[0] = upper
                                stride_pair[1] = lower
                                leakage_vector_fn(
                                    stride_pair, voltage, frequency,
                                    out=stride_leak_pair,
                                )
                                np.subtract(
                                    stride_leak_pair[0],
                                    stride_leak0_w,
                                    out=stride_d_hi,
                                )
                                np.maximum(
                                    stride_d_hi, 0.0, out=stride_d_hi
                                )
                                np.subtract(
                                    stride_leak0_w,
                                    stride_leak_pair[1],
                                    out=stride_d_lo,
                                )
                                np.maximum(
                                    stride_d_lo, 0.0, out=stride_d_lo
                                )
                            # else: single segment -- the outer band
                            # (cold guess or cached from the last proven
                            # attempt) already describes this span.
                            if measuring and (n_seg > 1 or not stride_band_ok):
                                # A fresh unwidened guess envelope is in
                                # hand: if it already straddles a
                                # threshold, widening only moves the
                                # bounds outward, so classification
                                # below is guaranteed to reject.  Bail
                                # out before paying for the widened
                                # pass and closure -- this is the
                                # common rejection mode while DTM
                                # holds the core near a threshold.
                                g_hi = float(upper.max())
                                g_lo = float(lower.max())
                                if (
                                    g_hi > trigger_c >= g_lo
                                    or g_hi > emergency_c >= g_lo
                                ):
                                    stride_ok = False
                                    stride_band_ok = False
                                    ff_spans_rejected += 1
                                    break
                            np.multiply(stride_d_hi, 2.0, out=stride_b_hi)
                            stride_b_hi += stride_slack_w
                            np.multiply(stride_d_lo, 2.0, out=stride_b_lo)
                            stride_b_lo += stride_slack_w
                            # Widened extremal envelopes: constant
                            # powers p0 + d_hi and p0 - d_lo pinch any
                            # power trajectory inside the band
                            # (Kamke-Müller comparison; the discrete
                            # propagator is monotone because
                            # e^{-C^-1 L dt} >= 0 elementwise).  One
                            # stacked probe pass computes the upper
                            # envelope of the inflated power and the
                            # lower envelope of the deflated one.
                            # The pair rows were zero-initialised and
                            # only the block-node entries are ever
                            # written: ``power_buffer`` is nonzero only
                            # at ``node_idx`` too, so the rows track it
                            # without full-vector copies.
                            np.add(
                                stride_blocks, stride_b_hi,
                                out=stride_tmp,
                            )
                            stride_power_pair[0, node_idx] = stride_tmp
                            np.subtract(
                                stride_blocks, stride_b_lo,
                                out=stride_tmp,
                            )
                            stride_power_pair[1, node_idx] = stride_tmp
                            w_lower, w_upper = probe.widened(
                                stride_power_pair, seg_s
                            )
                            # A-posteriori closure: leakage anywhere in
                            # the widened box stays inside the assumed
                            # band, so the box provably traps the true
                            # drifting-power trajectory.
                            stride_pair[0] = w_upper
                            stride_pair[1] = w_lower
                            leakage_vector_fn(
                                stride_pair, voltage, frequency,
                                out=stride_leak_pair,
                            )
                            np.subtract(
                                stride_leak_pair[0],
                                stride_leak0_w,
                                out=stride_leak_hi,
                            )
                            np.subtract(
                                stride_leak0_w,
                                stride_leak_pair[1],
                                out=stride_leak_lo,
                            )
                            safe = bool(
                                np.all(stride_leak_hi <= stride_b_hi)
                                and np.all(stride_leak_lo <= stride_b_lo)
                            )
                            span_violations = 0
                            span_trigger_s = 0.0
                            if safe and measuring:
                                # Threshold classification: jump only
                                # when every jumped step's accounting is
                                # provably exact.
                                hot_upper = float(w_upper.max())
                                hot_lower = float(w_lower.max())
                                if hot_upper <= trigger_c:
                                    pass
                                elif (
                                    hot_lower > emergency_c
                                    and not raise_on_violation
                                ):
                                    span_violations = k_i
                                    span_trigger_s = seg_s
                                elif (
                                    hot_lower > trigger_c
                                    and hot_upper <= emergency_c
                                ):
                                    span_trigger_s = seg_s
                                else:
                                    safe = False
                            if not safe:
                                # Re-guess from a fresh envelope next
                                # time: the band was either too small
                                # (closure failed) or wide enough to
                                # blur a threshold decision a tighter
                                # guess might still make.
                                stride_band_ok = False
                                stride_ok = False
                                ff_spans_rejected += 1
                                break
                            ff_spans_taken += 1
                            stride_taken = True
                            # The closure just proved this band over
                            # this span: reuse it on the next attempt
                            # at this operating point (it is re-verified
                            # there, so staleness costs a rejection at
                            # worst, never soundness).
                            stride_band_ok = True
                            stride_band_act = actuation
                            stride_band_v = voltage
                            stride_band_f = frequency
                            stride_band_blocks[:] = stride_blocks
                            per_step_instr = perf.fast_forward(
                                step_cycles, actuation, k_i
                            )
                            temps_vec = yield (solver, power_buffer, dt, k_i)
                            temps_vec.take(node_idx, out=block_temps)
                            time_s += seg_s
                            if measuring:
                                done += per_step_instr * k_i
                                cycles_f += step_cycles * k_i
                                violations += span_violations
                                # The envelope proved the jumped span
                                # either uniformly above the trigger
                                # (span_trigger_s == seg_s) or uniformly
                                # at-or-below it, so crossing state is
                                # exact.
                                if span_trigger_s > 0.0:
                                    above_trigger_s += span_trigger_s
                                    if not above_trigger:
                                        above_trigger = True
                                        trigger_crossings += 1
                                else:
                                    above_trigger = False
                                if voltage < nominal_v - 1e-12:
                                    low_time_s += seg_s
                                energy_j += power_sum * seg_s
                                gating_time_weighted += (
                                    command.gating_fraction * seg_s
                                )
                                if cmd_active:
                                    engaged_s += seg_s
                                step_max = float(block_temps.max())
                                if step_max > max_temp:
                                    max_temp = step_max
                                    hottest_block = block_names[
                                        int(np.argmax(block_temps))
                                    ]

            # --- fused dense span ------------------------------------------
            # With the stride disarmed (or event-driven stepping off
            # entirely) no decision can fire before the next sensor
            # sample, so the remaining dense steps execute as one fused
            # request instead of one generator round-trip per step.
            if (
                kernel_enabled
                and not stride_taken
                and not (ff_enabled and stride_ok)
                and measuring
                and pending_voltage is None
                and done < instructions
            ):
                k = int(
                    np.ceil(
                        (self._sensors.next_due_s - 1e-12 - time_s) / dt
                    )
                )
                if k >= 2:
                    temps_vec = yield (
                        solver,
                        DenseSpanTask(run_dense_span, k),
                        dt,
                        k,
                    )

        elapsed_s = time_s - measure_start_s
        if obs_metrics.enabled():
            # One batch publish per run: registry counters for the
            # process view, run-context metrics for the spill record the
            # sweep report aggregates, and one completion event.
            duty_cycle = engaged_s / max(elapsed_s, 1e-12)
            counters = {
                "engine.runs": 1.0,
                "engine.exec_steps": float(exec_steps),
                "engine.trigger_crossings": float(trigger_crossings),
                "engine.sensor_samples": float(sensor_samples),
                "engine.violations": float(violations),
                "engine.ff_spans_taken": float(ff_spans_taken),
                "engine.ff_spans_rejected": float(ff_spans_rejected),
                "dtm.engagements": float(dtm_engagements),
                "dtm.dvs_switches": float(switches),
                "dtm.migrations": float(migrations),
            }
            if solver.fallback_active:
                counters["thermal.fallback_runs"] = 1.0
            registry = obs_metrics.REGISTRY
            for name, value in counters.items():
                registry.counter(name).inc(value)
            obs_runctx.add_metrics(counters)
            obs_runctx.add_metric("dtm.duty_cycle", duty_cycle)
            obs_runctx.add_metric("dtm.engaged_s", engaged_s)
            obs_runctx.add_metric("engine.above_trigger_s", above_trigger_s)
            obs_events.emit(
                "engine.run_complete",
                benchmark=self._workload.name,
                policy=self._policy.name,
                instructions=float(done),
                elapsed_s=elapsed_s,
                trigger_crossings=trigger_crossings,
                violations=violations,
                dtm_duty_cycle=duty_cycle,
                fallback_active=bool(solver.fallback_active),
            )
        self._emit(
            "run.complete",
            time_s,
            instructions=float(done),
            violations=violations,
            fallback_active=bool(solver.fallback_active),
        )
        return RunResult(
            benchmark=self._workload.name,
            policy=self._policy.name,
            dvs_mode=self._config.dvs_mode,
            instructions=done,
            elapsed_s=elapsed_s,
            # Fractional final-step cycles accumulate exactly and are
            # rounded once here, instead of truncating per run.
            cycles=int(round(cycles_f)),
            violations=violations,
            max_true_temp_c=max_temp,
            hottest_block=hottest_block,
            time_above_trigger_s=above_trigger_s,
            dvs_switches=switches,
            dvs_low_time_s=low_time_s,
            stall_time_s=stall_s,
            mean_gating_fraction=gating_time_weighted / max(elapsed_s, 1e-12),
            mean_power_w=energy_j / max(elapsed_s, 1e-12),
            migrations=migrations,
            trigger_crossings=trigger_crossings,
            trace=trace.points() if trace is not None else None,
        )
