"""The nine synthetic SPEC benchmarks."""

import pytest

from repro.errors import WorkloadError
from repro.floorplan import ALL_BLOCKS
from repro.workloads import SPEC_BENCHMARK_NAMES, build_benchmark, build_spec_suite


def test_suite_has_the_papers_nine_benchmarks():
    assert set(SPEC_BENCHMARK_NAMES) == {
        "mesa", "perlbmk", "gzip", "bzip2", "eon",
        "crafty", "vortex", "gcc", "art",
    }
    suite = build_spec_suite()
    assert [wl.name for wl in suite] == list(SPEC_BENCHMARK_NAMES)


def test_unknown_benchmark_raises():
    with pytest.raises(WorkloadError):
        build_benchmark("specjbb")


def test_each_benchmark_has_multiple_phases():
    for wl in build_spec_suite():
        assert len(wl.phases) >= 2


def test_phases_cover_all_blocks():
    for wl in build_spec_suite():
        for phase in wl.phases:
            assert set(phase.base_activities) == set(ALL_BLOCKS)


def test_benchmarks_are_multi_million_instruction_samples():
    for wl in build_spec_suite():
        assert wl.total_instructions >= 5_000_000


def test_art_is_memory_bound():
    art = build_benchmark("art")
    assert all(p.memory_cpi_fraction >= 0.35 for p in art.phases)
    assert art.mean_ipc < 1.5


def test_crafty_is_high_ilp_integer():
    crafty = build_benchmark("crafty")
    assert crafty.mean_ipc > 2.0
    for phase in crafty.phases:
        assert phase.base_activities["FPAdd"] < 0.05


def test_int_register_file_is_most_active_block_everywhere():
    # The calibration requirement behind "the hottest unit is the integer
    # register file" for all nine benchmarks.
    for wl in build_spec_suite():
        for phase in wl.phases:
            acts = phase.base_activities
            assert max(acts, key=acts.get) == "IntReg", (wl.name, phase.name)


def test_fp_benchmarks_exercise_fp_blocks():
    for name in ("mesa", "eon", "art"):
        wl = build_benchmark(name)
        assert any(p.base_activities["FPAdd"] > 0.2 for p in wl.phases)


def test_trace_parameters_attached_and_plausible():
    for wl in build_spec_suite():
        for phase in wl.phases:
            params = phase.trace_parameters
            assert params is not None
            total = sum(params.op_mix.values())
            assert total == pytest.approx(1.0, abs=0.05)


def test_builds_are_independent():
    a = build_benchmark("gzip")
    b = build_benchmark("gzip")
    assert a is not b
    assert a.phases[0].base_activities == b.phases[0].base_activities
