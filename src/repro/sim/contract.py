"""The engine contract: one stepping protocol for every simulation loop.

Three step loops grew in this tree -- the single-core generator engine
(:class:`~repro.sim.engine.SimulationEngine`), the BLAS-3 lockstep
runner (:mod:`repro.sim.lockstep`) and the dual-core engine
(:mod:`repro.multicore.engine`) -- and only the first was wired to the
batch/supervisor/fault/observability stack.  This module extracts the
protocol they all share, so the next engine (N-core, a native backend)
implements a tested contract instead of a fourth copy-pasted loop.

The contract is generator-based.  :meth:`SimEngine.iter_run` yields
*thermal-step requests* and receives the stepped node-temperature
vector back; everything else -- sensing, policy, power, accounting --
runs inside the generator.  A request is either

* a tuple ``(solver, power, dt, count)``: advance ``solver`` by
  ``count`` steps of ``dt`` seconds under the node ``power`` vector
  (``count == 1`` is a plain step, ``count > 1`` a constant-power
  fast-forward), replying with the solver's state array;
* a tuple ``(solver, task, dt, count)`` where ``task`` is a
  :class:`~repro.sim.kernel.DenseSpanTask`: execute ``count`` fused
  dense steps via the task's pre-bound closure (the engine keeps
  ownership of sampling/power/accounting; the driver just invokes the
  span), replying with the solver's state array; or
* a mapping ``{key: (solver, power, dt, count)}``: a *round* of
  requests from many interleaved runs (the lockstep engine), replying
  with ``{key: stepped_vector}``.  The driver batches the compatible
  single-step requests of a round into one BLAS-3 operation
  (:func:`~repro.thermal.solver.step_lockstep`).

Because the driver owns nothing but solver stepping, a run driven
incrementally through :meth:`SimEngine.build` / :meth:`SimEngine.step`
is bit-identical to :meth:`SimEngine.run` -- the conformance suite
(``tests/sim/test_engine_contract.py``) pins that, along with
reset-reentrancy and seed determinism, for every engine in the tree.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import SimulationError
from repro.obs import flightrec as obs_flightrec
from repro.obs import trace as obs_trace
from repro.sim.kernel import DenseSpanTask


@dataclass(frozen=True)
class EngineEvent:
    """One lifecycle notification published to engine subscribers.

    ``name`` is a dotted identifier (``run.start``, ``run.complete``,
    ``warmup.nonconverged``, ``multicore.swap`` ...), ``time_s`` the
    simulation time it describes (0 for pre-run events), ``payload``
    free-form scalar context.
    """

    name: str
    time_s: float
    payload: Mapping[str, Any] = field(default_factory=dict)


def service_request(request: Tuple) -> Any:
    """Advance one solver per a ``(solver, power, dt, count)`` request."""
    solver, power, dt, count = request
    if isinstance(power, DenseSpanTask):
        return power.run(solver)
    if count == 1:
        return solver.step(power, dt, copy=False)
    return solver.fast_forward(power, dt, count, copy=False)


def service_round(requests: Mapping) -> Dict:
    """Service a mapping of step requests, batching compatible ones.

    Single-step requests sharing (stepper class, network identity, dt)
    advance together through one
    :func:`~repro.thermal.solver.step_lockstep` BLAS-3 call;
    fast-forwards and groups of one go through the solver's own
    methods.  Numerically equivalent to servicing each request alone up
    to BLAS summation order.
    """
    from repro.thermal.solver import step_lockstep

    groups: Dict[Tuple, List] = {}
    singles: List = []
    for key, (solver, _power, dt, count) in requests.items():
        if count == 1 and not isinstance(_power, DenseSpanTask):
            groups.setdefault((type(solver), id(solver.network), dt), []).append(key)
        else:
            singles.append(key)
    replies: Dict = {}
    for keys in groups.values():
        if len(keys) == 1:
            singles.extend(keys)
            continue
        solvers = [requests[k][0] for k in keys]
        powers = [requests[k][1] for k in keys]
        dt = requests[keys[0]][2]
        for key, temps in zip(keys, step_lockstep(solvers, powers, dt)):
            replies[key] = temps
    for key in singles:
        replies[key] = service_request(requests[key])
    return replies


def drive(steps) -> Any:
    """Run an :meth:`SimEngine.iter_run` generator to completion.

    Services every yielded request (tuples and rounds) and returns the
    generator's return value.  With step timing enabled
    (``REPRO_STEP_TIMING`` / observability on), tuple requests record
    under the ``step.thermal`` span exactly as the pre-contract engine
    loop did; fused :class:`~repro.sim.kernel.DenseSpanTask` requests
    record under ``step.kernel`` instead (the span covers the whole
    fused pipeline -- the kernel attributes its inner sections itself,
    so ``step.kernel`` is a boundary measure, not an additive one).  If
    servicing raises, the generator is closed so the engine unwinds
    immediately instead of at garbage collection.
    """
    from repro.sim.engine import step_timing_enabled

    reply: Any = None
    try:
        if step_timing_enabled():
            record = obs_trace.record
            try:
                while True:
                    request = steps.send(reply)
                    if isinstance(request, Mapping):
                        reply = service_round(request)
                        continue
                    t0 = perf_counter()
                    reply = service_request(request)
                    if isinstance(request[1], DenseSpanTask):
                        record("step.kernel", perf_counter() - t0)
                    else:
                        record("step.thermal", perf_counter() - t0)
            except StopIteration as stop:
                return stop.value
        try:
            while True:
                request = steps.send(reply)
                if isinstance(request, Mapping):
                    reply = service_round(request)
                else:
                    reply = service_request(request)
        except StopIteration as stop:
            return stop.value
    except BaseException:
        steps.close()
        raise


class SimEngine(ABC):
    """The contract every simulation step loop implements.

    Concrete engines provide :meth:`iter_run` (the physics, as a
    request-yielding generator) and :meth:`reset` (restore construction
    state so a rebuilt run is bit-identical); the base class provides
    the drivers -- :meth:`run` for one-shot execution, :meth:`build` /
    :meth:`step` for incremental external driving -- and the
    :meth:`subscribe` event channel.
    """

    _active = None
    _pending_reply: Any = None
    _subscribers: Optional[List[Callable[[EngineEvent], None]]] = None

    @abstractmethod
    def iter_run(
        self,
        budget,
        initial=None,
        settle_time_s: float = 0.0,
    ):
        """Generator form of :meth:`run`.

        ``budget`` is engine-specific (an instruction count for the
        single-core engine, a duration for the multicore engine, unused
        by the lockstep batch whose specs carry their own budgets).
        Yields thermal-step requests (see module docstring) and returns
        the engine's result object via ``StopIteration.value``.
        """

    @abstractmethod
    def reset(self) -> None:
        """Restore all run-to-run mutable state to construction values.

        After ``reset()``, a repeated :meth:`run` with the same
        arguments must be bit-identical to the first -- including
        sensor noise streams and policy state.
        """

    def run(self, budget, initial=None, settle_time_s: float = 0.0):
        """Execute one full run and return its result."""
        return drive(self.iter_run(budget, initial, settle_time_s))

    # --- incremental driving -----------------------------------------------

    def build(self, budget, initial=None, settle_time_s: float = 0.0) -> None:
        """Prepare a run for incremental :meth:`step` driving.

        Discards any previously built run.
        """
        if self._active is not None:
            self._active.close()
        self._active = self.iter_run(budget, initial, settle_time_s)
        self._pending_reply = None

    def step(self):
        """Service one pending request of the built run.

        Returns ``None`` while the run is in flight and the engine's
        result object once it completes (after which :meth:`build` must
        be called again).  Results are bit-identical to :meth:`run`:
        this is the same generator serviced one request at a time.
        """
        if self._active is None:
            raise SimulationError("no run built: call build() before step()")
        try:
            request = self._active.send(self._pending_reply)
        except StopIteration as stop:
            self._active = None
            self._pending_reply = None
            return stop.value
        except BaseException:
            self._active = None
            self._pending_reply = None
            raise
        if isinstance(request, Mapping):
            self._pending_reply = service_round(request)
        else:
            self._pending_reply = service_request(request)
        return None

    # --- events ------------------------------------------------------------

    def subscribe(self, handler: Callable[[EngineEvent], None]) -> Callable[[], None]:
        """Register ``handler`` for :class:`EngineEvent` notifications.

        Returns an unsubscribe callable.  Handlers run synchronously in
        emission order; they must not mutate engine state.
        """
        if self._subscribers is None:
            self._subscribers = []
        subscribers = self._subscribers
        subscribers.append(handler)

        def unsubscribe() -> None:
            try:
                subscribers.remove(handler)
            except ValueError:
                pass

        return unsubscribe

    def _emit(self, name: str, time_s: float, **payload) -> None:
        """Publish an event to subscribers (no-op with none attached).

        Also noted into the crash flight recorder: engine lifecycle
        events (``run.start`` / ``run.complete`` and friends) are
        per-run cold-path calls, exactly what a post-mortem ring should
        hold even with observability off."""
        obs_flightrec.note("engine." + name, time_s=time_s, **payload)
        if not self._subscribers:
            return
        event = EngineEvent(name=name, time_s=time_s, payload=payload)
        for handler in list(self._subscribers):
            handler(event)
