"""Crash flight recorder: a bounded ring of recent structured events.

Post-mortem debugging of a wedged or crashed sweep needs the *last few
hundred* events, not the full log -- and it needs them even when the
observability layer is off (``REPRO_OBS=0``), because crashes do not
wait for instrumentation to be enabled.  This module keeps a
``collections.deque`` ring of recent event records, always on by
default, at the cost of one append per (cold-path) event:

* when obs is enabled, :func:`~repro.obs.events.emit` mirrors every
  record it writes into the ring (:func:`note_record` -- no copy, no
  re-serialisation);
* always-on call sites (engine lifecycle via
  :meth:`~repro.sim.contract.SimEngine._emit`, service state
  transitions) call :func:`note` directly, which builds the record only
  when the recorder is enabled.

The ring is dumped to JSONL by :func:`dump` -- wired to ``SIGUSR2`` and
to unhandled crashes by :func:`install`, and served live over HTTP by
:mod:`repro.obs.httpd` (``/flight``).  Dumps go to
``REPRO_FLIGHT_DIR`` (default: the working directory) rather than the
obs temp dir, which is removed at interpreter exit -- a crash dump that
evaporates with the process is no dump at all.

Disabling (``REPRO_FLIGHT=0``) makes :func:`note` a flag-check-and-
return that allocates nothing, matching the obs layer's no-op
discipline (see ``tests/obs/test_overhead.py``).
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional

from repro.obs import metrics

FLIGHT_ENV = "REPRO_FLIGHT"
"""Set to ``0`` to disable the flight recorder.  On by default --
unlike the rest of the obs layer, the ring must already be populated
when the crash happens."""

FLIGHT_LEN_ENV = "REPRO_FLIGHT_LEN"
"""Ring capacity in records (default 512)."""

FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"
"""Directory receiving flight dumps (default: the working directory).
Deliberately *not* the obs directory: that one may be a temp dir
removed at interpreter exit."""

DEFAULT_LEN = 512

_ENABLED = os.environ.get(FLIGHT_ENV, "1").strip().lower() not in metrics._FALSEY


def _ring_len() -> int:
    raw = os.environ.get(FLIGHT_LEN_ENV, "").strip()
    try:
        value = int(raw) if raw else DEFAULT_LEN
    except ValueError:
        return DEFAULT_LEN
    return max(1, value)


_RING: Deque[Dict[str, object]] = deque(maxlen=_ring_len())

_PREV_EXCEPTHOOK = None
_PREV_SIGUSR2 = None
_INSTALLED = False


def enabled() -> bool:
    """True when the flight recorder is capturing events."""
    return _ENABLED


def set_enabled(on: bool) -> bool:
    """Set the recorder flag; returns the previous value (test seam)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    return previous


def note(event: str, **fields) -> None:
    """Record one event into the ring.

    The always-on counterpart of :func:`repro.obs.events.emit`: builds
    a small record only when the recorder is enabled, appends it to the
    ring, touches nothing else.  Call sites that already emit through
    the events module must not also call this -- ``emit`` mirrors its
    record into the ring itself (:func:`note_record`)."""
    if not _ENABLED:
        return
    record: Dict[str, object] = {
        "event": event,
        "ts": time.time(),
        "pid": os.getpid(),
    }
    if fields:
        record.update(fields)
    _RING.append(record)


def note_record(record: Dict[str, object]) -> None:
    """Mirror an already-built event record (from ``events.emit``)."""
    if _ENABLED:
        _RING.append(record)


def snapshot() -> List[Dict[str, object]]:
    """The ring's current contents, oldest first."""
    return list(_RING)


def dump_dir() -> Path:
    """Directory receiving flight dumps (``REPRO_FLIGHT_DIR`` or cwd)."""
    raw = os.environ.get(FLIGHT_DIR_ENV, "").strip()
    return Path(raw) if raw else Path(".")


def dump(path: Optional[os.PathLike] = None, reason: str = "manual") -> Path:
    """Write the ring to a JSONL file; returns the path written.

    The first line is a ``flight.dump`` header (reason, ring size);
    each following line is one recorded event.  Values that are not
    JSON-serialisable degrade to their ``str`` form -- a dump written
    from a crash handler must never raise over a payload detail."""
    records = snapshot()
    if path is None:
        directory = dump_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"flight-{os.getpid()}-{int(time.time())}.jsonl"
    path = Path(path)
    header = {
        "event": "flight.dump",
        "ts": time.time(),
        "pid": os.getpid(),
        "reason": reason,
        "records": len(records),
    }
    with open(path, "w", encoding="utf-8") as handle:
        for record in [header] + records:
            handle.write(json.dumps(record, sort_keys=True, default=str))
            handle.write("\n")
    return path


def _on_sigusr2(signum, frame) -> None:  # pragma: no cover - signal path
    try:
        dump(reason="sigusr2")
    except OSError:
        pass


def _crash_hook(exc_type, exc_value, exc_tb) -> None:
    note("flight.crash", error=f"{exc_type.__name__}: {exc_value}")
    try:
        dump(reason="crash")
    except OSError:  # pragma: no cover - dump dir gone at teardown
        pass
    chained = _PREV_EXCEPTHOOK or sys.__excepthook__
    chained(exc_type, exc_value, exc_tb)


def install(sigusr2: bool = True, excepthook: bool = True) -> None:
    """Wire the dump triggers: ``SIGUSR2`` and unhandled crashes.

    Idempotent.  The previous excepthook is chained, not replaced, so a
    host application's own crash reporting still runs."""
    global _PREV_EXCEPTHOOK, _PREV_SIGUSR2, _INSTALLED
    if _INSTALLED:
        return
    if sigusr2 and hasattr(signal, "SIGUSR2"):
        try:
            _PREV_SIGUSR2 = signal.signal(signal.SIGUSR2, _on_sigusr2)
        except ValueError:  # pragma: no cover - not the main thread
            _PREV_SIGUSR2 = None
    if excepthook:
        _PREV_EXCEPTHOOK = sys.excepthook
        sys.excepthook = _crash_hook
    _INSTALLED = True


def uninstall() -> None:
    """Undo :func:`install` (test seam)."""
    global _PREV_EXCEPTHOOK, _PREV_SIGUSR2, _INSTALLED
    if not _INSTALLED:
        return
    if _PREV_SIGUSR2 is not None and hasattr(signal, "SIGUSR2"):
        try:
            signal.signal(signal.SIGUSR2, _PREV_SIGUSR2)
        except ValueError:  # pragma: no cover - not the main thread
            pass
        _PREV_SIGUSR2 = None
    if sys.excepthook is _crash_hook:
        sys.excepthook = _PREV_EXCEPTHOOK or sys.__excepthook__
    _PREV_EXCEPTHOOK = None
    _INSTALLED = False


def reset() -> None:
    """Clear the ring (test isolation); hooks stay installed."""
    _RING.clear()
