"""Spill-file lifecycle: temp-dir default and post-merge cleanup.

Two regressions pinned here: the obs output directory used to default
to ``obs/`` under the CWD, littering every working copy with
``events-*.jsonl`` files; and worker spill files were never removed
after ``run_many`` merged them, so they grew for the life of the
directory.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import repro.obs as obs
from repro.obs import metrics as obs_metrics
from repro.obs import spill as obs_spill
from repro.sim import RunSpec, run_many
from repro.sim.batch import last_sweep_report

FAST_N = 1_500_000


class TestDefaultDirectory:
    def test_default_is_a_temp_dir_not_cwd(self, monkeypatch):
        monkeypatch.delenv(obs_metrics.OBS_DIR_ENV, raising=False)
        obs_metrics.reset_default_dir_for_testing()
        try:
            path = obs_metrics.obs_dir()
            assert path.is_dir()
            assert str(path) != "obs"
            assert Path(tempfile.gettempdir()) in path.parents
            # Stable across calls: workers forked later must agree.
            assert obs_metrics.obs_dir() == path
        finally:
            obs_metrics.reset_default_dir_for_testing()
        assert not path.exists()

    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(obs_metrics.OBS_DIR_ENV, str(tmp_path / "mine"))
        assert obs_metrics.obs_dir() == tmp_path / "mine"


class TestDiscardMerged:
    def test_dead_writer_files_are_unlinked(self, obs_on):
        # A pid that cannot be a live process on Linux.
        dead = obs_on / "spill-4000000.jsonl"
        dead.write_text('{"run_id": "stale"}\n')
        obs_spill.discard_merged()
        assert not dead.exists()

    def test_live_writer_files_are_truncated_not_unlinked(self, obs_on):
        live = obs_on / f"spill-{os.getpid()}.jsonl"
        live.write_text('{"run_id": "merged"}\n')
        obs_spill.discard_merged()
        assert live.exists()
        assert live.stat().st_size == 0

    def test_pooled_sweep_leaves_no_spill_records_behind(self, obs_on):
        specs = [
            RunSpec("gzip", "FG", instructions=FAST_N, seed=s)
            for s in range(2)
        ]
        run_many(specs, processes=2, lockstep=False)
        report = last_sweep_report()
        assert report is not None and len(report.runs) == 2
        leftover = [
            path
            for path in obs_on.glob("spill-*.jsonl")
            if path.stat().st_size > 0
        ]
        assert leftover == []

    def test_consecutive_sweeps_do_not_double_count(self, obs_on):
        specs = [RunSpec("gzip", "FG", instructions=FAST_N)]
        run_many(specs, processes=2, lockstep=False)
        first = last_sweep_report()
        run_many(specs, processes=2, lockstep=False)
        second = last_sweep_report()
        assert len(first.runs) == 1
        assert len(second.runs) == 1
