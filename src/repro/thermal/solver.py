"""Steady-state and transient solvers for thermal RC networks.

The governing equation (temperatures in Celsius, ambient folded into the
source term) is::

    C dT/dt = P + g_amb * T_amb - L T

Steady state is one linear solve (against a factorisation cached on the
network).  Transients offer two steppers behind one interface:

* :class:`TransientSolver` -- backward Euler,
  ``(C/dt + L) T_{k+1} = (C/dt) T_k + P + g_amb * T_amb``,
  unconditionally stable, LU-factorised once per distinct dt.  Kept as
  the regression anchor.
* :class:`ExponentialSolver` -- the *exact* discrete propagator for the
  LTI network, ``T_{k+1} = A_d T_k + B_d u`` with
  ``A_d = expm(-C^{-1} L dt)`` and ``B_d = (I - A_d) L^{-1}``: one
  ~n x n matvec pair per step instead of a factorized solve, no
  time-discretisation error, plus closed-form multi-step fast-forward
  ``T_{k+K} = A_d^K T_k + (I - A_d^K) T_ss`` for constant-power spans.

Both steppers cache per-dt operators (dt rounded to femtosecond
granularity) behind a small LRU, because DVS changes the cycle time and
continuous-DVS sweeps can touch many distinct step lengths over a long
sweep.
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np
from scipy.linalg import expm, lu_factor
from scipy.linalg.lapack import get_lapack_funcs

from repro.errors import NumericalError, ThermalModelError
from repro.thermal.rc_model import ThermalNetwork

_LOGGER = logging.getLogger("repro.thermal")

STEPPER_BACKWARD_EULER = "be"
STEPPER_EXPONENTIAL = "expm"

DIVERGENCE_LIMIT_C = 1.0e4
"""Any node magnitude beyond this (in Celsius) counts as divergence: no
physical trajectory of the package leaves [-100, 500] C, so 10^4 flags
blow-ups early while never tripping on a legitimate transient.  NaN and
Inf fail the same comparison, so one vector predicate covers all three
health hazards."""


def _healthy(values: np.ndarray) -> bool:
    """True when every entry is finite and within the divergence limit.

    Written as two ufunc-method reductions (no ``np.all`` wrapper, no
    ``np.abs`` temporary): a NaN anywhere poisons both reductions, so
    the comparisons come back False exactly as the predicate form did.
    """
    lo = values.min()
    hi = values.max()
    return bool(-DIVERGENCE_LIMIT_C < lo <= hi < DIVERGENCE_LIMIT_C)


def _bad_node_name(network: ThermalNetwork, values: np.ndarray) -> str:
    """Name of the first unhealthy node (a block name where possible)."""
    bad = np.where(~(np.abs(values) < DIVERGENCE_LIMIT_C))[0]
    index = int(bad[0]) if bad.size else 0
    for name, node in zip(network.block_names, network.block_node_indices):
        if int(node) == index:
            return name
    return f"node{index}"

FACTOR_CACHE_SIZE = 64
"""Per-dt operator cache bound (LU factors / propagators): multi-step or
continuous DVS creates one entry per distinct dt, so long sweeps need a
cap; 64 covers every realistic level ladder without thrash."""

POWER_CACHE_SIZE = 128
"""Cache bound for composed ``(dt, K)`` fast-forward propagators."""


class _LruCache:
    """A tiny least-recently-used mapping for per-dt solver operators."""

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ThermalModelError("cache size must be >= 1")
        self._maxsize = maxsize
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self._maxsize:
            self._data.popitem(last=False)


def _ambient_source(network: ThermalNetwork) -> np.ndarray:
    return network.ambient_conductance * network.ambient_c


def steady_state(network: ThermalNetwork, power: np.ndarray) -> np.ndarray:
    """Solve ``L T = P + g_amb * T_amb`` for the steady temperatures.

    Parameters
    ----------
    network:
        The assembled RC network.
    power:
        (n,) injected power vector (see
        :meth:`~repro.thermal.rc_model.ThermalNetwork.power_vector`).

    Returns
    -------
    numpy.ndarray
        (n,) temperatures in Celsius.
    """
    if power.shape != (network.size,):
        raise ThermalModelError(
            f"power vector has shape {power.shape}, expected ({network.size},)"
        )
    rhs = power + _ambient_source(network)
    try:
        return network.solve_steady(rhs)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise ThermalModelError(f"steady-state solve failed: {exc}") from exc


class TransientSolver:
    """Backward-Euler integrator over a thermal RC network.

    The solver owns the current temperature vector; callers advance it with
    :meth:`step` once per power sample.  Factorisations of ``C/dt + L`` are
    cached per dt (rounded to femtosecond granularity) since a DTM run uses
    only a handful of distinct frequencies.

    Every step is health-checked (finite and within
    :data:`DIVERGENCE_LIMIT_C`); backward Euler is the last-resort
    stepper, so an unhealthy result raises
    :class:`~repro.errors.NumericalError` directly.
    """

    #: Interface parity with :class:`ExponentialSolver`: backward Euler
    #: has no further fallback, so this never becomes true.
    fallback_active = False

    def __init__(self, network: ThermalNetwork, initial: np.ndarray):
        if initial.shape != (network.size,):
            raise ThermalModelError(
                f"initial temperatures have shape {initial.shape}, "
                f"expected ({network.size},)"
            )
        self._network = network
        self._temps = np.array(initial, dtype=float, copy=True)
        self._ambient_source = _ambient_source(network)
        self._factor_cache = _LruCache(FACTOR_CACHE_SIZE)
        self._rhs = np.empty(network.size)
        self._time_s = 0.0

    @property
    def network(self) -> ThermalNetwork:
        """The underlying RC network."""
        return self._network

    @property
    def temperatures(self) -> np.ndarray:
        """Current node temperatures in Celsius (copy)."""
        return self._temps.copy()

    @property
    def time_s(self) -> float:
        """Simulated time elapsed since construction, in seconds."""
        return self._time_s

    def _factorisation(self, dt: float):
        key = int(round(dt * 1e15))
        cached = self._factor_cache.get(key)
        if cached is None:
            c_over_dt = self._network.capacitance / dt
            matrix = np.diag(c_over_dt) + self._network.conductance
            lu, piv = lu_factor(matrix)
            # Bind the LAPACK triangular solve directly: it is what
            # lu_solve calls after several layers of validation, which
            # dominate the cost of solving a ~17-node system once per
            # thermal step.
            getrs, = get_lapack_funcs(("getrs",), (lu,))
            cached = (lu, piv, c_over_dt, getrs)
            self._factor_cache.put(key, cached)
        return cached

    def step(self, power: np.ndarray, dt: float, copy: bool = True) -> np.ndarray:
        """Advance the network by ``dt`` seconds with constant injected
        ``power`` over the step.

        Returns the new temperature vector -- a copy by default.  With
        ``copy=False`` the solver's own state array is returned; it is
        overwritten by the next :meth:`step`, so read what you need from
        it before advancing again (the engine's inner loop gathers the
        block temperatures immediately)."""
        if dt <= 0.0:
            raise ThermalModelError(f"time step must be > 0, got {dt}")
        if power.shape != (self._network.size,):
            raise ThermalModelError(
                f"power vector has shape {power.shape}, "
                f"expected ({self._network.size},)"
            )
        lu, piv, c_over_dt, getrs = self._factorisation(dt)
        # Assemble the right-hand side in a reused buffer and let LAPACK
        # solve in place on it; the buffer then *becomes* the state
        # vector (next step's multiply is elementwise, so reading the
        # old state out of the same array it writes is safe).
        rhs = self._rhs
        np.multiply(c_over_dt, self._temps, out=rhs)
        rhs += power
        rhs += self._ambient_source
        solution, info = getrs(lu, piv, rhs, overwrite_b=1)
        if info != 0:  # pragma: no cover - defensive
            raise ThermalModelError(f"transient solve failed (info={info})")
        if not _healthy(solution):
            raise NumericalError(
                _bad_node_name(self._network, solution),
                self._time_s,
                STEPPER_BACKWARD_EULER,
            )
        self._temps = solution
        self._rhs = solution
        self._time_s += dt
        return self._temps.copy() if copy else self._temps

    def reset(self, temperatures: np.ndarray) -> None:
        """Overwrite the state with ``temperatures`` and zero the clock."""
        if temperatures.shape != (self._network.size,):
            raise ThermalModelError(
                f"temperatures have shape {temperatures.shape}, "
                f"expected ({self._network.size},)"
            )
        self._temps = np.array(temperatures, dtype=float, copy=True)
        self._time_s = 0.0


class ExponentialSolver:
    """Exact exponential-propagator integrator over a thermal RC network.

    Because the network is LTI, the solution of
    ``C dT/dt = u - L T`` with ``u`` held constant over a step is exactly

        T_{k+1} = A_d T_k + B_d u,
        A_d = expm(-C^{-1} L dt),   B_d = (I - A_d) L^{-1},

    so a step costs two ~n x n matvecs instead of a factorized solve and
    carries *no* time-discretisation error (the only approximation left
    is the zero-order hold on the power, which backward Euler makes
    too).  A span of K steps with unchanged power jumps in closed form
    through :meth:`fast_forward`, using ``A_d^K`` composed from cached
    squarings, and :meth:`span_envelope` gives rigorous per-node bounds
    on the constant-power trajectory over the span so callers can prove
    a jump crosses no thermal threshold.

    The interface matches :class:`TransientSolver` (``step`` /
    ``temperatures`` / ``time_s`` / ``reset``), so the two are
    interchangeable behind :func:`make_transient_solver`.
    """

    def __init__(self, network: ThermalNetwork, initial: np.ndarray):
        if initial.shape != (network.size,):
            raise ThermalModelError(
                f"initial temperatures have shape {initial.shape}, "
                f"expected ({network.size},)"
            )
        self._network = network
        self._temps = np.array(initial, dtype=float, copy=True)
        self._ambient_source = _ambient_source(network)
        # -C^{-1} L: the generator of the continuous dynamics.
        self._generator = -network.conductance / network.capacitance[:, None]
        self._linv = network.conductance_inverse
        self._prop_cache = _LruCache(FACTOR_CACHE_SIZE)
        self._power_cache = _LruCache(POWER_CACHE_SIZE)
        self._squarings = _LruCache(FACTOR_CACHE_SIZE)
        n = network.size
        self._u = np.empty(n)
        self._scratch = np.empty(n)
        self._out = np.empty(n)
        # Capacitance weights for the trajectory envelope bound (see
        # :meth:`span_envelope`); the modal decomposition of the
        # whitened operator is computed lazily on first use.
        self._c_sqrt = np.sqrt(network.capacitance)
        self._inv_c_sqrt = 1.0 / self._c_sqrt
        self._modes: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._time_s = 0.0
        #: Set when a numerical-health trip forced a backward-Euler
        #: recovery; the engine then disables fast-forward for the rest
        #: of the run (the exponential operators are suspect).
        self.fallback_active = False

    @property
    def network(self) -> ThermalNetwork:
        """The underlying RC network."""
        return self._network

    @property
    def temperatures(self) -> np.ndarray:
        """Current node temperatures in Celsius (copy)."""
        return self._temps.copy()

    @property
    def time_s(self) -> float:
        """Simulated time elapsed since construction, in seconds."""
        return self._time_s

    # --- operators ---------------------------------------------------------------

    @staticmethod
    def _dt_key(dt: float) -> int:
        return int(round(dt * 1e15))

    def _propagator(self, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """``(A_d, B_d)`` for one step of ``dt`` seconds, cached per dt."""
        key = self._dt_key(dt)
        cached = self._prop_cache.get(key)
        if cached is None:
            a_d = expm(self._generator * dt)
            b_d = (np.eye(self._network.size) - a_d) @ self._linv
            cached = (np.ascontiguousarray(a_d), np.ascontiguousarray(b_d))
            self._prop_cache.put(key, cached)
        return cached

    def _propagator_power(self, dt: float, steps: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(A_d^K, (I - A_d^K) L^{-1})`` composed from cached squarings.

        Run-length spans repeat the same K (steps to the next sensor
        sample), so the composed pair is cached per ``(dt, K)``; the
        binary-exponentiation squarings are cached per dt.
        """
        key = (self._dt_key(dt), steps)
        cached = self._power_cache.get(key)
        if cached is None:
            squarings = self._squarings.get(key[0])
            if squarings is None:
                squarings = [self._propagator(dt)[0]]
                self._squarings.put(key[0], squarings)
            result: Optional[np.ndarray] = None
            bit = 0
            remaining = steps
            while remaining:
                while bit >= len(squarings):
                    squarings.append(squarings[-1] @ squarings[-1])
                if remaining & 1:
                    power = squarings[bit]
                    result = power if result is None else power @ result
                remaining >>= 1
                bit += 1
            b_k = (np.eye(self._network.size) - result) @ self._linv
            cached = (np.ascontiguousarray(result), np.ascontiguousarray(b_k))
            self._power_cache.put(key, cached)
        return cached

    # --- stepping ----------------------------------------------------------------

    def _check_step(self, power: np.ndarray, dt: float) -> None:
        if dt <= 0.0:
            raise ThermalModelError(f"time step must be > 0, got {dt}")
        if power.shape != (self._network.size,):
            raise ThermalModelError(
                f"power vector has shape {power.shape}, "
                f"expected ({self._network.size},)"
            )

    def _apply(self, a_d: np.ndarray, b_d: np.ndarray, power: np.ndarray) -> None:
        u = self._u
        np.add(power, self._ambient_source, out=u)
        np.dot(a_d, self._temps, out=self._out)
        np.dot(b_d, u, out=self._scratch)
        self._out += self._scratch
        self._temps, self._out = self._out, self._temps

    def step(self, power: np.ndarray, dt: float, copy: bool = True) -> np.ndarray:
        """Advance the network by ``dt`` seconds with constant injected
        ``power`` over the step.

        Returns the new temperature vector -- a copy by default; with
        ``copy=False`` the solver's own state array is returned (it is
        overwritten two steps later, so read what you need before
        advancing).

        An unhealthy result (NaN/Inf or past
        :data:`DIVERGENCE_LIMIT_C`) triggers a backward-Euler recovery
        from the pre-step state (:attr:`fallback_active` is then set);
        :class:`~repro.errors.NumericalError` is raised only when the
        fallback fails too."""
        self._check_step(power, dt)
        a_d, b_d = self._propagator(dt)
        self._apply(a_d, b_d, power)
        if not _healthy(self._temps):
            self._recover(power, dt, 1)
        self._time_s += dt
        return self._temps.copy() if copy else self._temps

    def fast_forward(
        self, power: np.ndarray, dt: float, steps: int, copy: bool = True
    ) -> np.ndarray:
        """Jump ``steps`` consecutive ``dt`` steps of constant ``power``
        in closed form: exactly equivalent to calling :meth:`step`
        ``steps`` times with the same arguments (up to last-ulp matrix
        association order).  Health-guarded like :meth:`step` (recovery
        re-integrates the span with backward Euler)."""
        self._check_step(power, dt)
        if steps < 1:
            raise ThermalModelError(f"fast-forward needs >= 1 step, got {steps}")
        a_k, b_k = self._propagator_power(dt, steps)
        self._apply(a_k, b_k, power)
        if not _healthy(self._temps):
            self._recover(power, dt, steps)
        self._time_s += steps * dt
        return self._temps.copy() if copy else self._temps

    def _recover(self, power: np.ndarray, dt: float, steps: int) -> None:
        """Re-integrate the failed span with backward Euler.

        After :meth:`_apply`'s buffer swap, ``self._out`` still holds
        the pre-step state; recovery restarts from it.  Raises
        :class:`~repro.errors.NumericalError` when the pre-step state or
        the power vector is already corrupt, or when backward Euler
        also produces an unhealthy result -- i.e. only when *both*
        steppers have failed."""
        previous = self._out
        if not _healthy(previous):
            raise NumericalError(
                _bad_node_name(self._network, previous),
                self._time_s,
                STEPPER_EXPONENTIAL,
                detail="pre-step state already corrupt",
            )
        if not np.all(np.isfinite(power)):
            raise NumericalError(
                _bad_node_name(self._network, power),
                self._time_s,
                f"{STEPPER_EXPONENTIAL}->{STEPPER_BACKWARD_EULER}",
                detail="power vector is non-finite",
            )
        fallback = TransientSolver(self._network, previous)
        try:
            for _ in range(steps):
                recovered = fallback.step(power, dt, copy=False)
        except NumericalError as exc:
            raise NumericalError(
                exc.block,
                self._time_s + exc.time_s,
                f"{STEPPER_EXPONENTIAL}->{STEPPER_BACKWARD_EULER}",
            ) from exc
        self._temps[:] = recovered
        first = not self.fallback_active
        self.fallback_active = True
        if first:
            # Cold path by construction (a numerical-health trip): worth
            # a counter, a structured event and a logged warning.
            from repro.obs import events as obs_events
            from repro.obs import metrics as obs_metrics

            obs_metrics.inc("thermal.fallback_activations")
            obs_events.emit(
                "thermal.fallback",
                time_s=self._time_s,
                dt=dt,
                steps=steps,
            )
            _LOGGER.warning(
                "exponential stepper tripped a numerical-health guard at "
                "t=%.6gs; recovered with backward Euler (dt=%.3g, "
                "steps=%d) and disabled expm for the rest of the run",
                self._time_s,
                dt,
                steps,
            )

    def _mode_basis(self) -> Tuple[np.ndarray, np.ndarray]:
        """Eigendecomposition of the whitened operator
        ``Ã = C^{-1/2} L C^{-1/2}`` (symmetric positive definite), cached
        for the solver's lifetime."""
        if self._modes is None:
            whitened = self._network.conductance * np.outer(
                self._inv_c_sqrt, self._inv_c_sqrt
            )
            rates, vectors = np.linalg.eigh(0.5 * (whitened + whitened.T))
            self._modes = (rates, vectors)
        return self._modes

    def span_envelope(
        self, power: np.ndarray, span_s: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rigorous per-node bounds on the constant-power trajectory
        over the next ``span_s`` seconds.

        Returns ``(lower, upper)`` such that the trajectory from the
        current state under constant ``power`` satisfies
        ``lower <= T(t) <= upper`` elementwise for *all*
        ``t in [0, span_s]``.  Derivation: with ``y = C^{1/2}(T - T_ss)``
        the dynamics decouple into modes of the symmetric positive
        definite ``Ã = C^{-1/2} L C^{-1/2}``, so each node's deviation is
        a sum of exponentially decaying modal terms
        ``w_ij * exp(-rate_j * t)``; every term is monotone in ``t`` and
        takes its extremes at the span's endpoints.  Limiting the horizon
        to the span matters: slow package modes (the heat sink's seconds-
        scale time constant) then contribute only their current, nearly
        frozen offset instead of their distant asymptote.
        """
        if power.shape != (self._network.size,):
            raise ThermalModelError(
                f"power vector has shape {power.shape}, "
                f"expected ({self._network.size},)"
            )
        if span_s <= 0.0:
            raise ThermalModelError(f"span must be > 0, got {span_s}")
        rates, vectors = self._mode_basis()
        u = power + self._ambient_source
        t_ss = self._linv @ u
        coeffs = vectors.T @ (self._c_sqrt * (self._temps - t_ss))
        weights = (vectors * coeffs[None, :]) * self._inv_c_sqrt[:, None]
        decayed = weights * np.exp(-rates * span_s)[None, :]
        lower = t_ss + np.minimum(weights, decayed).sum(axis=1)
        upper = t_ss + np.maximum(weights, decayed).sum(axis=1)
        return lower, upper

    def span_envelope_bounds(
        self, p_lo: np.ndarray, p_hi: np.ndarray, span_s: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rigorous per-node bounds on *any* varying-power trajectory
        over the next ``span_s`` seconds.

        Returns ``(lower, upper)`` such that every trajectory from the
        current state under *any* measurable power profile ``P(t)`` with
        ``p_lo <= P(t) <= p_hi`` elementwise satisfies
        ``lower <= T(t) <= upper`` for all ``t in [0, span_s]``.

        The generalisation from :meth:`span_envelope` rests on the
        network's order structure: ``-C^{-1} L`` is a Metzler matrix
        (the off-diagonals of the conductance Laplacian are ``-g_ij <=
        0``), so the thermal dynamics are *cooperative* and the Kamke-
        Mueller comparison principle applies -- raising any input can
        only raise every temperature.  The trajectory under ``P(t)`` is
        therefore pinched, elementwise and for all ``t``, between the
        two constant-power extremal trajectories started from the same
        state, and each extremal trajectory is bounded by its modal
        envelope.  This is what lets the engine stride across spans of
        *piecewise-varying* power (leakage drifting with temperature, a
        controller holding its actuation between samples) with the same
        threshold-safety proof the constant-power fast-forward uses.
        """
        if p_lo.shape != (self._network.size,) or p_hi.shape != (
            self._network.size,
        ):
            raise ThermalModelError(
                f"power bounds have shapes {p_lo.shape}/{p_hi.shape}, "
                f"expected ({self._network.size},)"
            )
        if np.any(p_lo > p_hi):
            raise ThermalModelError(
                "power lower bound exceeds upper bound"
            )
        lower, _ = self.span_envelope(p_lo, span_s)
        _, upper = self.span_envelope(p_hi, span_s)
        return lower, upper

    def span_probe(self, rows: np.ndarray) -> "SpanProbe":
        """An allocation-free span-envelope evaluator restricted to the
        node subset ``rows`` (the engine passes its block-node indices).
        See :class:`SpanProbe`."""
        return SpanProbe(self, rows)

    def reset(self, temperatures: np.ndarray) -> None:
        """Overwrite the state with ``temperatures`` and zero the clock."""
        if temperatures.shape != (self._network.size,):
            raise ThermalModelError(
                f"temperatures have shape {temperatures.shape}, "
                f"expected ({self._network.size},)"
            )
        self._temps = np.array(temperatures, dtype=float, copy=True)
        self._time_s = 0.0
        self.fallback_active = False


class SpanProbe:
    """Allocation-free span-envelope evaluator over a fixed row subset.

    The engine's event-driven stride asks, once per sensor period, for
    bounds on the hottest *block* temperature over the coming span.
    :meth:`ExponentialSolver.span_envelope` answers that with ~six fresh
    arrays per call; at a few thousand calls per run the allocator
    becomes a measurable slice of the hot path.  This probe precomputes
    the modal basis restricted to the requested rows, caches the span
    decay vector per span length, and reuses one set of buffers, so a
    call is a handful of in-place BLAS/ufunc operations.

    The returned bound arrays are the probe's own buffers: read them
    before the next :meth:`bounds` call.  Bounds are numerically
    identical to ``span_envelope(power, span_s)`` restricted to
    ``rows`` (same operations on the same doubles, reassociated only
    where float addition order is already unspecified upstream).
    """

    def __init__(self, solver: "ExponentialSolver", rows: np.ndarray):
        self._solver = solver
        rows = np.asarray(rows, dtype=np.intp)
        self._rows = rows
        network = solver._network
        n = network.size
        m = rows.size
        rates, vectors = solver._mode_basis()
        self._rates = rates
        self._vectors_t = np.ascontiguousarray(vectors.T)
        # Row-restricted, capacitance-unwhitened basis: row i of
        # ``row_basis * coeffs`` is node rows[i]'s modal weight vector.
        self._row_basis = np.ascontiguousarray(
            vectors[rows] * solver._inv_c_sqrt[rows, None]
        )
        self._linv = solver._linv
        # Steady-state response of the row subset to extra power *on*
        # the row subset: bounds the trajectory shift from a power
        # perturbation confined to those nodes (see ``response_bound``).
        self._linv_rows = np.ascontiguousarray(
            solver._linv[np.ix_(rows, rows)]
        )
        self._c_sqrt = solver._c_sqrt
        self._ambient_source = solver._ambient_source
        self._exp_cache = _LruCache(FACTOR_CACHE_SIZE)
        # Transposed-contiguous copies so the paired (2, n) variants run
        # as one dgemm each instead of two dgemv dispatches.
        self._linv_t = np.ascontiguousarray(solver._linv.T)
        self._vectors = np.ascontiguousarray(vectors)
        # Reused buffers.
        self._u = np.empty(n)
        self._t_ss = np.empty(n)
        self._diff = np.empty(n)
        self._coeffs = np.empty(n)
        self._weights = np.empty((m, n))
        self._decayed = np.empty((m, n))
        self._extreme = np.empty((m, n))
        self._lower = np.empty(m)
        self._upper = np.empty(m)
        self._resp = np.empty(m)
        self._pair_u = np.empty((2, n))
        self._pair_t_ss = np.empty((2, n))
        self._pair_diff = np.empty((2, n))
        self._pair_coeffs = np.empty((2, n))

    def _decay(self, span_s: float) -> np.ndarray:
        key = int(round(span_s * 1e15))
        cached = self._exp_cache.get(key)
        if cached is None:
            cached = np.exp(-self._rates * span_s)
            self._exp_cache.put(key, cached)
        return cached

    def bounds(
        self, power: np.ndarray, span_s: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` over the probe's rows for the constant-
        ``power`` trajectory over ``[0, span_s]`` -- the row-restricted
        :meth:`ExponentialSolver.span_envelope`, without allocation.
        Returns internal buffers, overwritten by the next call."""
        solver = self._solver
        u = self._u
        np.add(power, self._ambient_source, out=u)
        t_ss = self._t_ss
        np.dot(self._linv, u, out=t_ss)
        diff = self._diff
        np.subtract(solver._temps, t_ss, out=diff)
        diff *= self._c_sqrt
        np.dot(self._vectors_t, diff, out=self._coeffs)
        weights = self._weights
        np.multiply(self._row_basis, self._coeffs[None, :], out=weights)
        decayed = self._decayed
        np.multiply(weights, self._decay(span_s)[None, :], out=decayed)
        extreme = self._extreme
        np.minimum(weights, decayed, out=extreme)
        lower = self._lower
        extreme.sum(axis=1, out=lower)
        lower += t_ss[self._rows]
        np.maximum(weights, decayed, out=extreme)
        upper = self._upper
        extreme.sum(axis=1, out=upper)
        upper += t_ss[self._rows]
        return lower, upper

    def widened(
        self, power_pair: np.ndarray, span_s: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` where ``upper`` bounds the constant-
        ``power_pair[0]`` trajectory from above and ``lower`` bounds the
        constant-``power_pair[1]`` trajectory from below, over
        ``[0, span_s]`` on the probe's rows.

        This is the half of two :meth:`bounds` calls the engine's
        widened-envelope closure actually consumes (the upper bound of
        the leakage-inflated power, the lower bound of the deflated
        one), computed in one stacked pass so the two steady-state and
        modal projections run as single (2, n) x (n, n) matmuls instead
        of four matvec dispatches.  Each returned bound is numerically
        the same function of the same doubles as the corresponding
        :meth:`bounds` output.  Returns internal buffers, overwritten by
        the next :meth:`bounds` or :meth:`widened` call."""
        solver = self._solver
        u = self._pair_u
        np.add(power_pair, self._ambient_source[None, :], out=u)
        t_ss = self._pair_t_ss
        np.dot(u, self._linv_t, out=t_ss)
        diff = self._pair_diff
        np.subtract(solver._temps[None, :], t_ss, out=diff)
        diff *= self._c_sqrt[None, :]
        np.dot(diff, self._vectors, out=self._pair_coeffs)
        decay = self._decay(span_s)
        weights = self._weights
        decayed = self._decayed
        extreme = self._extreme
        np.multiply(self._row_basis, self._pair_coeffs[0][None, :], out=weights)
        np.multiply(weights, decay[None, :], out=decayed)
        np.maximum(weights, decayed, out=extreme)
        upper = self._upper
        extreme.sum(axis=1, out=upper)
        upper += t_ss[0, self._rows]
        np.multiply(self._row_basis, self._pair_coeffs[1][None, :], out=weights)
        np.multiply(weights, decay[None, :], out=decayed)
        np.minimum(weights, decayed, out=extreme)
        lower = self._lower
        extreme.sum(axis=1, out=lower)
        lower += t_ss[1, self._rows]
        return lower, upper

    def response_bound(self, delta_rows: np.ndarray) -> np.ndarray:
        """Elementwise bound on the extra trajectory movement caused by
        adding a constant power perturbation ``delta_rows >= 0`` (one
        entry per probe row, applied at those nodes) on top of any
        profile already covered by :meth:`bounds`.

        By linearity the perturbed trajectory is the unperturbed one
        plus the zero-state response ``(I - e^{-C^{-1}L t}) L^{-1} d``,
        which for ``d >= 0`` is elementwise nonnegative, monotone in
        ``t`` and bounded by its asymptote ``L^{-1} d``.  Adding the
        returned vector to an upper bound (or subtracting the bound for
        ``-d`` from a lower bound) therefore keeps the envelope rigorous
        under power drift of at most ``delta_rows`` -- the a-posteriori
        closure the engine uses for temperature-dependent leakage.
        Returns an internal buffer, overwritten by the next call."""
        np.dot(self._linv_rows, delta_rows, out=self._resp)
        return self._resp


def step_lockstep(solvers, powers, dt: float):
    """Advance many same-network solvers by one ``dt`` step at once.

    All solvers must be the same stepper class over the *same*
    :class:`~repro.thermal.rc_model.ThermalNetwork` object (the lockstep
    batch runner builds its engines on one shared substrate).  The R
    state vectors are stacked into an ``(R, n)`` matrix and advanced
    with one BLAS-3 operation -- a matrix-matrix product pair for the
    exponential stepper, a multi-right-hand-side triangular solve for
    backward Euler -- instead of R separate matvec/solve dispatches.
    Numerically this touches each run with exactly the operators
    :meth:`ExponentialSolver.step` / :meth:`TransientSolver.step` would
    use, so per-run trajectories match the serial path to BLAS summation
    order.

    Returns the list of the solvers' own state arrays (no copies), in
    input order.
    """
    first = solvers[0]
    if dt <= 0.0:
        raise ThermalModelError(f"time step must be > 0, got {dt}")
    network = first._network
    for solver in solvers:
        if type(solver) is not type(first) or solver._network is not network:
            raise ThermalModelError(
                "lockstep stepping needs solvers of one class over one "
                "shared network"
            )
    count = len(solvers)
    size = network.size
    if isinstance(first, ExponentialSolver):
        a_d, b_d = first._propagator(dt)
        t_rows = np.empty((count, size))
        u_rows = np.empty((count, size))
        for i, (solver, power) in enumerate(zip(solvers, powers)):
            t_rows[i] = solver._temps
            np.add(power, solver._ambient_source, out=u_rows[i])
        out = t_rows @ a_d.T
        out += u_rows @ b_d.T
        if _healthy(out):
            for i, solver in enumerate(solvers):
                solver._temps[:] = out[i]
                solver._time_s += dt
        else:
            # One or more runs went unhealthy: adopt the healthy rows,
            # and push each unhealthy run through its own solver's
            # guarded step (backward-Euler recovery, or NumericalError
            # when that fails too).  The solvers' states are untouched
            # so far, so the individual re-step sees the pre-step state.
            row_ok = np.all(np.abs(out) < DIVERGENCE_LIMIT_C, axis=1)
            for i, solver in enumerate(solvers):
                if row_ok[i]:
                    solver._temps[:] = out[i]
                    solver._time_s += dt
                else:
                    solver.step(powers[i], dt, copy=False)
    else:
        lu, piv, c_over_dt, getrs = first._factorisation(dt)
        rhs = np.empty((size, count), order="F")
        for i, (solver, power) in enumerate(zip(solvers, powers)):
            column = rhs[:, i]
            np.multiply(c_over_dt, solver._temps, out=column)
            column += power
            column += solver._ambient_source
        solution, info = getrs(lu, piv, rhs, overwrite_b=1)
        if info != 0:  # pragma: no cover - defensive
            raise ThermalModelError(f"lockstep solve failed (info={info})")
        for i, solver in enumerate(solvers):
            column = solution[:, i]
            if not _healthy(column):
                # Backward Euler is the last resort: no recovery path.
                raise NumericalError(
                    _bad_node_name(network, column),
                    solver._time_s,
                    STEPPER_BACKWARD_EULER,
                )
            solver._temps[:] = column
            solver._time_s += dt
    return [solver._temps for solver in solvers]


def make_transient_solver(
    network: ThermalNetwork, initial: np.ndarray, stepper: str = STEPPER_EXPONENTIAL
):
    """Build a transient stepper by name.

    ``"expm"`` (default) -- the exact :class:`ExponentialSolver`;
    ``"be"`` -- the backward-Euler :class:`TransientSolver`, kept as the
    time-discretised regression anchor.
    """
    if stepper == STEPPER_EXPONENTIAL:
        return ExponentialSolver(network, initial)
    if stepper == STEPPER_BACKWARD_EULER:
        return TransientSolver(network, initial)
    raise ThermalModelError(
        f"thermal stepper must be {STEPPER_BACKWARD_EULER!r} or "
        f"{STEPPER_EXPONENTIAL!r}, got {stepper!r}"
    )
