"""Detailed out-of-order core."""

import pytest

from repro.errors import SimulationError
from repro.uarch import DetailedCore, MachineParameters, TraceGenerator
from repro.uarch.trace import TraceParameters

FAST_PARAMS = TraceParameters(
    working_set_bytes=64 * 1024,
    sequential_fraction=0.8,
    dep_distance_mean=10.0,
    branch_predictability=0.95,
)


@pytest.fixture(scope="module")
def warmed_result():
    core = DetailedCore.warmed(FAST_PARAMS, seed=1)
    core.run(max_cycles=5_000)
    core.reset_statistics()
    return core.run(max_cycles=20_000)


class TestBasicExecution:
    def test_commits_instructions(self, warmed_result):
        assert warmed_result.instructions > 0
        assert warmed_result.cycles == 20_000

    def test_ipc_in_superscalar_range(self, warmed_result):
        assert 0.8 < warmed_result.ipc < 4.0

    def test_activities_are_normalised(self, warmed_result):
        for block, activity in warmed_result.activities.items():
            assert 0.0 <= activity <= 1.0, block

    def test_integer_blocks_active_fp_blocks_idle(self, warmed_result):
        acts = warmed_result.activities
        assert acts["IntReg"] > 0.1
        assert acts["IntExec"] > 0.1
        assert acts["FPAdd"] < 0.05  # default mix is integer-dominated

    def test_prewarmed_caches_mostly_hit(self, warmed_result):
        assert warmed_result.icache_miss_rate < 0.02
        assert warmed_result.l2_miss_rate < 0.05

    def test_pretrained_predictor_near_bias_floor(self, warmed_result):
        assert warmed_result.branch_mispredict_rate < 0.12


class TestFetchGatingResponse:
    @pytest.fixture(scope="class")
    def ipcs(self):
        results = {}
        for fraction in (0.0, 0.2, 2.0 / 3.0):
            core = DetailedCore.warmed(
                FAST_PARAMS, seed=1, gating_fraction=fraction
            )
            core.run(max_cycles=5_000)
            core.reset_statistics()
            results[fraction] = core.run(max_cycles=20_000)
        return results

    def test_mild_gating_mostly_hidden_by_ilp(self, ipcs):
        # 20 % gating should cost far less than 20 % of IPC.
        ratio = ipcs[0.2].ipc / ipcs[0.0].ipc
        assert ratio > 0.9

    def test_deep_gating_starves_the_machine(self, ipcs):
        ratio = ipcs[2.0 / 3.0].ipc / ipcs[0.0].ipc
        assert ratio < 0.75

    def test_gating_reduces_frontend_activity_proportionally(self, ipcs):
        base = ipcs[0.0].activities["Icache"]
        gated = ipcs[2.0 / 3.0].activities["Icache"]
        assert gated < 0.55 * base

    def test_response_is_monotone(self, ipcs):
        assert ipcs[0.0].ipc >= ipcs[0.2].ipc >= ipcs[2.0 / 3.0].ipc


class TestFrequencyScaling:
    def test_memory_latency_cheaper_at_lower_clock(self):
        # A memory-bound workload commits *more per cycle* at lower
        # frequency because memory is fixed in wall-clock terms.
        params = TraceParameters(
            working_set_bytes=8 * 1024 * 1024,
            sequential_fraction=0.2,
            dep_distance_mean=4.0,
        )
        full = DetailedCore.warmed(params, seed=2, relative_frequency=1.0)
        slow = DetailedCore.warmed(params, seed=2, relative_frequency=0.7)
        for core in (full, slow):
            core.run(max_cycles=4_000)
            core.reset_statistics()
        ipc_full = full.run(max_cycles=15_000).ipc
        ipc_slow = slow.run(max_cycles=15_000).ipc
        assert ipc_slow > ipc_full


class TestValidation:
    def test_rejects_invalid_gating_fraction(self):
        trace = TraceGenerator(FAST_PARAMS, seed=0)
        with pytest.raises(SimulationError):
            DetailedCore(trace, gating_fraction=1.0)

    def test_rejects_invalid_frequency(self):
        trace = TraceGenerator(FAST_PARAMS, seed=0)
        with pytest.raises(SimulationError):
            DetailedCore(trace, relative_frequency=0.0)

    def test_run_requires_a_budget(self):
        core = DetailedCore(TraceGenerator(FAST_PARAMS, seed=0))
        with pytest.raises(SimulationError):
            core.run()

    def test_instruction_budget(self):
        core = DetailedCore.warmed(FAST_PARAMS, seed=1)
        result = core.run(max_instructions=1_000)
        assert result.instructions >= 1_000


class TestMachineParameters:
    def test_default_is_21264_class(self):
        machine = MachineParameters()
        assert machine.fetch_width == 4
        assert machine.issue_width == 6
        assert machine.rob_size == 80

    def test_rejects_zero_widths(self):
        with pytest.raises(SimulationError):
            MachineParameters(fetch_width=0)

    def test_narrow_machine_commits_less(self):
        narrow = MachineParameters(
            fetch_width=1, rename_width=1, int_issue_width=1,
            fp_issue_width=1, commit_width=1,
        )
        core_narrow = DetailedCore.warmed(FAST_PARAMS, seed=1, machine=narrow)
        core_wide = DetailedCore.warmed(FAST_PARAMS, seed=1)
        ipc_narrow = core_narrow.run(max_cycles=10_000).ipc
        ipc_wide = core_wide.run(max_cycles=10_000).ipc
        assert ipc_narrow < ipc_wide
        assert ipc_narrow <= 1.0 + 1e-9
